"""Legacy setup shim.

The build box used for this reproduction has no ``wheel`` package available
offline, so PEP-660 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
