"""Setup shim + optional C extension build.

Two jobs:

1. The build box used for this reproduction has no ``wheel`` package
   available offline, so PEP-660 editable installs fail; this shim lets
   ``pip install -e . --no-build-isolation`` fall back to
   ``setup.py develop``.  All metadata lives in ``pyproject.toml``.
2. Build the *optional* C simulator core ``repro.des._despeed`` (the
   ``compiled`` backend).  The package must work without it — any build
   failure (no compiler, no headers) downgrades to a warning and the
   pure-Python backends carry on.  Build it in place with::

       python setup.py build_ext --inplace
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Swallow extension build failures: the C core is an accelerator,
    not a requirement."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            "WARNING: building the optional repro.des._despeed extension "
            f"failed ({exc!r}); the 'compiled' simulator backend will be "
            "unavailable and backend='auto' falls back to 'lowered'."
        )


setup(
    ext_modules=[
        Extension(
            "repro.des._despeed",
            sources=["src/repro/des/_despeed.c"],
            optional=True,
            extra_compile_args=["-O2"],
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
