"""Task scheduling and processor assignment (Section 4.1.2).

"When several parallel tasks need to be executed in a pipelined fashion,
tradeoffs exist between assigning processors to maximize the overall
throughput and assigning processors to minimize a single data set's
response time."  This package provides:

* :mod:`repro.scheduling.model` — a closed-form analytic model
  ``T_i(P_i)`` of each task's per-CPI time (compute + pack/unpack + wire),
  and predictors for equation-(1) throughput and equation-(2) latency;
* :mod:`repro.scheduling.optimizer` — processor-assignment search: greedy
  marginal allocation (provably optimal for the max-bottleneck objective
  with convex decreasing ``T_i``) and exhaustive search for small budgets;
* :mod:`repro.scheduling.bottleneck` — post-run analysis of a
  :class:`~repro.core.pipeline.PipelineResult`: which task limits
  throughput, and where idle time hides (the Table 10 effect);
* :mod:`repro.scheduling.pareto` — throughput-vs-latency Pareto fronts as
  versioned JSON artifacts;
* :mod:`repro.scheduling.tuner` — simulation-in-the-loop assignment
  search: analytic prescreen, then cached/parallel simulator refinement,
  heterogeneous-machine aware.
"""

from repro.scheduling.model import AnalyticPipelineModel, TaskTimeModel
from repro.scheduling.optimizer import (
    optimize_throughput,
    optimize_latency,
    exhaustive_search,
)
from repro.scheduling.bottleneck import BottleneckReport, analyze_bottleneck
from repro.scheduling.reallocation import Move, ReallocationPlan, plan_reallocation
from repro.scheduling.pareto import (
    PARETO_SCHEMA,
    ParetoFront,
    ParetoPoint,
    pareto_front,
)
from repro.scheduling.tuner import TuneResult, TunerConfig, tune

__all__ = [
    "Move",
    "ReallocationPlan",
    "plan_reallocation",
    "AnalyticPipelineModel",
    "TaskTimeModel",
    "optimize_throughput",
    "optimize_latency",
    "exhaustive_search",
    "BottleneckReport",
    "analyze_bottleneck",
    "PARETO_SCHEMA",
    "ParetoFront",
    "ParetoPoint",
    "pareto_front",
    "TunerConfig",
    "TuneResult",
    "tune",
]
