"""Throughput/latency Pareto fronts over processor assignments.

Section 4.1.2 frames assignment as a two-objective problem — maximize
equation-(1) throughput, minimize equation-(2) latency — and the paper
resolves it by hand (Table 7 picks one point per budget).  The bi-criteria
pipeline-mapping literature instead reports the whole *Pareto front*: the
set of assignments no other assignment beats on both axes.  This module
is the front's data model; :mod:`repro.scheduling.tuner` populates it.

A front is a versioned JSON artifact (:data:`PARETO_SCHEMA`) so tuning
results are durable and diffable: ``ParetoFront.save``/``load`` round-trip
every field, and :meth:`ParetoFront.covers` is the validation predicate
for the paper's Table 7 picks ("on or behind the front").
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.core.assignment import Assignment, TASK_NAMES
from repro.errors import ConfigurationError
from repro.version import __version__

#: Bump when the artifact layout changes; ``from_dict`` rejects others.
PARETO_SCHEMA = 1

#: Where a point's throughput/latency numbers came from.
SOURCES = ("analytic", "simulated")


@dataclass(frozen=True)
class ParetoPoint:
    """One assignment with its throughput/latency coordinates.

    ``source`` records whether the coordinates are analytic predictions
    or full-machine-model simulation measurements; simulated points carry
    the analytic prediction alongside (``predicted_*``) so prediction
    error is visible in the artifact.
    """

    counts: tuple[int, ...]
    throughput: float
    latency: float
    source: str = "analytic"
    name: str = ""
    predicted_throughput: Optional[float] = None
    predicted_latency: Optional[float] = None

    def __post_init__(self):
        if len(self.counts) != len(TASK_NAMES):
            raise ConfigurationError(
                f"expected {len(TASK_NAMES)} task counts, got {self.counts!r}"
            )
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if self.source not in SOURCES:
            raise ConfigurationError(
                f"unknown point source {self.source!r}; expected one of {SOURCES}"
            )

    @property
    def total_nodes(self) -> int:
        return sum(self.counts)

    def assignment(self) -> Assignment:
        return Assignment(*self.counts, name=self.name or f"pareto{self.counts}")

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better on both axes, strictly better on at least one."""
        return (
            self.throughput >= other.throughput
            and self.latency <= other.latency
            and (self.throughput > other.throughput or self.latency < other.latency)
        )


def pareto_front(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by throughput descending.

    Duplicates (equal coordinates) keep one representative.  The sweep is
    the standard sort-then-scan: after sorting by throughput descending
    (latency, then counts, as deterministic tie-breaks), a point is on the
    front iff its latency strictly improves on everything before it.
    """
    front: list[ParetoPoint] = []
    best_latency = float("inf")
    for point in sorted(
        points, key=lambda p: (-p.throughput, p.latency, p.counts)
    ):
        if point.latency < best_latency:
            front.append(point)
            best_latency = point.latency
    return front


@dataclass
class ParetoFront:
    """A versioned throughput-vs-latency front plus its provenance."""

    points: list[ParetoPoint]
    budget: int
    objective: str = "pareto"
    machine: str = ""
    params_label: str = ""
    num_cpis: int = 0
    #: Free-form provenance (baseline comparison, tuner counters, ...).
    extra: dict = field(default_factory=dict)

    @classmethod
    def build(cls, points: Sequence[ParetoPoint], **meta) -> "ParetoFront":
        """Prune ``points`` to the non-dominated set and wrap them."""
        return cls(points=pareto_front(points), **meta)

    def __len__(self) -> int:
        return len(self.points)

    # -- picks -------------------------------------------------------------------
    def best_throughput(self) -> ParetoPoint:
        """The highest-throughput point (the front's first)."""
        if not self.points:
            raise ConfigurationError("empty Pareto front has no best point")
        return self.points[0]

    def best_latency(self, min_throughput: Optional[float] = None) -> ParetoPoint:
        """The lowest-latency point, optionally above a throughput floor.

        Falls back to the overall lowest-latency point when no front
        point clears the floor.
        """
        if not self.points:
            raise ConfigurationError("empty Pareto front has no best point")
        if min_throughput is not None:
            eligible = [p for p in self.points if p.throughput >= min_throughput]
            if eligible:
                return min(eligible, key=lambda p: p.latency)
        return self.points[-1]

    # -- relations ---------------------------------------------------------------
    def covers(self, throughput: float, latency: float,
               rel_tol: float = 1e-9) -> bool:
        """Whether ``(throughput, latency)`` is on or behind the front.

        True iff some front point weakly dominates it (within a relative
        tolerance absorbing last-ulp noise).  This is the Table 7
        validation predicate: the paper's pick must not strictly beat the
        tuner's front on both axes.
        """
        for point in self.points:
            if (
                point.throughput >= throughput * (1.0 - rel_tol)
                and point.latency <= latency * (1.0 + rel_tol)
            ):
                return True
        return False

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": PARETO_SCHEMA,
            "version": __version__,
            "budget": self.budget,
            "objective": self.objective,
            "machine": self.machine,
            "params": self.params_label,
            "num_cpis": self.num_cpis,
            "extra": self.extra,
            "points": [
                {
                    "counts": list(p.counts),
                    "name": p.name,
                    "throughput": p.throughput,
                    "latency": p.latency,
                    "source": p.source,
                    "predicted_throughput": p.predicted_throughput,
                    "predicted_latency": p.predicted_latency,
                }
                for p in self.points
            ],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ParetoFront":
        if not isinstance(document, dict) or document.get("schema") != PARETO_SCHEMA:
            raise ConfigurationError(
                f"not a schema-{PARETO_SCHEMA} Pareto front document "
                f"(schema={document.get('schema') if isinstance(document, dict) else None!r})"
            )
        points = [
            ParetoPoint(
                counts=tuple(entry["counts"]),
                throughput=entry["throughput"],
                latency=entry["latency"],
                source=entry.get("source", "analytic"),
                name=entry.get("name", ""),
                predicted_throughput=entry.get("predicted_throughput"),
                predicted_latency=entry.get("predicted_latency"),
            )
            for entry in document.get("points", [])
        ]
        return cls(
            points=points,
            budget=document.get("budget", 0),
            objective=document.get("objective", "pareto"),
            machine=document.get("machine", ""),
            params_label=document.get("params", ""),
            num_cpis=document.get("num_cpis", 0),
            extra=document.get("extra", {}),
        )

    def save(self, path) -> Path:
        """Atomically publish the front as JSON (tmp + ``os.replace``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path) -> "ParetoFront":
        return cls.from_dict(json.loads(Path(path).read_text()))
