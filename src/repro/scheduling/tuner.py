"""Simulation-in-the-loop Pareto auto-tuner for processor assignment.

The paper assigns processors with the closed-form equations (1)-(3); those
ignore pipeline fill, receive-side idling, link contention — and any
heterogeneity in the machine.  This module searches assignments against
the *full machine model* instead, using the analytic model only as a
cheap prescreen:

1. **Seed** with the equations' own picks (greedy throughput, greedy
   latency at several throughput floors), a heterogeneity-aware greedy,
   and any caller-provided assignments (the paper's Table 7 cases).
2. **Expand** a neighborhood around the analytic frontier — every
   single-node donor→recipient :class:`~repro.scheduling.reallocation.Move`
   plus single-node growth while under budget — scoring each candidate
   with the heterogeneity-aware analytic predictions and pruning
   dominated points.  This loop touches thousands of assignments per
   second and never simulates.
3. **Refine** the surviving candidates with real simulator runs fanned
   out through :mod:`repro.exec` — parallel (``jobs``), content-cached,
   and, with ``campaign_dir``, a durable resumable campaign: re-running
   the same tune against a warm store performs **zero** new simulations,
   and a changed knob re-simulates only the candidates it changed.
   A second simulation round expands around the measured winners, so the
   search can exploit effects only the simulator sees.

Everything is deterministic — no randomness anywhere — which is what
makes warm-store reruns exact cache walks.

The output is a :class:`~repro.scheduling.pareto.ParetoFront` (versioned
JSON artifact) plus a baseline comparison against the equations-(1)-(3)
pick, wrapped in :class:`TuneResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.assignment import Assignment, TASK_NAMES
from repro.errors import AssignmentError, ConfigurationError
from repro.machine import Machine, afrl_paragon
from repro.radar.parameters import STAPParams
from repro.scheduling.model import AnalyticPipelineModel
from repro.scheduling.optimizer import _limits, optimize_latency, optimize_throughput
from repro.scheduling.pareto import ParetoFront, ParetoPoint, pareto_front
from repro.scheduling.reallocation import Move

#: Tuning objectives.
OBJECTIVES = ("throughput", "latency", "pareto")

#: Fewest CPIs with a >= 2-report steady-state window (warm-up/cool-down
#: excluded); below this the measured throughput is NaN.
MIN_SIM_CPIS = 8

#: Throughput floors (fractions of the greedy-throughput optimum) at
#: which latency-objective seeds are generated.
_SEED_FLOORS = (0.5, 0.8, 0.95)


@dataclass(frozen=True)
class TunerConfig:
    """Search knobs; the defaults suit paper-scale budgets."""

    objective: str = "pareto"
    #: CPIs per refinement simulation (>= :data:`MIN_SIM_CPIS`).
    num_cpis: int = 15
    #: Candidates simulated per refinement round; 0 = analytic-prescreen
    #: only (no simulations at all — the CI smoke path).
    sim_candidates: int = 12
    #: Refinement rounds: round 1 simulates the analytic survivors, later
    #: rounds expand around the measured winners.
    sim_rounds: int = 2
    #: Analytic hill-climb rounds (backstop; the climb usually converges
    #: far earlier).
    max_rounds: int = 64
    #: Cap on analytically evaluated candidates per tune.
    max_candidates: int = 20000
    #: Optional throughput floor applied to the latency pick.
    min_throughput: Optional[float] = None
    #: Worker processes for the simulation fan-out.
    jobs: int = 1
    #: Simulator backend for refinement runs.
    backend: Optional[str] = None
    contention: str = "endpoint"

    def __post_init__(self):
        if self.objective not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown tuning objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if self.sim_candidates > 0 and self.num_cpis < MIN_SIM_CPIS:
            raise ConfigurationError(
                f"num_cpis={self.num_cpis} leaves no steady-state window; "
                f"refinement simulations need >= {MIN_SIM_CPIS} CPIs"
            )
        if self.sim_candidates < 0 or self.sim_rounds < 1 or self.jobs < 1:
            raise ConfigurationError(
                "sim_candidates must be >= 0, sim_rounds and jobs >= 1"
            )


@dataclass
class TuneResult:
    """A finished tune: the front, the picks, and the baseline comparison."""

    front: ParetoFront
    best_throughput: ParetoPoint
    best_latency: ParetoPoint
    #: The equations-(1)-(3) pick and its predicted/simulated coordinates.
    baseline: dict
    #: Distinct assignments evaluated analytically.
    candidates_evaluated: int
    #: Distinct assignments refined with the simulator (0 = analytic only).
    points_simulated: int
    analytic_only: bool = False
    config: Optional[TunerConfig] = None

    @property
    def throughput_gain(self) -> float:
        """Tuned best throughput over the baseline pick's, same source."""
        key = "predicted_throughput" if self.analytic_only else "simulated_throughput"
        base = self.baseline.get(key)
        if not base:
            return float("nan")
        return self.best_throughput.throughput / base

    def summary(self) -> str:
        source = "analytic predictions" if self.analytic_only else "simulated"
        lines = [
            f"=== tune: budget {self.front.budget}, objective "
            f"{self.front.objective}, {self.front.machine or 'default machine'} ===",
            f"{self.candidates_evaluated} candidates prescreened, "
            f"{self.points_simulated} simulated; front of {len(self.front)} "
            f"({source})",
            f"{'throughput':>12} {'latency':>10}  assignment",
        ]
        for point in self.front.points:
            marker = ""
            if tuple(self.baseline["counts"]) == point.counts:
                marker = "  <- equations (1)-(3) pick"
            lines.append(
                f"{point.throughput:>12.4f} {point.latency:>10.4f}  "
                f"{point.counts}{marker}"
            )
        base_thr = self.baseline.get(
            "predicted_throughput" if self.analytic_only else "simulated_throughput"
        )
        if base_thr:
            lines.append(
                f"baseline {tuple(self.baseline['counts'])}: "
                f"throughput {base_thr:.4f} -> tuned "
                f"{self.best_throughput.throughput:.4f} "
                f"({self.throughput_gain:.2f}x)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        document = self.front.to_dict()
        document["extra"] = dict(document["extra"])
        document["extra"].update(
            {
                "baseline": self.baseline,
                "best_throughput": list(self.best_throughput.counts),
                "best_latency": list(self.best_latency.counts),
                "candidates_evaluated": self.candidates_evaluated,
                "points_simulated": self.points_simulated,
                "analytic_only": self.analytic_only,
            }
        )
        return document


# -- candidate generation --------------------------------------------------------------
def _counts_of(assignment: Assignment) -> tuple[int, ...]:
    return tuple(assignment.counts())

def _neighbor_moves(counts: tuple[int, ...], limits: Sequence[int]) -> list[Move]:
    """Every single-node donor -> recipient move legal from ``counts``."""
    moves = []
    for i, donor in enumerate(TASK_NAMES):
        if counts[i] <= 1:
            continue
        for j, recipient in enumerate(TASK_NAMES):
            if i != j and counts[j] < limits[j]:
                moves.append(Move(donor, recipient))
    return moves


def _apply_move(counts: tuple[int, ...], move: Move) -> tuple[int, ...]:
    out = list(counts)
    out[TASK_NAMES.index(move.from_task)] -= 1
    out[TASK_NAMES.index(move.to_task)] += 1
    return tuple(out)


def _neighbors(
    counts: tuple[int, ...], budget: int, limits: Sequence[int]
) -> list[tuple[int, ...]]:
    """Single-move reallocations plus single-node growth under budget."""
    result = [_apply_move(counts, move) for move in _neighbor_moves(counts, limits)]
    if sum(counts) < budget:
        for i in range(len(TASK_NAMES)):
            if counts[i] < limits[i]:
                grown = list(counts)
                grown[i] += 1
                result.append(tuple(grown))
    return result


def _greedy_predicted(
    model: AnalyticPipelineModel, budget: int, limits: Dict[str, int]
) -> tuple[int, ...]:
    """Bottleneck-first greedy on the heterogeneity-aware predictions.

    Unlike the homogeneous greedy this is only a heuristic (a task's
    speed factor shifts with every offset change), but it lands close
    enough to seed the neighborhood search well.
    """
    counts = {task: 1 for task in TASK_NAMES}
    remaining = budget - len(TASK_NAMES)
    while remaining > 0:
        assignment = Assignment(name="het-greedy", **counts)
        times = model.hetero_task_times(assignment)
        candidates = [t for t in TASK_NAMES if counts[t] < limits[t]]
        if not candidates:
            break
        counts[max(candidates, key=lambda t: times[t])] += 1
        remaining -= 1
    return tuple(counts[task] for task in TASK_NAMES)


# -- the tuner -------------------------------------------------------------------------
class _Prescreen:
    """Deterministic analytic search state: counts -> (throughput, latency)."""

    def __init__(self, model: AnalyticPipelineModel, budget: int,
                 limits: Dict[str, int], config: TunerConfig):
        self.model = model
        self.budget = budget
        self.limit_list = [limits[task] for task in TASK_NAMES]
        self.config = config
        self.evals: Dict[tuple[int, ...], tuple[float, float]] = {}
        self.truncated = False

    def evaluate(self, counts: tuple[int, ...]) -> tuple[float, float]:
        known = self.evals.get(counts)
        if known is not None:
            return known
        assignment = Assignment(*counts, name="candidate")
        value = (
            self.model.predicted_throughput(assignment),
            self.model.predicted_latency(assignment),
        )
        self.evals[counts] = value
        return value

    def frontier(self, k: int = 8) -> list[tuple[int, ...]]:
        """Non-dominated counts plus the top-``k`` per scalar objective."""
        by_throughput = sorted(
            self.evals, key=lambda c: (-self.evals[c][0], self.evals[c][1], c)
        )
        by_latency = sorted(
            self.evals, key=lambda c: (self.evals[c][1], -self.evals[c][0], c)
        )
        front = pareto_front(
            ParetoPoint(counts=c, throughput=t, latency=l)
            for c, (t, l) in self.evals.items()
        )
        chosen: dict[tuple[int, ...], None] = {}
        for counts in (
            [p.counts for p in front] + by_throughput[:k] + by_latency[:k]
        ):
            chosen.setdefault(counts)
        return list(chosen)

    def climb(self) -> None:
        """Expand neighborhoods around the frontier until it stops moving."""
        seen = set(self.evals)
        for _ in range(self.config.max_rounds):
            fresh: list[tuple[int, ...]] = []
            for counts in self.frontier():
                for neighbor in _neighbors(counts, self.budget, self.limit_list):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        fresh.append(neighbor)
            if not fresh:
                return
            for counts in fresh:
                if len(self.evals) >= self.config.max_candidates:
                    self.truncated = True
                    return
                self.evaluate(counts)

    def select(self, k: int, objective: str) -> list[tuple[int, ...]]:
        """The ``k`` counts worth simulating, deterministic order.

        Front points first (they are the candidate answer set), then the
        best scalar performers: all of them for a scalar objective,
        alternating throughput/latency ranks for ``pareto``.
        """
        front = pareto_front(
            ParetoPoint(counts=c, throughput=t, latency=l)
            for c, (t, l) in self.evals.items()
        )
        by_throughput = sorted(
            self.evals, key=lambda c: (-self.evals[c][0], self.evals[c][1], c)
        )
        by_latency = sorted(
            self.evals, key=lambda c: (self.evals[c][1], -self.evals[c][0], c)
        )
        if objective == "throughput":
            ranked = by_throughput
        elif objective == "latency":
            ranked = by_latency
        else:
            ranked = [
                counts
                for pair in zip(by_throughput, by_latency)
                for counts in pair
            ]
        chosen: dict[tuple[int, ...], None] = {}
        for counts in [p.counts for p in front] + ranked:
            chosen.setdefault(counts)
            if len(chosen) >= k:
                break
        return list(chosen)[:k]


def tune(
    params: STAPParams,
    budget: int,
    machine: Optional[Machine] = None,
    config: Optional[TunerConfig] = None,
    seeds: Sequence[Assignment] = (),
    campaign_dir=None,
    campaign_name: Optional[str] = None,
    progress=None,
) -> TuneResult:
    """Search processor assignments for ``budget`` nodes on ``machine``.

    ``seeds`` are extra starting assignments (e.g. the paper's Table 7
    case for the budget); every seed and the equations-(1)-(3) baseline
    are always carried into the simulation set, so the result can state
    exactly where they sit relative to the front.  ``campaign_dir`` roots
    the refinement simulations in a durable
    :class:`~repro.exec.campaign.CampaignStore`; ``progress`` receives
    executor progress callbacks (e.g. a
    :class:`~repro.obs.dashboard.SweepDashboard`).
    """
    config = config or TunerConfig()
    resolved = machine or afrl_paragon()
    if budget < len(TASK_NAMES):
        raise AssignmentError(
            f"budget {budget} below the minimum of one node per task "
            f"({len(TASK_NAMES)})"
        )
    resolved.check_node_budget(budget)
    model = AnalyticPipelineModel(params, resolved)
    limits = _limits(params)

    # -- seeds -----------------------------------------------------------------
    baseline_assignment = optimize_throughput(model, budget, name="equations-(1)-(3)")
    baseline_counts = _counts_of(baseline_assignment)
    seed_counts: dict[tuple[int, ...], None] = {baseline_counts: None}
    baseline_throughput = model.throughput(baseline_assignment)
    for floor in _SEED_FLOORS:
        try:
            pick = optimize_latency(
                model, budget, min_throughput=floor * baseline_throughput
            )
        except AssignmentError:
            continue
        seed_counts.setdefault(_counts_of(pick))
    seed_counts.setdefault(_counts_of(optimize_latency(model, budget)))
    seed_counts.setdefault(_greedy_predicted(model, budget, limits))
    pinned: dict[tuple[int, ...], None] = {baseline_counts: None}
    for seed in seeds:
        seed.validate_for(params)
        if seed.total_nodes > budget:
            raise AssignmentError(
                f"seed {seed.name or seed.counts()} uses {seed.total_nodes} "
                f"nodes, over the budget of {budget}"
            )
        seed_counts.setdefault(_counts_of(seed))
        pinned.setdefault(_counts_of(seed))

    # -- analytic prescreen ------------------------------------------------------
    prescreen = _Prescreen(model, budget, limits, config)
    for counts in seed_counts:
        prescreen.evaluate(counts)
    prescreen.climb()

    # -- simulation refinement -----------------------------------------------------
    simulated: Dict[tuple[int, ...], tuple[float, float]] = {}
    if config.sim_candidates > 0:
        runner = _SimulationRunner(
            params, resolved if machine is not None else None, config,
            campaign_dir, campaign_name, progress,
        )
        batch = list(pinned)
        for counts in prescreen.select(config.sim_candidates, config.objective):
            if counts not in pinned:
                batch.append(counts)
        simulated.update(runner.run(batch))
        for _ in range(config.sim_rounds - 1):
            batch = _next_round(prescreen, simulated, config)
            if not batch:
                break
            simulated.update(runner.run(batch))

    # -- assemble ------------------------------------------------------------------
    if simulated:
        points = [
            ParetoPoint(
                counts=counts,
                throughput=thr,
                latency=lat,
                source="simulated",
                predicted_throughput=prescreen.evaluate(counts)[0],
                predicted_latency=prescreen.evaluate(counts)[1],
            )
            for counts, (thr, lat) in simulated.items()
        ]
    else:
        points = [
            ParetoPoint(counts=counts, throughput=thr, latency=lat)
            for counts, (thr, lat) in prescreen.evals.items()
        ]
    front = ParetoFront.build(
        points,
        budget=budget,
        objective=config.objective,
        machine=resolved.name,
        num_cpis=config.num_cpis if simulated else 0,
        extra={"truncated": prescreen.truncated},
    )
    baseline = {
        "counts": list(baseline_counts),
        "name": baseline_assignment.name,
        "predicted_throughput": prescreen.evaluate(baseline_counts)[0],
        "predicted_latency": prescreen.evaluate(baseline_counts)[1],
        "equation_throughput": baseline_throughput,
        "equation_latency": model.latency(baseline_assignment),
        "simulated_throughput": simulated.get(baseline_counts, (None, None))[0],
        "simulated_latency": simulated.get(baseline_counts, (None, None))[1],
    }
    return TuneResult(
        front=front,
        best_throughput=front.best_throughput(),
        best_latency=front.best_latency(config.min_throughput),
        baseline=baseline,
        candidates_evaluated=len(prescreen.evals),
        points_simulated=len(simulated),
        analytic_only=not simulated,
        config=config,
    )


def _next_round(
    prescreen: _Prescreen,
    simulated: Dict[tuple[int, ...], tuple[float, float]],
    config: TunerConfig,
) -> list[tuple[int, ...]]:
    """Unsimulated neighbors of the measured winners, best-predicted first."""
    winners = pareto_front(
        ParetoPoint(counts=c, throughput=t, latency=l)
        for c, (t, l) in simulated.items()
    )
    candidates: dict[tuple[int, ...], None] = {}
    for point in winners:
        for neighbor in _neighbors(
            point.counts, prescreen.budget, prescreen.limit_list
        ):
            if neighbor not in simulated:
                candidates.setdefault(neighbor)
    for counts in candidates:
        prescreen.evaluate(counts)
    ranked = sorted(
        candidates,
        key=lambda c: (-prescreen.evals[c][0], prescreen.evals[c][1], c),
    )
    return ranked[: config.sim_candidates]


class _SimulationRunner:
    """Fans candidate batches through the executor/campaign layer."""

    def __init__(self, params, machine, config, campaign_dir,
                 campaign_name, progress):
        self.params = params
        self.machine = machine
        self.config = config
        self.campaign_dir = campaign_dir
        self.campaign_name = campaign_name or "tune"
        self.progress = progress
        self._store = None
        if campaign_dir is not None:
            from repro.exec.campaign import CampaignStore

            self._store = CampaignStore(campaign_dir, name=self.campaign_name)

    def run(self, batch: Sequence[tuple[int, ...]]) -> Dict[tuple[int, ...], tuple[float, float]]:
        from repro.exec import SimPoint, raise_on_failures

        points = [
            SimPoint(
                self.params,
                Assignment(*counts, name=f"tune{counts}"),
                machine=self.machine,
                num_cpis=self.config.num_cpis,
                contention=self.config.contention,
                backend=self.config.backend,
                label=f"tune{counts}",
            )
            for counts in batch
        ]
        if self._store is not None:
            from repro.exec.campaign import Campaign

            outcomes = Campaign(points, store=self._store).run(
                jobs=self.config.jobs, progress=self.progress
            )
        else:
            from repro.exec import run_points

            outcomes = run_points(
                points, jobs=self.config.jobs, progress=self.progress
            )
        raise_on_failures(outcomes)
        measured = {}
        for counts, outcome in zip(batch, outcomes):
            metrics = outcome.unwrap().metrics
            measured[counts] = (
                metrics.measured_throughput,
                metrics.measured_latency,
            )
        return measured
