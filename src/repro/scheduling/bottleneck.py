"""Bottleneck analysis of a pipeline run (the Table 10 effect).

"If the number of nodes assigned to one task with a heavy work load is not
enough to catch up the input data rate, this task becomes a bottleneck in
the pipeline system ... the rest of the tasks have to wait for the
bottleneck task's completion ... no matter how many more nodes assigned to
them" (Section 7.3).  This module turns a simulated run's per-task timing
into that diagnosis: who limits throughput, and how much of each task's
time is idle waiting rather than work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import TASK_NAMES
from repro.core.metrics import PipelineMetrics


@dataclass(frozen=True)
class BottleneckReport:
    """Diagnosis of one run."""

    bottleneck_task: str
    bottleneck_seconds: float
    #: task -> fraction of its cycle spent in recv+send rather than compute.
    overhead_fraction: dict[str, float]
    #: Tasks whose receive time exceeds their compute time — the signature
    #: of idling on an upstream bottleneck (Table 10's symptom).
    starved_tasks: tuple[str, ...]
    throughput: float
    latency: float

    def summary(self) -> str:
        lines = [
            f"bottleneck: {self.bottleneck_task} "
            f"({self.bottleneck_seconds:.4f} s/CPI -> "
            f"throughput cap {1.0 / self.bottleneck_seconds:.3f} CPIs/s)",
        ]
        if self.starved_tasks:
            lines.append(
                "starved (recv > comp, idling on upstream): "
                + ", ".join(self.starved_tasks)
            )
        worst_overhead = max(self.overhead_fraction.items(), key=lambda kv: kv[1])
        lines.append(
            f"highest communication overhead: {worst_overhead[0]} "
            f"({100 * worst_overhead[1]:.1f}% of its cycle)"
        )
        return "\n".join(lines)


def analyze_bottleneck(metrics: PipelineMetrics) -> BottleneckReport:
    """Diagnose the bottleneck structure of a run's aggregated metrics."""
    # Work time (comp + send), not total: in steady state, totals equalize
    # to the pipeline period and waiting hides in recv.
    totals = {name: m.comp + m.send for name, m in metrics.tasks.items()}
    bottleneck = max(totals, key=totals.get)
    overhead = {}
    starved = []
    for name in TASK_NAMES:
        m = metrics.tasks.get(name)
        if m is None:
            continue
        cycle = max(m.total, 1e-12)
        overhead[name] = (m.recv + m.send) / cycle
        if m.recv > m.comp and name != "doppler":
            starved.append(name)
    return BottleneckReport(
        bottleneck_task=bottleneck,
        bottleneck_seconds=totals[bottleneck],
        overhead_fraction=overhead,
        starved_tasks=tuple(starved),
        throughput=metrics.measured_throughput,
        latency=metrics.measured_latency,
    )
