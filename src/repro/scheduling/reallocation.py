"""Dynamic processor reallocation (the paper's closing requirement).

"Almost all radar applications have real-time constraints.  Hence, a well
designed system should be able to handle any changes in the requirements on
the response time by dynamically allocating or re-allocating processors
among tasks" (Section 8).  This module plans such changes: given the
current assignment and a new requirement, it computes a *minimal-movement*
sequence of node moves — each move re-homes one node from a donor task to
a recipient task — reaching an assignment that satisfies the requirement.

Moves are deliberately granular: re-homing a node means redistributing that
task pair's data, so fewer moves = less disruption to the running pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.assignment import Assignment, TASK_NAMES
from repro.errors import AssignmentError
from repro.scheduling.model import AnalyticPipelineModel
from repro.scheduling.optimizer import _limits


@dataclass(frozen=True)
class Move:
    """One reallocation step: move a single node between tasks."""

    from_task: str
    to_task: str

    def __str__(self) -> str:
        return f"{self.from_task} -> {self.to_task}"


@dataclass
class ReallocationPlan:
    """The move sequence and the assignment it produces."""

    moves: list[Move]
    result: Assignment
    predicted_throughput: float
    predicted_latency: float

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    def summary(self) -> str:
        steps = ", ".join(str(m) for m in self.moves) or "(no change needed)"
        return (
            f"{self.num_moves} move(s): {steps}  ->  "
            f"throughput {self.predicted_throughput:.3f} CPIs/s, "
            f"latency {self.predicted_latency:.4f} s"
        )


def _counts(assignment: Assignment) -> dict[str, int]:
    return {task: assignment.count_of(task) for task in TASK_NAMES}


def plan_reallocation(
    model: AnalyticPipelineModel,
    current: Assignment,
    target_throughput: Optional[float] = None,
    target_latency: Optional[float] = None,
    max_moves: int = 64,
) -> ReallocationPlan:
    """Plan minimal node moves meeting the new requirement.

    Greedy: while the requirement is unmet, move one node from the task
    whose loss hurts the violated metric least to the task whose gain helps
    it most.  Raises :class:`AssignmentError` if the requirement cannot be
    met by redistributing the current node total.
    """
    if target_throughput is None and target_latency is None:
        raise AssignmentError("specify target_throughput and/or target_latency")
    limits = _limits(model.params)
    counts = _counts(current)
    moves: list[Move] = []

    def assignment_of(counts_):
        return Assignment(name="reallocated", **counts_)

    def satisfied(counts_) -> bool:
        a = assignment_of(counts_)
        if target_throughput is not None and model.throughput(a) < target_throughput:
            return False
        if target_latency is not None and model.latency(a) > target_latency:
            return False
        return True

    def objective(counts_) -> float:
        """Violation magnitude (0 when satisfied); ties broken by slack."""
        a = assignment_of(counts_)
        violation = 0.0
        if target_throughput is not None:
            violation += max(0.0, target_throughput - model.throughput(a))
        if target_latency is not None:
            violation += max(0.0, model.latency(a) - target_latency) * 10.0
        return violation

    while not satisfied(counts):
        if len(moves) >= max_moves:
            raise AssignmentError(
                f"requirement not reachable within {max_moves} moves from "
                f"{current.name or current.counts()}"
            )
        best = None
        base = objective(counts)
        for donor in TASK_NAMES:
            if counts[donor] <= 1:
                continue
            for recipient in TASK_NAMES:
                if recipient == donor or counts[recipient] >= limits[recipient]:
                    continue
                counts[donor] -= 1
                counts[recipient] += 1
                score = objective(counts)
                counts[donor] += 1
                counts[recipient] -= 1
                if best is None or score < best[0]:
                    best = (score, donor, recipient)
        if best is None or best[0] >= base:
            raise AssignmentError(
                "no single-node move improves the requirement; the target "
                f"is infeasible with {current.total_nodes} nodes"
            )
        _score, donor, recipient = best
        counts[donor] -= 1
        counts[recipient] += 1
        moves.append(Move(donor, recipient))

    result = assignment_of(counts)
    return ReallocationPlan(
        moves=moves,
        result=result,
        predicted_throughput=model.throughput(result),
        predicted_latency=model.latency(result),
    )
