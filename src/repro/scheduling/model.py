"""Closed-form per-task time model ``T_i(P_i)``.

For assignment search we need ``T_i`` cheaply for thousands of candidate
assignments, so instead of simulating we use the analytic decomposition the
paper's Section 5 implies::

    T_i(P) = flops_i / (rate_i * P)                 -- computation
           + pack_bytes_i / P * pack_rate_i          -- data collection/reorg
           + unpack_bytes_i / P * unpack_rate_i      -- assembly at receive
           + wire_bytes_i / P * per_byte + n_peers * startup   -- transfer

Communication volumes are assignment-independent task totals (every edge
moves the same subcubes regardless of how they are partitioned), so the
model is separable per task — which is also why the greedy allocator in
:mod:`repro.scheduling.optimizer` is exact for the bottleneck objective.
The model intentionally ignores receive-side *idle* time (waiting for the
producer): that is a property of the whole pipeline, captured by the
simulation, not of one task.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional

from repro.core.assignment import Assignment, TASK_NAMES
from repro.errors import ConfigurationError
from repro.machine import Machine, afrl_paragon
from repro.radar.parameters import STAPParams
from repro.stap import flops as flops_mod


def _edge_volumes(params: STAPParams) -> Dict[str, int]:
    """Bytes per CPI crossing each task-graph edge (assignment-free)."""
    item = params.complex_itemsize
    real_item = 4 if params.real_dtype == "float32" else 8
    K, J, N, M = (
        params.num_ranges,
        params.num_channels,
        params.num_pulses,
        params.num_beams,
    )
    n_easy, n_hard = params.num_easy_doppler, params.num_hard_doppler
    segments = params.num_segments
    hard_rows = sum(
        min(params.hard_train_samples, seg.stop - seg.start)
        for seg in params.segment_slices
    )
    return {
        "dop_to_easy_weight": n_easy * params.easy_train_per_cpi * J * item,
        "dop_to_hard_weight": n_hard * hard_rows * 2 * J * item,
        "dop_to_easy_bf": n_easy * J * K * item,
        "dop_to_hard_bf": n_hard * 2 * J * K * item,
        "easy_weight_to_bf": n_easy * J * M * item,
        "hard_weight_to_bf": segments * n_hard * 2 * J * M * item,
        "easy_bf_to_pc": n_easy * M * K * item,
        "hard_bf_to_pc": n_hard * M * K * item,
        "pc_to_cfar": N * M * K * real_item,
    }


#: Edge -> (source task, destination task, pack strided?, unpack strided?).
_EDGE_INFO = {
    "dop_to_easy_weight": ("doppler", "easy_weight", True, False),
    "dop_to_hard_weight": ("doppler", "hard_weight", True, False),
    "dop_to_easy_bf": ("doppler", "easy_beamform", True, True),
    "dop_to_hard_bf": ("doppler", "hard_beamform", True, True),
    "easy_weight_to_bf": ("easy_weight", "easy_beamform", False, False),
    "hard_weight_to_bf": ("hard_weight", "hard_beamform", False, False),
    "easy_bf_to_pc": ("easy_beamform", "pulse_compression", False, False),
    "hard_bf_to_pc": ("hard_beamform", "pulse_compression", False, False),
    "pc_to_cfar": ("pulse_compression", "cfar", False, False),
}


@dataclass(frozen=True)
class TaskTimeModel:
    """Per-task constants from which ``T_i(P)`` is evaluated."""

    task: str
    flops: float
    rate: float
    #: (bytes, strided) outgoing pack passes.
    pack: tuple[tuple[int, bool], ...]
    #: (bytes, strided) incoming unpack passes (plus sensor input for task 0).
    unpack: tuple[tuple[int, bool], ...]
    #: Total bytes this task injects into the network per CPI.
    wire_bytes: int
    #: Messages sent per CPI with one processor (scales ~1/P per node but
    #: the per-node *count* of peers stays roughly the peer task size).
    startup_messages: int

    def seconds(self, nodes: int, machine: Machine, speed: float = 1.0) -> float:
        """Evaluate ``T_i(nodes)``.

        ``speed`` scales the *compute* term only (a heterogeneous block's
        slowest-node factor); pack/unpack and the wire are per-node-uniform.
        Multiplying by the default 1.0 is exact in floating point, so
        homogeneous predictions are bit-identical to the speed-less form.
        """
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        if not speed > 0:
            raise ConfigurationError(f"speed factor must be positive, got {speed}")
        t = machine.node.rates.time_for(self.rate_key, self.flops) / (
            nodes * machine.node.smp_speedup * speed
        )
        pack_cost = machine.packing_cost
        for nbytes, strided in self.pack:
            t += pack_cost.copy_time(nbytes, strided=strided) / nodes
        for nbytes, strided in self.unpack:
            t += pack_cost.copy_time(nbytes, strided=strided) / nodes
        net = machine.network_cost
        t += net.per_byte_s * self.wire_bytes / nodes
        t += net.startup_s * self.startup_messages / nodes
        return t

    @property
    def rate_key(self) -> str:
        return self.task


class AnalyticPipelineModel:
    """Evaluate throughput/latency of any assignment without simulating."""

    def __init__(self, params: STAPParams, machine: Optional[Machine] = None):
        self.params = params
        self.machine = machine or afrl_paragon()
        # (task, nodes, speed) -> seconds.  The optimizer's greedy/
        # exhaustive searches re-evaluate the same few hundred points
        # thousands of times; the model is pure so memoizing is free
        # accuracy-wise.  Heterogeneous machines contribute only a
        # handful of distinct speed factors, so the memo stays small.
        self._seconds_memo: Dict[tuple[str, int, float], float] = {}

    @cached_property
    def task_models(self) -> Dict[str, TaskTimeModel]:
        params = self.params
        volumes = _edge_volumes(params)
        flops = flops_mod.all_task_flops(params)
        pack: Dict[str, list] = {t: [] for t in TASK_NAMES}
        unpack: Dict[str, list] = {t: [] for t in TASK_NAMES}
        wire: Dict[str, int] = {t: 0 for t in TASK_NAMES}
        startup: Dict[str, int] = {t: 0 for t in TASK_NAMES}
        for edge, (src, dst, pack_strided, unpack_strided) in _EDGE_INFO.items():
            nbytes = volumes[edge]
            pack[src].append((nbytes, pack_strided))
            unpack[dst].append((nbytes, unpack_strided))
            wire[src] += nbytes
            startup[src] += 1  # one logical message stream per edge
        # Sensor input to the Doppler task.
        sensor = params.cpi_cube_bytes
        unpack["doppler"].append((sensor, False))
        wire["doppler"] += sensor
        models = {}
        for task in TASK_NAMES:
            models[task] = TaskTimeModel(
                task=task,
                flops=flops[task],
                rate=self.machine.node.rates.rate(task),
                pack=tuple(pack[task]),
                unpack=tuple(unpack[task]),
                wire_bytes=wire[task],
                startup_messages=startup[task],
            )
        return models

    # -- predictions --------------------------------------------------------------
    def task_seconds(self, task: str, nodes: int, speed: float = 1.0) -> float:
        """Predicted ``T_i`` for one task at a node count (memoized).

        ``speed`` is the compute-rate factor of the task's node block
        (1.0 on a homogeneous machine).
        """
        key = (task, nodes, speed)
        seconds = self._seconds_memo.get(key)
        if seconds is None:
            seconds = self.task_models[task].seconds(nodes, self.machine, speed)
            self._seconds_memo[key] = seconds
        return seconds

    def task_speeds(self, assignment: Assignment) -> Dict[str, float]:
        """Per-task compute-speed factor under contiguous rank placement.

        Rank ``r`` runs on mesh node ``r``, so a task's block is the node
        range starting at its rank offset; the block's pace is its
        slowest node (:meth:`~repro.machine.paragon.Machine.min_speed`).
        """
        if not self.machine.speed_regions:
            return {task: 1.0 for task in TASK_NAMES}
        offsets = assignment.rank_offsets()
        return {
            task: self.machine.min_speed(
                offsets[task], offsets[task] + assignment.count_of(task)
            )
            for task in TASK_NAMES
        }

    def task_times(self, assignment: Assignment) -> Dict[str, float]:
        """Predicted ``T_i`` for every task of an assignment."""
        return {
            task: self.task_seconds(task, assignment.count_of(task))
            for task in TASK_NAMES
        }

    def throughput(self, assignment: Assignment) -> float:
        """Equation (1) on the modeled task times."""
        return 1.0 / max(self.task_times(assignment).values())

    def latency(self, assignment: Assignment) -> float:
        """Equation (2) on the modeled task times."""
        t = self.task_times(assignment)
        return (
            t["doppler"]
            + max(t["easy_beamform"], t["hard_beamform"])
            + t["pulse_compression"]
            + t["cfar"]
        )

    def bottleneck(self, assignment: Assignment) -> str:
        """The task predicted to limit throughput."""
        times = self.task_times(assignment)
        return max(times, key=times.get)

    # -- heterogeneity-aware predictions -------------------------------------------
    # ``throughput``/``latency`` above ARE the paper's equations (1)-(2):
    # every node identical.  The ``predicted_*`` forms additionally apply
    # each task's node-block speed factor, which is what the tuner's
    # analytic prescreen ranks candidates by.  On a homogeneous machine
    # the two families agree bit for bit.
    def hetero_task_times(self, assignment: Assignment) -> Dict[str, float]:
        """``T_i`` with each task's contiguous-block speed factor applied."""
        speeds = self.task_speeds(assignment)
        return {
            task: self.task_seconds(
                task, assignment.count_of(task), speeds[task]
            )
            for task in TASK_NAMES
        }

    def predicted_throughput(self, assignment: Assignment) -> float:
        """Equation (1) on the heterogeneity-aware task times."""
        return 1.0 / max(self.hetero_task_times(assignment).values())

    def predicted_latency(self, assignment: Assignment) -> float:
        """Equation (2) on the heterogeneity-aware task times."""
        t = self.hetero_task_times(assignment)
        return (
            t["doppler"]
            + max(t["easy_beamform"], t["hard_beamform"])
            + t["pulse_compression"]
            + t["cfar"]
        )
