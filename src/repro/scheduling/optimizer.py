"""Processor-assignment optimization.

Two objectives, matching Section 4.1.2's tradeoff discussion:

* **throughput** — minimize ``max_i T_i(P_i)`` subject to
  ``sum P_i <= budget``.  Because each ``T_i`` is decreasing in ``P_i`` and
  the objective is the maximum, the greedy rule *give the next node to the
  current bottleneck* is exact (an exchange argument: any optimal solution
  can be transformed into the greedy one without worsening the bottleneck).
* **latency** — minimize equation (2)'s critical path
  ``T_0 + max(T_3, T_4) + T_5 + T_6``, optionally subject to a minimum
  throughput.  Greedy by steepest marginal descent, with the weight tasks
  receiving nodes only when they violate the throughput constraint (they
  are off the latency path — the paper's temporal-dependency trick).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

from repro.core.assignment import Assignment, TASK_NAMES
from repro.errors import AssignmentError
from repro.radar.parameters import STAPParams
from repro.scheduling.model import AnalyticPipelineModel


def _limits(params: STAPParams) -> dict[str, int]:
    """Max useful nodes per task (its independent work units)."""
    return {
        "doppler": params.num_ranges,
        "easy_weight": params.num_easy_doppler,
        "hard_weight": params.num_hard_doppler * params.num_segments,
        "easy_beamform": params.num_easy_doppler,
        "hard_beamform": params.num_hard_doppler,
        "pulse_compression": params.num_doppler,
        "cfar": params.num_doppler,
    }


def _assignment(counts: dict[str, int], name: str) -> Assignment:
    return Assignment(name=name, **counts)


def optimize_throughput(
    model: AnalyticPipelineModel, budget: int, name: str = ""
) -> Assignment:
    """Greedy bottleneck-first allocation of ``budget`` nodes."""
    num_tasks = len(TASK_NAMES)
    if budget < num_tasks:
        raise AssignmentError(
            f"budget {budget} below the minimum of one node per task ({num_tasks})"
        )
    limits = _limits(model.params)
    counts = {task: 1 for task in TASK_NAMES}
    remaining = budget - num_tasks
    while remaining > 0:
        # Current per-task times; give the node to the worst task that can
        # still use one.
        times = {
            task: model.task_seconds(task, counts[task]) for task in TASK_NAMES
        }
        candidates = [t for t in TASK_NAMES if counts[t] < limits[t]]
        if not candidates:
            break
        bottleneck = max(candidates, key=lambda t: times[t])
        counts[bottleneck] += 1
        remaining -= 1
    return _assignment(counts, name or f"opt-throughput({budget})")


#: Tasks on the equation-(2) latency critical path.
_LATENCY_PATH = ("doppler", "easy_beamform", "hard_beamform", "pulse_compression", "cfar")


def optimize_latency(
    model: AnalyticPipelineModel,
    budget: int,
    min_throughput: Optional[float] = None,
    name: str = "",
) -> Assignment:
    """Greedy latency descent with an optional throughput floor."""
    num_tasks = len(TASK_NAMES)
    if budget < num_tasks:
        raise AssignmentError(
            f"budget {budget} below the minimum of one node per task ({num_tasks})"
        )
    limits = _limits(model.params)
    counts = {task: 1 for task in TASK_NAMES}
    remaining = budget - num_tasks

    def latency_of(counts_):
        t = {task: model.task_seconds(task, counts_[task]) for task in TASK_NAMES}
        return (
            t["doppler"]
            + max(t["easy_beamform"], t["hard_beamform"])
            + t["pulse_compression"]
            + t["cfar"]
        )

    def throughput_of(counts_):
        return 1.0 / max(
            model.task_seconds(task, counts_[task]) for task in TASK_NAMES
        )

    while remaining > 0:
        # Satisfy the throughput floor first (weight tasks can only get
        # nodes through this branch — they are off the latency path).
        if min_throughput is not None and throughput_of(counts) < min_throughput:
            times = {t: model.task_seconds(t, counts[t]) for t in TASK_NAMES}
            candidates = [t for t in TASK_NAMES if counts[t] < limits[t]]
            if not candidates:
                break
            bottleneck = max(candidates, key=lambda t: times[t])
            counts[bottleneck] += 1
            remaining -= 1
            continue
        base = latency_of(counts)
        best_task, best_gain = None, 0.0
        for task in _LATENCY_PATH:
            if counts[task] >= limits[task]:
                continue
            counts[task] += 1
            gain = base - latency_of(counts)
            counts[task] -= 1
            if gain > best_gain:
                best_task, best_gain = task, gain
        if best_task is None:
            break
        counts[best_task] += 1
        remaining -= 1
    return _assignment(counts, name or f"opt-latency({budget})")


def exhaustive_search(
    model: AnalyticPipelineModel,
    budget: int,
    objective: str = "throughput",
    max_per_task: int = 8,
    max_combinations: int = 4_000_000,
) -> Assignment:
    """Brute-force search over all assignments (tiny budgets only).

    Used by tests to certify the greedy allocator; cost grows as
    ``max_per_task ** 7``, so keep budgets small.  The search refuses to
    start when the candidate grid exceeds ``max_combinations`` — raising
    ``max_per_task`` a little is easy to do and multiplies the runtime by
    hours, so the failure names the count and the knob instead of hanging.
    """
    if objective not in ("throughput", "latency"):
        raise AssignmentError(f"unknown objective {objective!r}")
    limits = _limits(model.params)
    best_counts, best_value = None, None
    spans = [
        range(1, min(max_per_task, limits[task]) + 1) for task in TASK_NAMES
    ]
    combinations = math.prod(len(span) for span in spans)
    if combinations > max_combinations:
        raise AssignmentError(
            f"exhaustive search would enumerate {combinations} candidate "
            f"assignments, over the max_combinations limit of "
            f"{max_combinations}; lower max_per_task or raise the limit "
            f"explicitly"
        )
    for combo in itertools.product(*spans):
        if sum(combo) > budget:
            continue
        counts = dict(zip(TASK_NAMES, combo))
        assignment = _assignment(counts, "candidate")
        if objective == "throughput":
            value = -model.throughput(assignment)
        else:
            value = model.latency(assignment)
        if best_value is None or value < best_value - 1e-15:
            best_counts, best_value = counts, value
    if best_counts is None:
        raise AssignmentError(f"no feasible assignment within budget {budget}")
    return _assignment(best_counts, f"exhaustive-{objective}({budget})")
