"""Command-line interface: ``repro-stap <command>``.

Subcommands map onto the paper's experiments:

=============  =====================================================
``flops``      Table 1 — flop counts per task
``case``       Table 7/8 — run a named assignment on the Paragon model
``roundrobin`` Section 2 — the RTMCARM baseline
``optimize``   Section 4.1.2 — processor-assignment search
``tune``       simulation-in-the-loop Pareto auto-tuner
``detect``     functional demo — detections from synthetic data
``timeline``   ASCII Gantt of a pipeline run
``sweep``      Figure 11 / scalability sweeps on the parallel executor
``campaign``   durable, resumable sweeps over a shared on-disk store
=============  =====================================================

Also runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    CASE1,
    CASE2,
    CASE3,
    CASE2_PLUS_DOPPLER,
    CASE2_PLUS_DOPPLER_PC_CFAR,
    CPIStream,
    RadarScenario,
    RoundRobinSTAP,
    STAPParams,
    STAPPipeline,
    SequentialSTAP,
)
from repro.core.timeline import render_timeline
from repro.scheduling import (
    AnalyticPipelineModel,
    optimize_latency,
    optimize_throughput,
)
from repro.stap import flops

NAMED_CASES = {
    "case1": CASE1,
    "case2": CASE2,
    "case3": CASE3,
    "table9": CASE2_PLUS_DOPPLER,
    "table10": CASE2_PLUS_DOPPLER_PC_CFAR,
}


def _enable_metrics(args) -> bool:
    """Turn the metrics registry on when ``--metrics-out`` was given."""
    if not getattr(args, "metrics_out", None):
        return False
    from repro.obs.metrics import metrics_registry

    metrics_registry.enable(reset=True)
    return True


def _write_metrics(args) -> None:
    """Dump the registry to ``--metrics-out`` in the requested format."""
    from repro.obs.metrics import metrics_registry, write_snapshot

    path = write_snapshot(
        metrics_registry.snapshot(), args.metrics_out, format=args.metrics_format
    )
    metrics_registry.disable()
    print(f"wrote metrics {path} ({args.metrics_format})")


def _add_metrics_flags(subparser) -> None:
    subparser.add_argument("--metrics-out", metavar="PATH", default=None,
                           help="enable the metrics registry and write its "
                                "snapshot to PATH after the run")
    subparser.add_argument("--metrics-format", choices=("json", "prom"),
                           default="json",
                           help="snapshot format for --metrics-out "
                                "(JSON or Prometheus text)")


def cmd_flops(_args) -> int:
    print(flops.flops_table(STAPParams.paper()))
    return 0


def cmd_case(args) -> int:
    assignment = NAMED_CASES[args.name]
    trace = bool(args.trace_out or args.report)
    metered = _enable_metrics(args)
    pipeline = STAPPipeline(
        STAPParams.paper(), assignment, num_cpis=args.cpis, perf=args.perf,
        trace=trace, backend=args.backend,
    )
    result = pipeline.run_measured() if args.measured else pipeline.run()
    print(result.metrics.table(f"=== {assignment.name} ==="))
    if args.perf and result.perf is not None:
        print()
        print(result.perf.summary())
    if args.report:
        from repro.obs import build_report

        print()
        print(build_report(result.trace).text())
    if args.trace_out:
        from repro.obs import write_chrome_trace

        path = write_chrome_trace(
            result.trace, args.trace_out, mesh=pipeline.machine.mesh
        )
        print(f"\nwrote timeline {path} (open at https://ui.perfetto.dev)")
    if metered:
        _write_metrics(args)
    if args.profile:
        from repro.perf import profile_run

        _, stats = profile_run(
            STAPPipeline(
                STAPParams.paper(), assignment, num_cpis=args.cpis,
                backend=args.backend,
            ).run,
            sort="tottime",
        )
        print()
        print(stats)
    return 0


def cmd_roundrobin(args) -> int:
    result = RoundRobinSTAP(STAPParams.paper(), num_nodes=args.nodes).run(
        num_cpis=args.cpis
    )
    print(result.summary())
    print("(paper, Section 2: up to 10 CPIs/s throughput, 2.35 s latency "
          "on 25 nodes)")
    return 0


def cmd_optimize(args) -> int:
    params = _preset_params(args.params)
    model = AnalyticPipelineModel(params)
    if args.objective == "throughput":
        assignment = optimize_throughput(model, args.budget)
    else:
        assignment = optimize_latency(
            model, args.budget, min_throughput=args.min_throughput
        )
    print(f"assignment for {args.budget} nodes ({args.objective}):")
    for task, count in zip(
        ("doppler", "easy_weight", "hard_weight", "easy_beamform",
         "hard_beamform", "pulse_compression", "cfar"),
        assignment.counts(),
    ):
        print(f"  {task:<18} {count}")
    predicted_throughput = model.throughput(assignment)
    predicted_latency = model.latency(assignment)
    print(f"predicted throughput: {predicted_throughput:.3f} CPIs/s")
    print(f"predicted latency:    {predicted_latency:.4f} s")
    if args.confirm:
        from repro.exec import SimPoint, run_points

        outcome = run_points(
            [
                SimPoint(
                    params, assignment, num_cpis=args.cpis,
                    label=f"confirm {assignment.name}",
                )
            ]
        )[0]
        metrics = outcome.unwrap().metrics
        source = "cache" if outcome.cached else "simulated"
        print(f"\nconfirmation run ({args.cpis} CPIs, {source}):")
        print(f"{'':>14} {'predicted':>11} {'simulated':>11} {'error':>8}")
        for label, predicted, simulated in (
            ("throughput", predicted_throughput, metrics.measured_throughput),
            ("latency", predicted_latency, metrics.measured_latency),
        ):
            error = (simulated - predicted) / predicted * 100.0
            print(f"{label:>14} {predicted:>11.4f} {simulated:>11.4f} "
                  f"{error:>+7.1f}%")
    return 0


def cmd_tune(args) -> int:
    from repro.machine import machine_scenario
    from repro.perf import exec_counters
    from repro.scheduling import TunerConfig, tune

    params = _preset_params(args.params)
    machine = machine_scenario(args.scenario)
    config = TunerConfig(
        objective=args.objective,
        num_cpis=args.cpis,
        sim_candidates=args.sim_candidates,
        sim_rounds=args.sim_rounds,
        jobs=args.jobs,
        backend=args.backend,
    )
    seeds = []
    if args.params == "paper":
        # Ride the paper's evaluated assignments along as seeds so the
        # result states where Table 7/9/10 sit relative to the front.
        seeds = [
            case for case in NAMED_CASES.values()
            if case.total_nodes <= args.budget
        ]
    dash = None
    if args.dashboard:
        from repro.obs import SweepDashboard

        dash = SweepDashboard(label=f"tune:{args.scenario}:{args.budget}")
    metered = _enable_metrics(args)
    before = exec_counters.snapshot()
    result = tune(
        params,
        args.budget,
        machine=machine,
        config=config,
        seeds=seeds,
        campaign_dir=args.campaign_dir,
        progress=dash,
    )
    delta = exec_counters.delta_since(before)
    print(result.summary())
    hits = delta["cache_hits_memory"] + delta["cache_hits_disk"]
    print(f"\nexecutor: {delta['points_submitted']} points, "
          f"{delta['simulations_run']} simulated, {hits} from cache "
          f"({delta['cache_hits_disk']} disk)")
    if dash is not None:
        print()
        print(dash.summary())
    if args.out:
        front = result.front
        front.extra.update(result.to_dict()["extra"])
        path = front.save(args.out)
        print(f"wrote Pareto front {path}")
    if metered:
        _write_metrics(args)
    return 0


def cmd_detect(args) -> int:
    params = STAPParams.small()
    scenario = RadarScenario.standard(seed=args.seed)
    # Keep targets inside the small cube.
    scenario = scenario.with_targets(
        [t for t in scenario.targets if t.range_cell < params.num_ranges]
    )
    if args.rt_workers:
        return _detect_parallel(params, scenario, args)
    stap = SequentialSTAP(params)
    for cube in CPIStream(params, scenario).take(args.cpis):
        report = stap.process(cube)
        print(f"CPI {cube.cpi_index}: {len(report)} detections")
        for det in report.strongest(3):
            print(f"    bin {det.doppler_bin:3d} beam {det.beam} "
                  f"range {det.range_cell:3d} margin {det.margin_db:5.1f} dB")
    return 0


def _detect_parallel(params, scenario, args) -> int:
    """The same detection demo, run by the real parallel runtime."""
    from repro.rt import ParallelSTAP

    stream = CPIStream(params, scenario)
    rt = ParallelSTAP(
        params, stream, num_cpis=args.cpis, workers=args.rt_workers
    )
    print(f"parallel runtime: {rt.plan.total_workers} workers "
          f"{rt.plan.as_dict()}")
    result = rt.run()
    for report in result.reports:
        print(f"CPI {report.cpi_index}: {len(report)} detections")
        for det in report.strongest(3):
            print(f"    bin {det.doppler_bin:3d} beam {det.beam} "
                  f"range {det.range_cell:3d} margin {det.margin_db:5.1f} dB")
    print(f"elapsed {result.elapsed_seconds:.3f} s — "
          f"throughput {result.throughput:.2f} CPIs/s "
          f"(steady {result.steady_throughput:.2f}), "
          f"latency {result.latency:.3f} s")
    return 0


def cmd_table(args) -> int:
    from repro.experiments import (
        run_baseline,
        run_table1,
        run_table7,
        run_table8,
        run_table9,
        run_table10,
    )

    runners = {
        "1": lambda: run_table1(),
        "7": lambda: run_table7(args.case, num_cpis=args.cpis),
        "8": lambda: run_table8(num_cpis=args.cpis),
        "9": lambda: run_table9(num_cpis=args.cpis),
        "10": lambda: run_table10(num_cpis=args.cpis),
        "baseline": lambda: run_baseline(),
    }
    result = runners[args.id]()
    print(result.render())
    print(f"worst deviation from paper: {result.worst_error_pct():.1f}%")
    return 0


def cmd_report(args) -> int:
    from repro.experiments import write_report

    path = write_report(args.output, num_cpis=args.cpis, quick=args.quick)
    print(f"wrote {path}")
    return 0


def cmd_sweep(args) -> int:
    from repro.exec import ResultCache, set_default_cache
    from repro.experiments import scalability_curve, speedup_series
    from repro.perf import exec_counters

    cache = None if args.no_cache else ResultCache(directory=args.cache_dir)
    if cache is not None:
        set_default_cache(cache)
    metered = _enable_metrics(args)
    dash = None
    if args.dashboard:
        from repro.obs import SweepDashboard

        dash = SweepDashboard(label=f"sweep:{args.kind}")
    before = exec_counters.snapshot()
    if args.kind == "speedup":
        nodes = [int(n) for n in args.nodes.split(",")]
        series = speedup_series(
            args.task, nodes, num_cpis=args.cpis, jobs=args.jobs, cache=cache,
            backend=args.backend, progress=dash,
            campaign_dir=args.campaign_dir,
        )
        print(f"=== Figure 11 series: {args.task} "
              f"(jobs={args.jobs}, {len(series)} points) ===")
        print(f"{'nodes':>6} {'comp (s)':>10} {'speedup':>9} "
              f"{'ideal':>7} {'efficiency':>11}")
        for point in series:
            print(f"{point.nodes:>6} {point.comp_seconds:>10.4f} "
                  f"{point.speedup:>9.3f} {point.ideal_speedup:>7.2f} "
                  f"{point.efficiency:>11.3f}")
    else:
        budgets = [int(b) for b in args.budgets.split(",")]
        curve = scalability_curve(
            budgets, num_cpis=args.cpis, measured=args.measured,
            jobs=args.jobs, cache=cache, backend=args.backend, progress=dash,
            campaign_dir=args.campaign_dir,
        )
        print(f"=== scalability curve (jobs={args.jobs}, "
              f"{len(curve)} points) ===")
        print(f"{'budget':>7} {'nodes':>6} {'throughput':>11} {'latency':>9}")
        for point in curve:
            print(f"{point.budget:>7} {point.assignment.total_nodes:>6} "
                  f"{point.throughput:>11.4f} {point.latency:>9.4f}")
    delta = exec_counters.delta_since(before)
    hits = delta["cache_hits_memory"] + delta["cache_hits_disk"]
    print(f"\nexecutor: {delta['points_submitted']} points, "
          f"{delta['simulations_run']} simulated, {hits} from cache "
          f"({delta['cache_hits_disk']} disk), "
          f"{delta['point_errors']} errors")
    if dash is not None:
        print()
        print(dash.summary())
    if metered:
        _write_metrics(args)
    return 0


_PARAM_PRESETS = ("paper", "small", "tiny")


def _preset_params(name: str):
    return getattr(STAPParams, name)()


def _campaign_points(args):
    """The declared point set of a ``campaign run`` invocation."""
    from repro.experiments import scalability_points, speedup_points

    params = _preset_params(args.params)
    if args.kind == "speedup":
        nodes = [int(n) for n in args.nodes.split(",")]
        points, _ = speedup_points(
            args.task, nodes, num_cpis=args.cpis, params=params,
            backend=args.backend,
        )
    else:
        budgets = [int(b) for b in args.budgets.split(",")]
        points, _ = scalability_points(
            budgets, num_cpis=args.cpis, params=params,
            measured=args.measured, backend=args.backend,
        )
    return points


def _campaign_execute(campaign, args) -> int:
    """Drain (part of) a campaign's queue and report what happened."""
    from repro.exec import raise_on_failures
    from repro.obs import campaign_status
    from repro.perf import exec_counters

    dash = None
    if args.dashboard:
        from repro.obs import SweepDashboard

        dash = SweepDashboard(label=f"campaign:{campaign.store.name}")
    before = exec_counters.snapshot()
    outcomes = campaign.run(
        jobs=args.jobs, progress=dash, limit=args.max_points
    )
    delta = exec_counters.delta_since(before)
    hits = delta["cache_hits_memory"] + delta["cache_hits_disk"]
    print(f"campaign: {delta['points_submitted']} points processed, "
          f"{delta['simulations_run']} simulated, {hits} from store "
          f"({delta['cache_hits_disk']} disk), "
          f"{delta['point_errors']} errors")
    print()
    print(campaign_status(args.dir))
    raise_on_failures(outcomes)
    return 0


def cmd_campaign_run(args) -> int:
    from repro.exec import Campaign, CampaignStore

    store = CampaignStore(args.dir, name=args.name or f"{args.kind}")
    campaign = Campaign(_campaign_points(args), store=store)
    return _campaign_execute(campaign, args)


def cmd_campaign_status(args) -> int:
    from repro.obs import campaign_status

    print(campaign_status(args.dir))
    return 0


def cmd_campaign_resume(args) -> int:
    from repro.errors import ExecutionError
    from repro.exec import load_campaign

    try:
        campaign = load_campaign(args.dir)
    except ExecutionError as error:
        print(error, file=sys.stderr)
        return 2
    return _campaign_execute(campaign, args)


def cmd_timeline(args) -> int:
    assignment = NAMED_CASES[args.name]
    result = STAPPipeline(
        STAPParams.paper(), assignment, num_cpis=args.cpis
    ).run()
    start = max(args.cpis // 2 - 1, 0)
    print(render_timeline(result.collector, start, min(start + 3, args.cpis),
                          width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stap",
        description="Parallel pipelined STAP reproduction (IPPS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("flops", help="Table 1: flop counts").set_defaults(fn=cmd_flops)

    p_case = sub.add_parser("case", help="run a named node assignment")
    p_case.add_argument("--name", choices=sorted(NAMED_CASES), default="case2")
    p_case.add_argument("--cpis", type=int, default=25)
    p_case.add_argument("--measured", action="store_true",
                        help="two-phase paced latency measurement")
    p_case.add_argument("--perf", action="store_true",
                        help="report the simulator's own wall-clock cost")
    p_case.add_argument("--backend",
                        choices=("python", "lowered", "compiled", "auto"),
                        default=None,
                        help="simulator core (default: the reference "
                             "python engine; 'auto' picks the fastest "
                             "available)")
    p_case.add_argument("--profile", action="store_true",
                        help="re-run the case under cProfile and print "
                             "the hottest functions")
    p_case.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Perfetto/Chrome-trace JSON timeline "
                             "of the run to PATH")
    p_case.add_argument("--report", action="store_true",
                        help="print the per-task/per-link bottleneck report")
    _add_metrics_flags(p_case)
    p_case.set_defaults(fn=cmd_case)

    p_rr = sub.add_parser("roundrobin", help="Section 2 baseline")
    p_rr.add_argument("--nodes", type=int, default=25)
    p_rr.add_argument("--cpis", type=int, default=50)
    p_rr.set_defaults(fn=cmd_roundrobin)

    p_opt = sub.add_parser("optimize", help="processor-assignment search")
    p_opt.add_argument("--budget", type=int, required=True)
    p_opt.add_argument("--objective", choices=("throughput", "latency"),
                       default="throughput")
    p_opt.add_argument("--min-throughput", type=float, default=None)
    p_opt.add_argument("--params", choices=_PARAM_PRESETS, default="paper",
                       help="STAP parameter preset the model is built for")
    p_opt.add_argument("--cpis", type=int, default=15,
                       help="CPIs for the --confirm simulation")
    p_opt.add_argument("--confirm", action="store_true",
                       help="run one (cached) simulation of the chosen "
                            "assignment and print predicted vs simulated "
                            "side by side")
    p_opt.set_defaults(fn=cmd_optimize)

    p_tune = sub.add_parser(
        "tune",
        help="simulation-in-the-loop Pareto auto-tuner (analytic "
             "prescreen, then cached simulator refinement)",
    )
    p_tune.add_argument("--budget", type=int, required=True,
                        help="node budget to assign")
    p_tune.add_argument("--objective",
                        choices=("pareto", "throughput", "latency"),
                        default="pareto")
    p_tune.add_argument("--params", choices=_PARAM_PRESETS, default="paper",
                        help="STAP parameter preset")
    p_tune.add_argument("--scenario", default="paragon",
                        help="machine scenario (see repro.machine: paragon, "
                             "fat_nodes, fast_links, gpu_nodes, legacy_front)")
    p_tune.add_argument("--cpis", type=int, default=15,
                        help="CPIs per refinement simulation")
    p_tune.add_argument("--jobs", type=int, default=1,
                        help="worker processes for refinement simulations")
    p_tune.add_argument("--sim-candidates", type=int, default=12,
                        help="candidates simulated per refinement round "
                             "(0 = analytic prescreen only, no simulation)")
    p_tune.add_argument("--sim-rounds", type=int, default=2,
                        help="refinement rounds around the measured winners")
    p_tune.add_argument("--backend",
                        choices=("python", "lowered", "compiled", "auto"),
                        default=None,
                        help="simulator core for refinement runs")
    p_tune.add_argument("--campaign-dir", metavar="PATH", default=None,
                        help="root refinement runs in a durable campaign "
                             "store at PATH (interrupt and rerun to resume; "
                             "a warm store re-simulates nothing)")
    p_tune.add_argument("--dashboard", action="store_true",
                        help="live progress line on stderr during "
                             "refinement rounds")
    p_tune.add_argument("--out", metavar="PATH", default=None,
                        help="write the tuned Pareto front as versioned "
                             "JSON to PATH")
    _add_metrics_flags(p_tune)
    p_tune.set_defaults(fn=cmd_tune)

    p_det = sub.add_parser("detect", help="functional detection demo")
    p_det.add_argument("--cpis", type=int, default=4)
    p_det.add_argument("--seed", type=int, default=20260707)
    p_det.add_argument(
        "--rt-workers", type=int, default=0, metavar="N",
        help="run the real process-parallel runtime with N workers "
             "(0 = sequential in-process demo)")
    p_det.set_defaults(fn=cmd_detect)

    p_tab = sub.add_parser("table", help="reproduce one of the paper's tables")
    p_tab.add_argument("--id", choices=("1", "7", "8", "9", "10", "baseline"),
                       required=True)
    p_tab.add_argument("--case", choices=("case1", "case2", "case3"),
                       default="case2", help="for table 7")
    p_tab.add_argument("--cpis", type=int, default=25)
    p_tab.set_defaults(fn=cmd_table)

    p_rep = sub.add_parser("report", help="write the full reproduction report")
    p_rep.add_argument("--output", default="reproduction_report.md")
    p_rep.add_argument("--cpis", type=int, default=25)
    p_rep.add_argument("--quick", action="store_true",
                       help="case 3 only, short runs")
    p_rep.set_defaults(fn=cmd_report)

    p_sw = sub.add_parser(
        "sweep",
        help="run an experiment sweep on the parallel executor",
    )
    p_sw.add_argument("--kind", choices=("speedup", "scalability"),
                      default="speedup")
    p_sw.add_argument("--task", default="cfar",
                      help="swept task for --kind speedup")
    p_sw.add_argument("--nodes", default="4,8,16",
                      help="comma-separated node counts (speedup)")
    p_sw.add_argument("--budgets", default="30,59,118",
                      help="comma-separated node budgets (scalability)")
    p_sw.add_argument("--cpis", type=int, default=25)
    p_sw.add_argument("--measured", action="store_true",
                      help="two-phase paced measurement per point "
                           "(scalability)")
    p_sw.add_argument("--jobs", type=int, default=1,
                      help="worker processes for independent points")
    p_sw.add_argument("--cache-dir", metavar="PATH", default=None,
                      help="persist results on disk (content-addressed)")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="disable the result cache entirely")
    p_sw.add_argument("--backend",
                      choices=("python", "lowered", "compiled", "auto"),
                      default=None,
                      help="simulator core for every point of the sweep")
    p_sw.add_argument("--dashboard", action="store_true",
                      help="live progress line on stderr plus a final "
                           "campaign summary (rate, hit rate, stage "
                           "latency sparklines)")
    p_sw.add_argument("--campaign-dir", metavar="PATH", default=None,
                      help="run the sweep as a durable campaign rooted at "
                           "PATH (declared manifest + shared store; "
                           "interrupt and rerun to resume)")
    _add_metrics_flags(p_sw)
    p_sw.set_defaults(fn=cmd_sweep)

    p_cp = sub.add_parser(
        "campaign",
        help="durable, resumable sweeps over a shared on-disk store",
    )
    cp_sub = p_cp.add_subparsers(dest="action", required=True)

    def _add_campaign_exec_flags(p) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for pending points")
        p.add_argument("--max-points", type=int, default=None, metavar="K",
                       help="simulate at most K pending points this "
                            "invocation; the rest stay pending for a "
                            "later resume")
        p.add_argument("--dashboard", action="store_true",
                       help="live progress line on stderr while running")

    p_cr = cp_sub.add_parser(
        "run", help="declare a point set into DIR and drain its queue")
    p_cr.add_argument("--dir", required=True, metavar="PATH",
                      help="campaign directory (manifest.json + results/)")
    p_cr.add_argument("--name", default=None,
                      help="campaign display name (default: the kind)")
    p_cr.add_argument("--kind", choices=("speedup", "scalability"),
                      default="speedup")
    p_cr.add_argument("--task", default="cfar",
                      help="swept task for --kind speedup")
    p_cr.add_argument("--nodes", default="4,8,16",
                      help="comma-separated node counts (speedup)")
    p_cr.add_argument("--budgets", default="30,59,118",
                      help="comma-separated node budgets (scalability)")
    p_cr.add_argument("--cpis", type=int, default=25)
    p_cr.add_argument("--measured", action="store_true",
                      help="two-phase paced measurement per point "
                           "(scalability)")
    p_cr.add_argument("--params", choices=_PARAM_PRESETS, default="paper",
                      help="STAP parameter preset for every point")
    p_cr.add_argument("--backend",
                      choices=("python", "lowered", "compiled", "auto"),
                      default=None,
                      help="simulator core for every point")
    _add_campaign_exec_flags(p_cr)
    p_cr.set_defaults(fn=cmd_campaign_run)

    p_cs = cp_sub.add_parser(
        "status",
        help="report a campaign's progress from its store alone "
             "(works from a second terminal against a live campaign)")
    p_cs.add_argument("--dir", required=True, metavar="PATH")
    p_cs.set_defaults(fn=cmd_campaign_status)

    p_cres = cp_sub.add_parser(
        "resume",
        help="rebuild the point set from DIR's manifest and finish "
             "whatever is still pending")
    p_cres.add_argument("--dir", required=True, metavar="PATH")
    _add_campaign_exec_flags(p_cres)
    p_cres.set_defaults(fn=cmd_campaign_resume)

    p_tl = sub.add_parser("timeline", help="ASCII Gantt of a pipeline run")
    p_tl.add_argument("--name", choices=sorted(NAMED_CASES), default="case3")
    p_tl.add_argument("--cpis", type=int, default=10)
    p_tl.add_argument("--width", type=int, default=100)
    p_tl.set_defaults(fn=cmd_timeline)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
