"""World and Communicator: rank management and point-to-point matching.

Matching semantics follow MPI:

* a receive matches the *earliest* posted, not-yet-matched send whose
  (source, tag) satisfies its pattern (wildcards allowed);
* messages between a fixed (source, dest, tag) triple are non-overtaking;
* each communicator is an isolated matching context (a message sent on one
  communicator can never match a receive on another).

Transfer protocol, as in real MPI implementations:

* messages up to ``eager_threshold`` bytes use the **eager** protocol: the
  send request completes as soon as the message is handed to the transport
  (buffered); small control traffic therefore never deadlocks on posting
  order;
* larger messages use **rendezvous**: the wire transfer starts when send
  and receive are both posted, and the send request completes when the
  payload arrives.  This throttles producers (double buffering bounds how
  far ahead a task can run) and makes the receiver's blocked time include
  waiting-for-the-sender — exactly the quantity the paper's "recv" columns
  report (Section 7.2: "timing results shown in the tables contain idle
  time for waiting for the corresponding task to complete").
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappush
from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from repro.des import Simulator
from repro.des.backends.plan import TAG_BITS, TAG_LIMIT
from repro.des.event import PENDING, TRIGGERED
from repro.errors import MPIError
from repro.machine.network import Network
from repro.machine.paragon import Machine
from repro.mpi.datatypes import Message, payload_nbytes, ANY_SOURCE, ANY_TAG
from repro.mpi.request import SendRequest, RecvRequest


class _PendingSend:
    """A posted send waiting for its matching receive."""

    __slots__ = ("request", "message", "src_world", "dst_world", "seq", "record")

    def __init__(self, request, message, src_world, dst_world, seq):
        self.request = request
        self.message = message
        self.src_world = src_world
        self.dst_world = dst_world
        self.seq = seq
        #: Observability record (post/match/complete stamps); None unless a
        #: :class:`~repro.obs.TraceSink` is attached to the world.
        self.record = None


class World:
    """All ranks of one simulation run, placed onto machine nodes.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    machine:
        Machine description; its network is instantiated here.
    num_ranks:
        Number of world ranks.
    placement:
        Optional mapping rank -> mesh node id (default: identity).  The
        pipeline places each task's ranks on a contiguous block of nodes,
        mirroring the paper's task-to-partition mapping.
    contention:
        Passed to :meth:`Machine.build_network`.
    eager_threshold:
        Messages of at most this many bytes complete their send request at
        posting time (buffered eager protocol).
    backend:
        Simulator backend: an :class:`~repro.des.backends.EngineBackend`
        instance, a backend name, or None to match the simulator's own
        backend (a plain :class:`Simulator` keeps the reference network
        and matcher, so existing call sites are unchanged).
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        num_ranks: int,
        placement: Optional[Sequence[int]] = None,
        contention="endpoint",
        eager_threshold: int = 16 * 1024,
        backend=None,
    ):
        from repro.des.backends import EngineBackend, get_backend, timed_plan

        if num_ranks < 1:
            raise MPIError(f"world needs at least 1 rank, got {num_ranks}")
        machine.check_node_budget(num_ranks if placement is None else max(placement) + 1)
        self.sim = sim
        self.machine = machine
        if not isinstance(backend, EngineBackend):
            backend = get_backend(backend if backend is not None else sim.backend)
        self.backend = backend.name
        #: Lowered per-run tables (None on the reference backend).
        self.engine_plan = timed_plan(
            backend, machine.mesh, machine.network_cost, contention
        )
        self.network: Network = backend.create_network(
            sim, machine.mesh, machine.network_cost, contention, self.engine_plan
        )
        if self.network._matched_fast:
            self.network.bind_deliver(self._deliver_matched)
        self.num_ranks = num_ranks
        if placement is None:
            placement = list(range(num_ranks))
        if len(placement) != num_ranks:
            raise MPIError(
                f"placement has {len(placement)} entries for {num_ranks} ranks"
            )
        self.placement = list(placement)
        self.eager_threshold = int(eager_threshold)
        self._context_counter = itertools.count()
        self._send_seq = itertools.count()
        # Matching state.  Sends always carry a concrete (source, tag), so
        # unmatched sends live in exact-key FIFO queues; one posted-order
        # sequence number per operation ties the structures together and
        # preserves MPI's earliest-posted / non-overtaking semantics.
        # Receives with a wildcard go to a per-destination side queue that
        # stays tiny (the pipeline itself never posts wildcards).
        #   exact key: (context_id, dst_world, src_world, tag)
        #   dest key:  (context_id, dst_world)
        # With an engine plan, both keys are packed into single integers
        # (tag in the low TAG_BITS) — one int hash per matcher probe
        # instead of a tuple allocation plus four hashes.
        self._sends_exact: dict = {}
        self._send_keys: dict = {}
        self._recvs_exact: dict = {}
        self._recvs_wild: dict = {}
        self._packed = (
            self.engine_plan is not None and self.engine_plan.pack_match_keys
        )
        #: Matching-probe counter: queue entries examined while matching
        #: (the figure the indexed fast path drives toward ~1 per message).
        self.match_probes = 0
        #: Point-to-point operations posted (sends, receives).
        self.sends_posted = 0
        self.recvs_posted = 0
        #: Wildcard traffic: receives posted with ANY_SOURCE/ANY_TAG, and
        #: matches that involved one.  The pipeline itself posts none, so
        #: these stay on the cold path; nonzero values flag a workload the
        #: indexed matcher cannot serve at ~1 probe/op.
        self.wildcard_recvs = 0
        self.wildcard_hits = 0
        #: Optional :class:`~repro.obs.TraceSink` recording per-message
        #: post -> match -> complete lifecycles.  Attached by the pipeline;
        #: when None (the default) the matcher pays one ``is None`` check
        #: per send and nothing else.
        self.obs = None
        #: World communicator spanning every rank.
        self.comm = Communicator(self, list(range(num_ranks)))

    # -- rank spawning -----------------------------------------------------------
    def spawn(
        self,
        rank: int,
        program: Callable[["RankContext"], Generator],
        name="",
        comm: Optional["Communicator"] = None,
    ):
        """Run ``program(ctx)`` as the process for world rank ``rank``.

        ``comm`` binds the context to a sub-communicator (``ctx.rank``
        becomes the local rank there); default is the world communicator.
        """
        from repro.mpi.context import RankContext

        ctx = RankContext(self, comm or self.comm, rank)
        return self.sim.process(program(ctx), name=name or f"rank{rank}")

    def spawn_all(self, program: Callable[["RankContext"], Generator]):
        """Spawn ``program`` on every world rank; returns the processes."""
        return [self.spawn(r, program) for r in range(self.num_ranks)]

    def node_of(self, world_rank: int) -> int:
        """Mesh node hosting ``world_rank``."""
        return self.placement[world_rank]

    # -- matching core -------------------------------------------------------------
    # A receive must match the earliest-posted, not-yet-matched send whose
    # (source, tag) satisfies its pattern — and vice versa.  With exact-key
    # FIFO queues the earliest exact candidate is the front of one deque;
    # wildcard candidates are compared by posted-order sequence number, so
    # the indexed structures reproduce the linear scan's choices exactly.
    def _post_send(
        self,
        context_id: int,
        src_world: int,
        dst_world: int,
        tag: int,
        payload: Any,
        nbytes: int,
    ) -> SendRequest:
        sim = self.sim
        request = SendRequest(sim, dest=dst_world, tag=tag, nbytes=nbytes)
        message = Message(
            source=src_world, tag=tag, payload=payload, nbytes=nbytes, sent_at=sim._now
        )
        pending = _PendingSend(request, message, src_world, dst_world, next(self._send_seq))
        self.sends_posted += 1
        if self.obs is not None:
            pending.record = self.obs.new_message(
                src_world, dst_world, tag, nbytes, self.sim.now
            )
        if self._packed:
            ranks = self.num_ranks
            dest_key = context_id * ranks + dst_world
            if tag < TAG_LIMIT:
                exact_key = ((dest_key * ranks + src_world) << TAG_BITS) | tag
            else:
                exact_key = self._pack_key(dest_key, src_world, tag)  # raises
        else:
            dest_key = (context_id, dst_world)
            exact_key = (context_id, dst_world, src_world, tag)
        probes = 0

        # Emptied queues are left in their dicts (falsy, so every guard
        # below still works) — steady-state traffic reuses the same keys,
        # so this trades a little memory for zero deque churn per message.
        exact_queue = self._recvs_exact.get(exact_key)
        exact_cand = exact_queue[0] if exact_queue else None
        if exact_cand is not None:
            probes += 1
        wild_cand = None
        wild_idx = -1
        wild_queue = self._recvs_wild.get(dest_key) if self._recvs_wild else None
        if wild_queue:
            for idx, entry in enumerate(wild_queue):
                probes += 1
                if entry[0].matches(src_world, tag):
                    wild_cand, wild_idx = entry, idx
                    break
        self.match_probes += probes

        if exact_cand is not None and (wild_cand is None or exact_cand[1] < wild_cand[1]):
            exact_queue.popleft()
            self._start_transfer(pending, exact_cand[0])
            return request
        if wild_cand is not None:
            del wild_queue[wild_idx]
            self.wildcard_hits += 1
            self._start_transfer(pending, wild_cand[0])
            return request

        queue = self._sends_exact.get(exact_key)
        if queue is None:
            queue = self._sends_exact[exact_key] = deque()
            self._send_keys.setdefault(dest_key, set()).add(exact_key)
        elif not queue:
            self._send_keys.setdefault(dest_key, set()).add(exact_key)
        queue.append(pending)
        if nbytes <= self.eager_threshold:
            # Eager protocol: the message is buffered by the transport; the
            # sender's buffer is immediately reusable.  (Inlined
            # Event.succeed(None): same writes, same schedule.)
            request._ok = True
            request._state = TRIGGERED
            sim._seq += 1
            heappush(sim._queue, (sim._now, 1, sim._seq, request))
        return request

    def _post_recv(
        self, context_id: int, dst_world: int, source: int, tag: int
    ) -> RecvRequest:
        request = RecvRequest(self.sim, source=source, tag=tag)
        self.recvs_posted += 1

        packed = self._packed
        if packed:
            dest_key = context_id * self.num_ranks + dst_world
        else:
            dest_key = (context_id, dst_world)

        if source != ANY_SOURCE and tag != ANY_TAG:
            if packed:
                if tag < TAG_LIMIT:
                    exact_key = ((dest_key * self.num_ranks + source) << TAG_BITS) | tag
                else:
                    exact_key = self._pack_key(dest_key, source, tag)  # raises
            else:
                exact_key = (context_id, dst_world, source, tag)
            queue = self._sends_exact.get(exact_key)
            if queue:
                self.match_probes += 1
                pending = queue.popleft()
                if not queue:
                    self._discard_send_key(dest_key, exact_key)
                self._start_transfer(pending, request)
                return request
            recv_queue = self._recvs_exact.get(exact_key)
            if recv_queue is None:
                recv_queue = self._recvs_exact[exact_key] = deque()
            recv_queue.append((request, next(self._send_seq)))
            return request

        # Wildcard receive: earliest matching send across this
        # destination's exact-key queues (each front is that key's oldest).
        self.wildcard_recvs += 1
        keys = self._send_keys.get(dest_key)
        best = None
        best_key = None
        if keys:
            for key in keys:
                self.match_probes += 1
                if packed:
                    cand_src = (key >> TAG_BITS) % self.num_ranks
                    cand_tag = key & (TAG_LIMIT - 1)
                else:
                    cand_src, cand_tag = key[2], key[3]
                if request.matches(cand_src, cand_tag):
                    front = self._sends_exact[key][0]
                    if best is None or front.seq < best.seq:
                        best, best_key = front, key
        if best is not None:
            queue = self._sends_exact[best_key]
            queue.popleft()
            if not queue:
                self._discard_send_key(dest_key, best_key)
            self.wildcard_hits += 1
            self._start_transfer(best, request)
            return request
        self._recvs_wild.setdefault(dest_key, deque()).append(
            (request, next(self._send_seq))
        )
        return request

    def _pack_key(self, dest_key: int, src_world: int, tag: int) -> int:
        """One-integer (context, dst, src, tag) key for the lowered matcher."""
        if tag >= TAG_LIMIT:
            raise MPIError(
                f"tag {tag} exceeds the lowered matcher's packed-key bound "
                f"({TAG_LIMIT - 1}); use the 'python' simulator backend for "
                "arbitrarily large tags"
            )
        return ((dest_key * self.num_ranks + src_world) << TAG_BITS) | tag

    def _discard_send_key(self, dest_key, exact_key) -> None:
        keys = self._send_keys.get(dest_key)
        if keys is not None:
            keys.discard(exact_key)
            if not keys:
                del self._send_keys[dest_key]

    def _start_transfer(self, pending: _PendingSend, recv_req: RecvRequest) -> None:
        record = pending.record
        placement = self.placement
        network = self.network
        if network._matched_fast and record is None and network.obs is None:
            # Lowered backends deliver straight from the slot record — no
            # completion Event or callback closure per message (the record's
            # final push consumes the same sequence number ``done.succeed()``
            # would, so the schedule is bit-identical).
            network.transfer_matched(
                placement[pending.src_world],
                placement[pending.dst_world],
                pending,
                recv_req,
            )
            return
        if record is not None:
            record.t_recv_post = recv_req.posted_at
            record.t_match = self.sim.now
        done = network.transfer(
            placement[pending.src_world],
            placement[pending.dst_world],
            pending.message.nbytes,
        )

        def _deliver(_event, pending=pending, recv_req=recv_req):
            message = pending.message
            message.delivered_at = self.sim.now
            if pending.record is not None:
                pending.record.t_complete = self.sim.now
            if recv_req.comm is not None:
                # Translate world source rank to the receiver's local rank.
                message.source = recv_req.comm._local_of_world.get(
                    message.source, message.source
                )
            if not pending.request.triggered:  # eager sends completed early
                pending.request.succeed(None)
            recv_req.succeed(message)

        done.callbacks.append(_deliver)

    def _deliver_matched(self, pending: _PendingSend, recv_req: RecvRequest) -> None:
        """Complete a matched transfer (the fast path's ``_deliver`` body).

        The two request completions are inlined ``Event.succeed`` calls
        (same state writes, same one-sequence-number ``_schedule`` at the
        NORMAL priority), saving two call chains on every message.
        """
        sim = self.sim
        now = sim._now
        message = pending.message
        message.delivered_at = now
        comm = recv_req.comm
        if comm is not None:
            # Translate world source rank to the receiver's local rank.
            message.source = comm._local_of_world.get(message.source, message.source)
        request = pending.request
        queue = sim._queue
        if request._state == PENDING:  # eager sends completed early
            request._ok = True
            request._state = TRIGGERED
            sim._seq += 1
            heappush(queue, (now, 1, sim._seq, request))
        recv_req._ok = True
        recv_req._value = message
        recv_req._state = TRIGGERED
        sim._seq += 1
        heappush(queue, (now, 1, sim._seq, recv_req))

    # -- diagnostics ----------------------------------------------------------------
    def outstanding_operations(self) -> int:
        """Unmatched sends + receives across all contexts (0 at a clean end)."""
        return (
            sum(len(q) for q in self._sends_exact.values())
            + sum(len(q) for q in self._recvs_exact.values())
            + sum(len(q) for q in self._recvs_wild.values())
        )


class Communicator:
    """A rank subset with its own isolated matching context.

    All rank arguments to communicator methods are *local* ranks within the
    communicator, as in MPI.
    """

    def __init__(self, world: World, world_ranks: Sequence[int]):
        if len(set(world_ranks)) != len(world_ranks):
            raise MPIError("communicator rank list contains duplicates")
        for r in world_ranks:
            if not (0 <= r < world.num_ranks):
                raise MPIError(f"world rank {r} out of range")
        self.world = world
        self.world_ranks = list(world_ranks)
        self._local_of_world = {w: l for l, w in enumerate(self.world_ranks)}
        self.context_id = next(world._context_counter)

    # -- shape ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def local_rank_of(self, world_rank: int) -> int:
        """Local rank of a world rank (raises if not a member)."""
        try:
            return self._local_of_world[world_rank]
        except KeyError:
            raise MPIError(
                f"world rank {world_rank} not in communicator {self.context_id}"
            ) from None

    def world_rank_of(self, local_rank: int) -> int:
        """World rank of a local rank."""
        if not (0 <= local_rank < self.size):
            raise MPIError(f"local rank {local_rank} out of range (size={self.size})")
        return self.world_ranks[local_rank]

    def create_comm(self, local_ranks: Sequence[int]) -> "Communicator":
        """Sub-communicator from local ranks of this one (``MPI_Comm_create``)."""
        return Communicator(self.world, [self.world_rank_of(r) for r in local_ranks])

    # -- point to point -------------------------------------------------------------
    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
        src: Optional[int] = None,
    ) -> SendRequest:
        """Post a non-blocking send from ``src`` (local) to ``dest`` (local).

        ``src`` identifies the sending rank; rank programs normally call the
        bound helpers on :class:`~repro.mpi.context.RankContext` which fill
        it in automatically.
        """
        if src is None:
            raise MPIError("isend needs the sending rank (use RankContext.isend)")
        if tag < 0:
            raise MPIError(f"tags must be non-negative, got {tag}")
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        if payload is not None and isinstance(payload, np.ndarray):
            # MPI owns the buffer for the duration of the send; emulate by
            # copying so that sender-side mutation cannot race the transfer.
            # Modeled mode passes payload=None with an explicit nbytes and
            # must never pay for a copy (or the per-call numpy import this
            # method used to do).
            payload = payload.copy()
        # Rank translation inlined (two method calls per send add up at
        # ~10^5 sends per run).
        ranks = self.world_ranks
        size = len(ranks)
        if not (0 <= src < size):
            raise MPIError(f"local rank {src} out of range (size={size})")
        if not (0 <= dest < size):
            raise MPIError(f"local rank {dest} out of range (size={size})")
        return self.world._post_send(
            self.context_id, ranks[src], ranks[dest], tag, payload, int(nbytes)
        )

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, dst: Optional[int] = None
    ) -> RecvRequest:
        """Post a non-blocking receive at ``dst`` (local rank)."""
        if dst is None:
            raise MPIError("irecv needs the receiving rank (use RankContext.irecv)")
        ranks = self.world_ranks
        size = len(ranks)
        if source == ANY_SOURCE:
            src_world = ANY_SOURCE
        elif 0 <= source < size:
            src_world = ranks[source]
        else:
            raise MPIError(f"local rank {source} out of range (size={size})")
        if not (0 <= dst < size):
            raise MPIError(f"local rank {dst} out of range (size={size})")
        request = self.world._post_recv(self.context_id, ranks[dst], src_world, tag)
        request.comm = self
        return request
