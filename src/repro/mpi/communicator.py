"""World and Communicator: rank management and point-to-point matching.

Matching semantics follow MPI:

* a receive matches the *earliest* posted, not-yet-matched send whose
  (source, tag) satisfies its pattern (wildcards allowed);
* messages between a fixed (source, dest, tag) triple are non-overtaking;
* each communicator is an isolated matching context (a message sent on one
  communicator can never match a receive on another).

Transfer protocol, as in real MPI implementations:

* messages up to ``eager_threshold`` bytes use the **eager** protocol: the
  send request completes as soon as the message is handed to the transport
  (buffered); small control traffic therefore never deadlocks on posting
  order;
* larger messages use **rendezvous**: the wire transfer starts when send
  and receive are both posted, and the send request completes when the
  payload arrives.  This throttles producers (double buffering bounds how
  far ahead a task can run) and makes the receiver's blocked time include
  waiting-for-the-sender — exactly the quantity the paper's "recv" columns
  report (Section 7.2: "timing results shown in the tables contain idle
  time for waiting for the corresponding task to complete").
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Generator, Optional, Sequence

from repro.des import Simulator
from repro.errors import MPIError
from repro.machine.network import Network
from repro.machine.paragon import Machine
from repro.mpi.datatypes import Message, payload_nbytes, ANY_SOURCE, ANY_TAG
from repro.mpi.request import SendRequest, RecvRequest


class _PendingSend:
    """A posted send waiting for its matching receive."""

    __slots__ = ("request", "message", "src_world", "dst_world", "seq")

    def __init__(self, request, message, src_world, dst_world, seq):
        self.request = request
        self.message = message
        self.src_world = src_world
        self.dst_world = dst_world
        self.seq = seq


class World:
    """All ranks of one simulation run, placed onto machine nodes.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    machine:
        Machine description; its network is instantiated here.
    num_ranks:
        Number of world ranks.
    placement:
        Optional mapping rank -> mesh node id (default: identity).  The
        pipeline places each task's ranks on a contiguous block of nodes,
        mirroring the paper's task-to-partition mapping.
    contention:
        Passed to :meth:`Machine.build_network`.
    eager_threshold:
        Messages of at most this many bytes complete their send request at
        posting time (buffered eager protocol).
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        num_ranks: int,
        placement: Optional[Sequence[int]] = None,
        contention="endpoint",
        eager_threshold: int = 16 * 1024,
    ):
        if num_ranks < 1:
            raise MPIError(f"world needs at least 1 rank, got {num_ranks}")
        machine.check_node_budget(num_ranks if placement is None else max(placement) + 1)
        self.sim = sim
        self.machine = machine
        self.network: Network = machine.build_network(sim, contention=contention)
        self.num_ranks = num_ranks
        if placement is None:
            placement = list(range(num_ranks))
        if len(placement) != num_ranks:
            raise MPIError(
                f"placement has {len(placement)} entries for {num_ranks} ranks"
            )
        self.placement = list(placement)
        self.eager_threshold = int(eager_threshold)
        self._context_counter = itertools.count()
        self._send_seq = itertools.count()
        # Matching state, keyed by (context_id, dest_world_rank).
        self._pending_sends: dict[tuple[int, int], deque[_PendingSend]] = {}
        self._pending_recvs: dict[tuple[int, int], deque[tuple[RecvRequest, int]]] = {}
        #: World communicator spanning every rank.
        self.comm = Communicator(self, list(range(num_ranks)))

    # -- rank spawning -----------------------------------------------------------
    def spawn(
        self,
        rank: int,
        program: Callable[["RankContext"], Generator],
        name="",
        comm: Optional["Communicator"] = None,
    ):
        """Run ``program(ctx)`` as the process for world rank ``rank``.

        ``comm`` binds the context to a sub-communicator (``ctx.rank``
        becomes the local rank there); default is the world communicator.
        """
        from repro.mpi.context import RankContext

        ctx = RankContext(self, comm or self.comm, rank)
        return self.sim.process(program(ctx), name=name or f"rank{rank}")

    def spawn_all(self, program: Callable[["RankContext"], Generator]):
        """Spawn ``program`` on every world rank; returns the processes."""
        return [self.spawn(r, program) for r in range(self.num_ranks)]

    def node_of(self, world_rank: int) -> int:
        """Mesh node hosting ``world_rank``."""
        return self.placement[world_rank]

    # -- matching core -------------------------------------------------------------
    def _post_send(
        self,
        context_id: int,
        src_world: int,
        dst_world: int,
        tag: int,
        payload: Any,
        nbytes: int,
    ) -> SendRequest:
        request = SendRequest(self.sim, dest=dst_world, tag=tag, nbytes=nbytes)
        message = Message(
            source=src_world, tag=tag, payload=payload, nbytes=nbytes, sent_at=self.sim.now
        )
        pending = _PendingSend(request, message, src_world, dst_world, next(self._send_seq))
        key = (context_id, dst_world)
        recvs = self._pending_recvs.get(key)
        if recvs:
            for idx, (recv_req, _seq) in enumerate(recvs):
                if recv_req.matches(src_world, tag):
                    del recvs[idx]
                    self._start_transfer(pending, recv_req)
                    return request
        self._pending_sends.setdefault(key, deque()).append(pending)
        if nbytes <= self.eager_threshold:
            # Eager protocol: the message is buffered by the transport; the
            # sender's buffer is immediately reusable.
            request.succeed(None)
        return request

    def _post_recv(
        self, context_id: int, dst_world: int, source: int, tag: int
    ) -> RecvRequest:
        request = RecvRequest(self.sim, source=source, tag=tag)
        key = (context_id, dst_world)
        sends = self._pending_sends.get(key)
        if sends:
            for idx, pending in enumerate(sends):
                if request.matches(pending.src_world, pending.message.tag):
                    del sends[idx]
                    self._start_transfer(pending, request)
                    return request
        self._pending_recvs.setdefault(key, deque()).append(
            (request, next(self._send_seq))
        )
        return request

    def _start_transfer(self, pending: _PendingSend, recv_req: RecvRequest) -> None:
        src_node = self.node_of(pending.src_world)
        dst_node = self.node_of(pending.dst_world)
        done = self.network.transfer(src_node, dst_node, pending.message.nbytes)

        def _deliver(_event, pending=pending, recv_req=recv_req):
            message = pending.message
            message.delivered_at = self.sim.now
            if recv_req.comm is not None:
                # Translate world source rank to the receiver's local rank.
                message.source = recv_req.comm._local_of_world.get(
                    message.source, message.source
                )
            if not pending.request.triggered:  # eager sends completed early
                pending.request.succeed(None)
            recv_req.succeed(message)

        done.callbacks.append(_deliver)

    # -- diagnostics ----------------------------------------------------------------
    def outstanding_operations(self) -> int:
        """Unmatched sends + receives across all contexts (0 at a clean end)."""
        return sum(len(q) for q in self._pending_sends.values()) + sum(
            len(q) for q in self._pending_recvs.values()
        )


class Communicator:
    """A rank subset with its own isolated matching context.

    All rank arguments to communicator methods are *local* ranks within the
    communicator, as in MPI.
    """

    def __init__(self, world: World, world_ranks: Sequence[int]):
        if len(set(world_ranks)) != len(world_ranks):
            raise MPIError("communicator rank list contains duplicates")
        for r in world_ranks:
            if not (0 <= r < world.num_ranks):
                raise MPIError(f"world rank {r} out of range")
        self.world = world
        self.world_ranks = list(world_ranks)
        self._local_of_world = {w: l for l, w in enumerate(self.world_ranks)}
        self.context_id = next(world._context_counter)

    # -- shape ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def local_rank_of(self, world_rank: int) -> int:
        """Local rank of a world rank (raises if not a member)."""
        try:
            return self._local_of_world[world_rank]
        except KeyError:
            raise MPIError(
                f"world rank {world_rank} not in communicator {self.context_id}"
            ) from None

    def world_rank_of(self, local_rank: int) -> int:
        """World rank of a local rank."""
        if not (0 <= local_rank < self.size):
            raise MPIError(f"local rank {local_rank} out of range (size={self.size})")
        return self.world_ranks[local_rank]

    def create_comm(self, local_ranks: Sequence[int]) -> "Communicator":
        """Sub-communicator from local ranks of this one (``MPI_Comm_create``)."""
        return Communicator(self.world, [self.world_rank_of(r) for r in local_ranks])

    # -- point to point -------------------------------------------------------------
    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
        src: Optional[int] = None,
    ) -> SendRequest:
        """Post a non-blocking send from ``src`` (local) to ``dest`` (local).

        ``src`` identifies the sending rank; rank programs normally call the
        bound helpers on :class:`~repro.mpi.context.RankContext` which fill
        it in automatically.
        """
        if src is None:
            raise MPIError("isend needs the sending rank (use RankContext.isend)")
        if tag < 0:
            raise MPIError(f"tags must be non-negative, got {tag}")
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        import numpy as np

        if isinstance(payload, np.ndarray):
            # MPI owns the buffer for the duration of the send; emulate by
            # copying so that sender-side mutation cannot race the transfer.
            payload = payload.copy()
        return self.world._post_send(
            self.context_id,
            self.world_rank_of(src),
            self.world_rank_of(dest),
            tag,
            payload,
            int(nbytes),
        )

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, dst: Optional[int] = None
    ) -> RecvRequest:
        """Post a non-blocking receive at ``dst`` (local rank)."""
        if dst is None:
            raise MPIError("irecv needs the receiving rank (use RankContext.irecv)")
        src_world = (
            ANY_SOURCE if source == ANY_SOURCE else self.world_rank_of(source)
        )
        request = self.world._post_recv(
            self.context_id, self.world_rank_of(dst), src_world, tag
        )
        request.comm = self
        return request
