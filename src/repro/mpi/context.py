"""RankContext: what a rank program sees.

A rank program is a generator function ``program(ctx)``.  The context binds
the rank's identity to the communicator (so ``ctx.isend`` / ``ctx.irecv``
need no explicit src/dst), and exposes the machine model's local costs:

``ctx.compute(kernel, flops)``
    charge compute time on this rank's node;
``ctx.copy(nbytes, strided=...)``
    charge a pack/unpack (data collection / reorganization) pass;
``ctx.wtime()``
    the virtual clock — the simulated ``MPI_Wtime()`` of Figure 10.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.des.event import Event
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.request import SendRequest, RecvRequest, wait_all, wait_any


class RankContext:
    """Identity + services for one rank inside one communicator."""

    def __init__(self, world, comm, world_rank: int):
        self.world = world
        self.comm = comm
        self.world_rank = world_rank
        #: Local rank within ``comm``.
        self.rank = comm.local_rank_of(world_rank)
        #: Mesh node hosting this rank.
        self.node = world.node_of(world_rank)
        self.sim = world.sim
        self.machine = world.machine
        # Hot-path bindings: compute/copy charges happen several times per
        # rank per CPI, so resolve the cost callables once.  On a
        # heterogeneous machine this rank's compute is dilated by its
        # node's speed factor; factor-1.0 nodes keep the node model's own
        # bound method, so homogeneous runs stay bit-identical.
        compute_time = world.machine.node.compute_time
        speed = world.machine.node_speed(self.node)
        if speed != 1.0:
            def compute_time(kernel, flops, _base=compute_time, _speed=speed):
                return _base(kernel, flops) / _speed
        self._compute_time = compute_time
        self._copy_time = world.machine.packing_cost.copy_time
        self._pooled_timeout = world.sim.pooled_timeout
        self._compute_names: dict = {}

    # -- communication -----------------------------------------------------
    def isend(
        self, payload: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None
    ) -> SendRequest:
        """Non-blocking send to local rank ``dest`` of this context's comm."""
        return self.comm.isend(payload, dest=dest, tag=tag, nbytes=nbytes, src=self.rank)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Non-blocking receive at this rank."""
        return self.comm.irecv(source=source, tag=tag, dst=self.rank)

    def send(self, payload: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None):
        """Blocking send (a generator — use ``yield from ctx.send(...)``)."""
        yield self.isend(payload, dest=dest, tag=tag, nbytes=nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive returning the message (``yield from``)."""
        message = yield self.irecv(source=source, tag=tag)
        return message

    def wait_all(self, requests: Sequence) -> Event:
        """Event firing when all ``requests`` complete."""
        return wait_all(self.sim, requests)

    def wait_any(self, requests: Sequence) -> Event:
        """Event firing when any of ``requests`` completes."""
        return wait_any(self.sim, requests)

    def on(self, comm) -> "RankContext":
        """This rank's context bound to another communicator it belongs to."""
        return RankContext(self.world, comm, self.world_rank)

    # -- local machine costs -------------------------------------------------
    # These return pool-recycled timeouts (pure delays): callers must yield
    # them immediately and not hold a reference past the wait.
    def compute(self, kernel: str, flops: float) -> Event:
        """Timeout covering ``flops`` of ``kernel`` on this node."""
        name = self._compute_names.get(kernel)
        if name is None:
            name = self._compute_names[kernel] = f"compute:{kernel}"
        return self._pooled_timeout(self._compute_time(kernel, flops), name=name)

    def elapse(self, seconds: float) -> Event:
        """Timeout for a directly-specified duration."""
        return self._pooled_timeout(seconds, name="elapse")

    def copy(self, nbytes: int, strided: bool = False) -> Event:
        """Timeout covering one pack/unpack pass over ``nbytes``."""
        return self._pooled_timeout(
            self._copy_time(nbytes, strided=strided), name="copy"
        )

    # -- timing -----------------------------------------------------------------
    def wtime(self) -> float:
        """Virtual wall clock (the simulated ``MPI_Wtime``)."""
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext rank={self.rank} world={self.world_rank} node={self.node}>"
