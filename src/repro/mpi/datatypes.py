"""Message envelope and matching wildcards."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Wildcard source for :meth:`Communicator.irecv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Communicator.irecv`.
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Best-effort size in bytes of a payload (used when nbytes not given)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    # Scalars and small control objects: one cache line.
    return 64


@dataclass(slots=True)
class Message:
    """A delivered message, as returned by a receive.

    Attributes
    ----------
    source / tag:
        Matching metadata (source is a rank *within the receiving
        communicator*).
    payload:
        The object sent.  Array payloads are defensively copied at send time
        so that sender-side reuse of the buffer cannot corrupt the message
        (the simulated analogue of MPI's buffer-ownership rules).
    nbytes:
        Modeled wire size (drives transfer time).
    sent_at / delivered_at:
        Virtual timestamps: when the send was posted and when the payload
        arrived at the receiver.
    """

    source: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: float = field(default=float("nan"))

    @property
    def transit_time(self) -> float:
        """Delivery minus posting time (includes matching/queueing waits)."""
        return self.delivered_at - self.sent_at
