"""SimMPI — a simulated message-passing interface.

The paper's implementation is ANSI C + MPI on the Paragon.  This package
re-creates the MPI programming model *inside* the discrete-event simulation:
ranks are generator processes, sends/receives are events, and all timing
(startup, bandwidth, endpoint contention, waiting-for-sender idle time) comes
from the :mod:`repro.machine` model.

The subset implemented is the subset the paper's code needs, with matching
MPI semantics:

* non-blocking point-to-point with tag matching, ``ANY_SOURCE``/``ANY_TAG``
  wildcards and FIFO (non-overtaking) order per (source, tag);
* request objects with ``wait`` (yield the request) and ``wait_all``;
* communicators over arbitrary rank subsets (``World.create_comm``), with
  isolated matching contexts;
* collectives: barrier, bcast, gather(v), scatter(v), alltoall(v),
  reduce/allreduce — implemented over point-to-point with binomial trees,
  exactly as a portable MPI layer would;
* a virtual high-resolution timer (``Wtime``) — the paper's ``MPI_Wtime``.

Example
-------
::

    sim = Simulator()
    machine = afrl_paragon()
    world = World(sim, machine, num_ranks=4)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.comm.isend(payload, nbytes=1024, dest=1, tag=7)
        elif ctx.rank == 1:
            msg = yield ctx.comm.irecv(source=0, tag=7)
            ...

    world.spawn_all(program)
    sim.run()
"""

from repro.mpi.datatypes import Message, ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request, SendRequest, RecvRequest, wait_all, wait_any
from repro.mpi.communicator import World, Communicator
from repro.mpi.context import RankContext
from repro.mpi import collectives

__all__ = [
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "SendRequest",
    "RecvRequest",
    "wait_all",
    "wait_any",
    "World",
    "Communicator",
    "RankContext",
    "collectives",
]
