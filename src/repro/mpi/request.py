"""Requests: the events returned by non-blocking operations.

A request *is* a DES event, so blocking on it is just ``yield request``.
``wait_all`` / ``wait_any`` mirror ``MPI_Waitall`` / ``MPI_Waitany``.
"""

from __future__ import annotations

from typing import Sequence

from repro.des.event import Event, AllOf, AnyOf, PENDING
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG


class Request(Event):
    """Base class for send/receive requests.

    The constructors below set every field directly instead of chaining
    through ``Request.__init__`` / ``Event.__init__``: requests are created
    ~10^5 times per run and the two extra frames are measurable.
    """

    __slots__ = ("posted_at",)

    def __init__(self, sim, name: str = ""):
        super().__init__(sim, name=name)
        #: Virtual time at which the operation was posted.
        self.posted_at = sim._now

    @property
    def complete(self) -> bool:
        """Non-blocking completion test (``MPI_Test``)."""
        return self.triggered


class SendRequest(Request):
    """Completes when the payload has left the sender (buffer reusable)."""

    __slots__ = ("dest", "tag", "nbytes")

    def __init__(self, sim, dest: int, tag: int, nbytes: int):
        # Constant label: the name is diagnostic only (dest/tag stay
        # inspectable as attributes).  Field writes mirror Event.__init__.
        self.sim = sim
        self.name = "isend"
        self.callbacks = []
        self._state = PENDING
        self._ok = None
        self._value = None
        self.defused = False
        self.posted_at = sim._now
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes


class RecvRequest(Request):
    """Completes with the delivered :class:`~repro.mpi.datatypes.Message`."""

    __slots__ = ("source", "tag", "comm")

    def __init__(self, sim, source: int, tag: int):
        self.sim = sim
        self.name = "irecv"
        self.callbacks = []
        self._state = PENDING
        self._ok = None
        self._value = None
        self.defused = False
        self.posted_at = sim._now
        self.source = source
        self.tag = tag
        #: Communicator the receive was posted on; used at delivery time to
        #: translate the message's world source rank into a local rank.
        self.comm = None

    def matches(self, src: int, tag: int) -> bool:
        """True if an incoming (src, tag) satisfies this request's pattern."""
        return (self.source in (ANY_SOURCE, src)) and (self.tag in (ANY_TAG, tag))


def wait_all(sim, requests: Sequence[Request]) -> AllOf:
    """Event firing when every request has completed (``MPI_Waitall``)."""
    return AllOf(sim, list(requests))


def wait_any(sim, requests: Sequence[Request]) -> AnyOf:
    """Event firing when any request has completed (``MPI_Waitany``)."""
    return AnyOf(sim, list(requests))
