"""Collective operations built from point-to-point messages.

These are generator functions used with ``yield from`` inside rank
programs::

    value = yield from collectives.bcast(ctx, value, root=0)

All collectives use binomial trees (bcast/reduce) or direct exchange
(alltoall), the standard portable-MPI constructions; their cost therefore
emerges from the machine model rather than being asserted analytically.

Tags: collectives reserve the tag space above :data:`COLLECTIVE_TAG_BASE`;
point-to-point user traffic should stay below it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import MPIError
from repro.mpi.context import RankContext

#: First tag reserved for collective traffic.
COLLECTIVE_TAG_BASE = 1 << 20

_TAG_BARRIER_UP = COLLECTIVE_TAG_BASE + 1
_TAG_BARRIER_DOWN = COLLECTIVE_TAG_BASE + 2
_TAG_BCAST = COLLECTIVE_TAG_BASE + 3
_TAG_GATHER = COLLECTIVE_TAG_BASE + 4
_TAG_SCATTER = COLLECTIVE_TAG_BASE + 5
_TAG_REDUCE = COLLECTIVE_TAG_BASE + 6
_TAG_ALLTOALL = COLLECTIVE_TAG_BASE + 7


def _check_root(ctx: RankContext, root: int) -> None:
    if not (0 <= root < ctx.comm.size):
        raise MPIError(f"root {root} out of range for communicator size {ctx.comm.size}")


def _relative(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _absolute(rel: int, root: int, size: int) -> int:
    return (rel + root) % size


def barrier(ctx: RankContext):
    """Synchronize all ranks (gather-up + broadcast-down on a binomial tree)."""
    yield from reduce(ctx, 0, op=lambda a, b: 0, root=0, tag=_TAG_BARRIER_UP)
    yield from bcast(ctx, None, root=0, tag=_TAG_BARRIER_DOWN)


def bcast(
    ctx: RankContext,
    value: Any,
    root: int = 0,
    nbytes: Optional[int] = None,
    tag: int = _TAG_BCAST,
):
    """Broadcast ``value`` from ``root``; returns the value on every rank."""
    _check_root(ctx, root)
    size = ctx.comm.size
    if size == 1:
        return value
    rel = _relative(ctx.rank, root, size)
    # Receive from parent (highest set bit), then forward to children.
    if rel != 0:
        mask = 1
        while mask <= rel:
            mask <<= 1
        mask >>= 1
        parent = _absolute(rel & ~mask, root, size)
        message = yield ctx.irecv(source=parent, tag=tag)
        value = message.payload
        nbytes = message.nbytes
    # Standard binomial forwarding: children are rel + 2^k for 2^k > rel.
    sends = []
    mask = 1
    while mask < size:
        if rel < mask and rel + mask < size:
            child = _absolute(rel + mask, root, size)
            sends.append(ctx.isend(value, dest=child, tag=tag, nbytes=nbytes))
        mask <<= 1
    if sends:
        yield ctx.wait_all(sends)
    return value


def gather(
    ctx: RankContext,
    value: Any,
    root: int = 0,
    nbytes: Optional[int] = None,
    tag: int = _TAG_GATHER,
):
    """Gather one value per rank to ``root`` (list in rank order) else None."""
    _check_root(ctx, root)
    size = ctx.comm.size
    if ctx.rank == root:
        values: list[Any] = [None] * size
        values[root] = value
        for _ in range(size - 1):
            message = yield ctx.irecv(tag=tag)
            values[message.source] = message.payload
        return values
    yield ctx.isend(value, dest=root, tag=tag, nbytes=nbytes)
    return None


def scatter(
    ctx: RankContext,
    values: Optional[Sequence[Any]],
    root: int = 0,
    nbytes_each: Optional[int] = None,
    tag: int = _TAG_SCATTER,
):
    """Scatter ``values[i]`` to rank ``i`` from ``root``; returns own item."""
    _check_root(ctx, root)
    size = ctx.comm.size
    if ctx.rank == root:
        if values is None or len(values) != size:
            raise MPIError(f"scatter root needs exactly {size} values")
        sends = [
            ctx.isend(values[dest], dest=dest, tag=tag, nbytes=nbytes_each)
            for dest in range(size)
            if dest != root
        ]
        if sends:
            yield ctx.wait_all(sends)
        return values[root]
    message = yield ctx.irecv(source=root, tag=tag)
    return message.payload


def reduce(
    ctx: RankContext,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
    nbytes: Optional[int] = None,
    tag: int = _TAG_REDUCE,
):
    """Reduce values to ``root`` with binary ``op`` on a binomial tree.

    ``op`` must be associative; like MPI, commutativity is assumed.
    Returns the reduction at root, None elsewhere.
    """
    _check_root(ctx, root)
    size = ctx.comm.size
    rel = _relative(ctx.rank, root, size)
    accum = value
    mask = 1
    while mask < size:
        if rel & mask:
            parent = _absolute(rel & ~mask, root, size)
            yield ctx.isend(accum, dest=parent, tag=tag, nbytes=nbytes)
            return None
        partner = rel | mask
        if partner < size:
            message = yield ctx.irecv(source=_absolute(partner, root, size), tag=tag)
            accum = op(accum, message.payload)
        mask <<= 1
    return accum


def allreduce(
    ctx: RankContext,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: Optional[int] = None,
):
    """Reduce then broadcast; returns the reduction on every rank."""
    result = yield from reduce(ctx, value, op=op, root=0, nbytes=nbytes)
    result = yield from bcast(ctx, result, root=0, nbytes=nbytes)
    return result


def alltoall(
    ctx: RankContext,
    values: Sequence[Any],
    nbytes_each: Optional[int] = None,
    tag: int = _TAG_ALLTOALL,
):
    """Personalized all-to-all: rank i's ``values[j]`` goes to rank j.

    Returns the list indexed by source rank.  This is the communication
    pattern of the paper's inter-task redistribution (Section 5.2: "an
    all-to-all personalized communication scheme is required").
    """
    size = ctx.comm.size
    if len(values) != size:
        raise MPIError(f"alltoall needs exactly {size} values, got {len(values)}")
    recvs = [ctx.irecv(source=src, tag=tag) for src in range(size) if src != ctx.rank]
    sends = [
        ctx.isend(values[dest], dest=dest, tag=tag, nbytes=nbytes_each)
        for dest in range(size)
        if dest != ctx.rank
    ]
    result: list[Any] = [None] * size
    result[ctx.rank] = values[ctx.rank]
    for request in recvs:
        message = yield request
        result[message.source] = message.payload
    if sends:
        yield ctx.wait_all(sends)
    return result


def alltoallv(
    ctx: RankContext,
    sends: dict[int, tuple[Any, int]],
    sources: Sequence[int],
    tag: int = _TAG_ALLTOALL,
):
    """Sparse personalized exchange.

    ``sends`` maps destination local rank -> (payload, nbytes); ``sources``
    lists the local ranks a message is expected *from*.  Returns a dict
    source rank -> payload.  Unlike dense alltoall, only the listed pairs
    communicate — matching how the pipeline's redistribution plans drive
    communication.
    """
    recv_reqs = {src: ctx.irecv(source=src, tag=tag) for src in sources}
    send_reqs = [
        ctx.isend(payload, dest=dest, tag=tag, nbytes=nbytes)
        for dest, (payload, nbytes) in sorted(sends.items())
    ]
    received: dict[int, Any] = {}
    for src, request in recv_reqs.items():
        message = yield request
        received[src] = message.payload
    if send_reqs:
        yield ctx.wait_all(send_reqs)
    return received
