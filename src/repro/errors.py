"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc. are still raised for misuse of the API itself).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SimulationError(ReproError):
    """Raised for failures inside the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still waiting.

    This is the classic symptom of a communication deadlock: for example a
    rank blocked in ``recv`` for a message that no rank will ever send.
    """

    def __init__(self, message: str, waiting: list[str] | None = None):
        super().__init__(message)
        #: Human-readable descriptions of the processes that were still
        #: blocked when the simulation ran out of events.
        self.waiting = list(waiting or [])


class InterruptError(SimulationError):
    """Raised inside a process that was interrupted by another process."""

    def __init__(self, cause=None):
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause


class MPIError(ReproError):
    """Raised for violations of the simulated-MPI API contract."""


class TruncationError(MPIError):
    """Raised when a received message is larger than the posted buffer."""


class MachineError(ReproError):
    """Raised for invalid machine-model configurations (topology, rates)."""


class ConfigurationError(ReproError):
    """Raised for invalid STAP / pipeline parameterizations."""


class ExecutionError(ReproError):
    """Raised when a batch experiment point fails inside the executor.

    The executor captures per-point failures so one bad point does not kill
    a whole sweep; this error is raised when a caller asks for a failed
    point's result, and carries the worker-side traceback text.
    """


class AssignmentError(ConfigurationError):
    """Raised when a processor assignment is infeasible for the machine."""


class PipelineError(ReproError):
    """Raised when the process-parallel runtime (:mod:`repro.rt`) fails.

    Carries the pipeline stage and replica index of the failing worker when
    the failure is attributable to one (a crash, an unhandled exception, or
    a protocol violation); both are ``None`` for orchestration-level
    failures such as an unusable start method.
    """

    def __init__(self, message: str, stage: str | None = None,
                 replica: int | None = None):
        super().__init__(message)
        self.stage = stage
        self.replica = replica
