"""Persisting and replaying CPI streams.

The RTMCARM program recorded live radar tapes and replayed them through the
processing chain; this module provides the equivalent: save a run of CPI
cubes (with their ground truth) to a compressed ``.npz`` archive and replay
it later as a :class:`FileCPIStream` — so experiments can be repeated on
identical data across processes and machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.radar.datacube import CPIDataCube
from repro.radar.parameters import STAPParams
from repro.radar.scenario import TargetTruth

_FORMAT_VERSION = 1


def save_cubes(path, cubes: Sequence[CPIDataCube]) -> None:
    """Write CPI cubes (and their metadata) to one ``.npz`` archive."""
    if not cubes:
        raise ConfigurationError("cannot save an empty cube list")
    params = cubes[0].params
    for cube in cubes:
        if cube.params != params:
            raise ConfigurationError("all cubes must share one STAPParams")
    arrays = {f"cube_{i}": cube.data for i, cube in enumerate(cubes)}
    meta = {
        "version": _FORMAT_VERSION,
        "params": {
            field: getattr(params, field)
            for field in (
                "num_ranges", "num_channels", "num_pulses", "num_beams",
                "num_hard_doppler", "stagger", "window",
                "beam_constraint_weight", "freq_constraint_weight",
                "forgetting_factor", "easy_train_per_cpi",
                "hard_train_samples", "cfar_window", "cfar_guard",
                "cfar_pfa", "waveform_length", "range_correction", "dtype",
            )
        },
        "segment_boundaries": list(params.range_segment_boundaries),
        "cubes": [
            {
                "cpi_index": cube.cpi_index,
                "azimuth": cube.azimuth,
                "truth": [
                    [t.range_cell, t.normalized_doppler, t.angle_deg, t.snr_db]
                    for t in cube.truth
                ],
            }
            for cube in cubes
        ],
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_cubes(path) -> list[CPIDataCube]:
    """Load CPI cubes saved by :func:`save_cubes`."""
    with np.load(Path(path)) as archive:
        if "meta_json" not in archive:
            raise ConfigurationError(f"{path} is not a repro cube archive")
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported archive version {meta.get('version')}"
            )
        params = STAPParams(
            range_segment_boundaries=tuple(meta["segment_boundaries"]),
            **meta["params"],
        )
        cubes = []
        for i, record in enumerate(meta["cubes"]):
            truth = tuple(
                TargetTruth(
                    range_cell=int(r), normalized_doppler=float(f),
                    angle_deg=float(a), snr_db=float(s),
                )
                for r, f, a, s in record["truth"]
            )
            cubes.append(
                CPIDataCube(
                    data=archive[f"cube_{i}"],
                    cpi_index=int(record["cpi_index"]),
                    azimuth=int(record["azimuth"]),
                    params=params,
                    truth=truth,
                )
            )
    return cubes


class FileCPIStream:
    """Replay a saved cube archive with the :class:`CPIStream` interface."""

    def __init__(self, path, azimuth_cycle: int = 1):
        self._cubes = load_cubes(path)
        if not self._cubes:
            raise ConfigurationError(f"no cubes in {path}")
        self.params = self._cubes[0].params
        self.azimuth_cycle = azimuth_cycle
        by_index = {cube.cpi_index: cube for cube in self._cubes}
        if len(by_index) != len(self._cubes):
            raise ConfigurationError("duplicate CPI indices in archive")
        self._by_index = by_index

    def __len__(self) -> int:
        return len(self._cubes)

    def cube(self, cpi_index: int) -> CPIDataCube:
        try:
            return self._by_index[cpi_index]
        except KeyError:
            raise ConfigurationError(
                f"CPI {cpi_index} not in archive (has {sorted(self._by_index)})"
            ) from None

    def take(self, count: int, start: int = 0) -> list[CPIDataCube]:
        return [self.cube(i) for i in range(start, start + count)]
