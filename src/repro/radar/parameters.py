"""STAP algorithm parameters (the shape of the computation).

The defaults are exactly the paper's experimental parameters (Section 7):
K=512 range cells, J=16 channels, N=128 pulses, M=6 receive beams,
N_easy=72 / N_hard=56 Doppler bins, PRI stagger of 3 pulses, Hanning
window, 6 hard range segments with boundaries [0,75,150,225,300,375,512],
beam/frequency constraint weights 0.5 and forgetting factor 0.6 (Appendix B).

Everything is parameterized so tests can run the identical code at toy sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class STAPParams:
    """Dimensions and tuning constants of the PRI-staggered STAP algorithm."""

    num_ranges: int = 512
    num_channels: int = 16
    num_pulses: int = 128
    num_beams: int = 6
    num_hard_doppler: int = 56
    stagger: int = 3
    window: str = "hanning"
    beam_constraint_weight: float = 0.5
    freq_constraint_weight: float = 0.5
    forgetting_factor: float = 0.6
    range_segment_boundaries: tuple[int, ...] = (0, 75, 150, 225, 300, 375, 512)
    #: Range samples drawn from EACH of the three preceding CPIs for easy-bin
    #: training (96 total with the default; DESIGN.md derives 96 from the
    #: paper's Table 1 flop count).
    easy_train_per_cpi: int = 32
    #: Range samples appended per recursive hard-bin QR update (per segment).
    hard_train_samples: int = 32
    #: CFAR reference window half-width (cells per side).
    cfar_window: int = 16
    #: CFAR guard cells per side of the cell under test.
    cfar_guard: int = 2
    #: CFAR design false-alarm probability.
    cfar_pfa: float = 1e-6
    #: Length of the transmit pulse (range cells) for pulse compression.
    waveform_length: int = 32
    #: Apply R^2 range (sensitivity-time) correction during Doppler filter
    #: processing — "performing range correction for each range cell"
    #: (Section 5.1).  Off by default: the synthetic cubes are generated
    #: without the R^4 propagation loss the correction undoes.
    range_correction: bool = False
    #: Complex dtype of the data cubes ("complex64" matches the 16-bit
    #: baseband samples of the real system after conversion).
    dtype: str = "complex64"

    # -- validation -------------------------------------------------------------
    def __post_init__(self):
        if self.num_ranges < 4:
            raise ConfigurationError(f"num_ranges must be >= 4, got {self.num_ranges}")
        if self.num_channels < 2:
            raise ConfigurationError(
                f"num_channels must be >= 2, got {self.num_channels}"
            )
        if self.num_pulses < 4:
            raise ConfigurationError(f"num_pulses must be >= 4, got {self.num_pulses}")
        if self.num_beams < 1:
            raise ConfigurationError(f"num_beams must be >= 1, got {self.num_beams}")
        if not (0 < self.num_hard_doppler < self.num_pulses):
            raise ConfigurationError(
                "num_hard_doppler must be in (0, num_pulses), got "
                f"{self.num_hard_doppler}"
            )
        if self.num_hard_doppler % 2 != 0:
            raise ConfigurationError(
                "num_hard_doppler must be even (split across both spectrum "
                f"edges), got {self.num_hard_doppler}"
            )
        if not (0 < self.stagger < self.num_pulses):
            raise ConfigurationError(
                f"stagger must be in (0, num_pulses), got {self.stagger}"
            )
        bounds = self.range_segment_boundaries
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != self.num_ranges:
            raise ConfigurationError(
                "range_segment_boundaries must start at 0 and end at "
                f"num_ranges={self.num_ranges}, got {bounds}"
            )
        if any(b >= e for b, e in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"range_segment_boundaries must be strictly increasing: {bounds}"
            )
        if self.easy_train_per_cpi < 1 or self.easy_train_per_cpi > self.num_ranges:
            raise ConfigurationError(
                f"easy_train_per_cpi must be in [1, num_ranges], got "
                f"{self.easy_train_per_cpi}"
            )
        if self.hard_train_samples < 1:
            raise ConfigurationError(
                f"hard_train_samples must be >= 1, got {self.hard_train_samples}"
            )
        if self.cfar_window < 1:
            raise ConfigurationError(f"cfar_window must be >= 1, got {self.cfar_window}")
        if self.cfar_guard < 0:
            raise ConfigurationError(f"cfar_guard must be >= 0, got {self.cfar_guard}")
        if not (0.0 < self.cfar_pfa < 1.0):
            raise ConfigurationError(f"cfar_pfa must be in (0,1), got {self.cfar_pfa}")
        if not (0.0 < self.forgetting_factor <= 1.0):
            raise ConfigurationError(
                f"forgetting_factor must be in (0,1], got {self.forgetting_factor}"
            )
        if not (1 <= self.waveform_length <= self.num_ranges):
            raise ConfigurationError(
                f"waveform_length must be in [1, num_ranges], got "
                f"{self.waveform_length}"
            )
        np.dtype(self.dtype)  # raises on nonsense

    # -- derived quantities -----------------------------------------------------
    @property
    def num_doppler(self) -> int:
        """Number of Doppler bins (= number of pulses; full-size FFT)."""
        return self.num_pulses

    @property
    def num_easy_doppler(self) -> int:
        """Easy (clutter-free) Doppler bins: N - N_hard (72 at paper scale)."""
        return self.num_doppler - self.num_hard_doppler

    @cached_property
    def easy_bins(self) -> np.ndarray:
        """Indices of easy Doppler bins (the middle of the spectrum).

        FFT bin 0 is zero Doppler — mainbeam clutter — so the *hard* bins
        hug both edges of the bin range (wrap-around) and the easy bins are
        the centre block, exactly as in the Appendix B MATLAB
        (``numHardDop/2+1 : num_doppler-numHardDop/2``).
        """
        half = self.num_hard_doppler // 2
        return np.arange(half, self.num_doppler - half)

    @cached_property
    def hard_bins(self) -> np.ndarray:
        """Indices of hard Doppler bins (both spectrum edges)."""
        half = self.num_hard_doppler // 2
        return np.concatenate(
            [np.arange(0, half), np.arange(self.num_doppler - half, self.num_doppler)]
        )

    @property
    def num_segments(self) -> int:
        """Number of independent hard-weight range segments (6 at paper scale)."""
        return len(self.range_segment_boundaries) - 1

    @cached_property
    def segment_slices(self) -> tuple[slice, ...]:
        """Range slices of the hard-weight segments."""
        bounds = self.range_segment_boundaries
        return tuple(slice(b, e) for b, e in zip(bounds, bounds[1:]))

    @property
    def num_staggered_channels(self) -> int:
        """Channel count of the staggered CPI (2J: two Doppler windows)."""
        return 2 * self.num_channels

    @property
    def easy_train_total(self) -> int:
        """Total easy-bin training rows (drawn from three preceding CPIs)."""
        return 3 * self.easy_train_per_cpi

    @property
    def complex_itemsize(self) -> int:
        """Bytes per complex sample."""
        return np.dtype(self.dtype).itemsize

    @property
    def real_dtype(self) -> str:
        """Real dtype matching :attr:`dtype` precision."""
        return "float32" if np.dtype(self.dtype) == np.complex64 else "float64"

    @property
    def cpi_cube_bytes(self) -> int:
        """Size of one raw CPI cube (K x J x N complex)."""
        return (
            self.num_ranges * self.num_channels * self.num_pulses * self.complex_itemsize
        )

    @property
    def staggered_cube_bytes(self) -> int:
        """Size of the Doppler-filtered staggered cube (K x 2J x N complex)."""
        return 2 * self.cpi_cube_bytes

    # -- convenience constructors --------------------------------------------------
    def with_overrides(self, **kwargs) -> "STAPParams":
        """Functional update (``dataclasses.replace``)."""
        return replace(self, **kwargs)

    @classmethod
    def paper(cls) -> "STAPParams":
        """The exact parameters of the paper's Section 7 experiments."""
        return cls()

    @classmethod
    def tiny(cls) -> "STAPParams":
        """A toy configuration for fast unit/property tests."""
        return cls(
            num_ranges=48,
            num_channels=4,
            num_pulses=16,
            num_beams=2,
            num_hard_doppler=8,
            stagger=1,
            range_segment_boundaries=(0, 24, 48),
            easy_train_per_cpi=8,
            hard_train_samples=10,
            cfar_window=4,
            cfar_guard=1,
            waveform_length=6,
        )

    @classmethod
    def small(cls) -> "STAPParams":
        """A mid-size configuration for integration tests (fraction of a second)."""
        return cls(
            num_ranges=128,
            num_channels=8,
            num_pulses=32,
            num_beams=3,
            num_hard_doppler=12,
            stagger=2,
            range_segment_boundaries=(0, 32, 64, 96, 128),
            easy_train_per_cpi=16,
            hard_train_samples=18,
            cfar_window=8,
            cfar_guard=2,
            waveform_length=12,
        )
