"""Scenario description: clutter, jammers, targets, platform.

A :class:`RadarScenario` holds the *physics* knobs, separate from the
algorithm shape in :class:`~repro.radar.parameters.STAPParams`.  The clutter
model is the standard airborne side-looking ridge: each clutter patch at
angle theta contributes Doppler ``beta * f_max * sin(theta)``, so clutter
energy concentrates along a line in the angle-Doppler plane; the Doppler
bins that line crosses are the paper's "hard" bins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class TargetTruth:
    """Ground truth for one injected point target.

    Attributes
    ----------
    range_cell:
        Range gate of the leading edge of the target return.
    normalized_doppler:
        Doppler in cycles/PRI (must avoid the clutter ridge to be
        detectable in an easy bin).
    angle_deg:
        Direction of arrival off boresight.
    snr_db:
        Per-element, per-pulse signal-to-noise ratio in dB.
    """

    range_cell: int
    normalized_doppler: float
    angle_deg: float
    snr_db: float


@dataclass(frozen=True)
class JammerTruth:
    """A barrage-noise jammer: spatially coherent, temporally white."""

    angle_deg: float
    jnr_db: float


@dataclass(frozen=True)
class RadarScenario:
    """Environment around one simulated flight leg.

    Attributes
    ----------
    clutter_to_noise_db:
        Per-element clutter-to-noise ratio (CNR); airborne L-band looking at
        ground is typically 30-50 dB.
    num_clutter_patches:
        Angular discretization of the clutter ring.
    clutter_velocity_ratio:
        The ridge slope beta = 2 v_p T_r / d; beta = 1 is the classic
        side-looking DPCA geometry.
    clutter_intrinsic_spread:
        Std-dev of intrinsic clutter motion in cycles/PRI (wind-blown
        foliage); widens the ridge slightly.
    element_spacing_wavelengths:
        ULA spacing (half wavelength by default).
    targets, jammers:
        Injected emitters.
    noise_power:
        Receiver noise power per sample (reference level 1.0).
    seed:
        Master RNG seed; all randomness derives deterministically from it.
    """

    clutter_to_noise_db: float = 40.0
    num_clutter_patches: int = 64
    clutter_velocity_ratio: float = 1.0
    clutter_intrinsic_spread: float = 0.003
    element_spacing_wavelengths: float = 0.5
    targets: tuple[TargetTruth, ...] = ()
    jammers: tuple[JammerTruth, ...] = ()
    noise_power: float = 1.0
    seed: int = 20260707

    def with_targets(self, targets: Sequence[TargetTruth]) -> "RadarScenario":
        """Copy of the scenario with a different target set."""
        from dataclasses import replace

        return replace(self, targets=tuple(targets))

    @classmethod
    def benign(cls, seed: int = 0) -> "RadarScenario":
        """Noise-only scenario (no clutter/jammers) for numerical tests."""
        return cls(
            clutter_to_noise_db=-300.0,
            num_clutter_patches=1,
            targets=(),
            jammers=(),
            seed=seed,
        )

    @classmethod
    def standard(cls, seed: int = 20260707) -> "RadarScenario":
        """The default evaluation scenario: strong clutter + two targets."""
        return cls(
            clutter_to_noise_db=40.0,
            targets=(
                TargetTruth(
                    range_cell=200, normalized_doppler=0.25, angle_deg=0.0, snr_db=0.0
                ),
                TargetTruth(
                    range_cell=350, normalized_doppler=-0.31, angle_deg=5.0, snr_db=3.0
                ),
            ),
            seed=seed,
        )
