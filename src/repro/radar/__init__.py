"""Synthetic airborne-radar data substrate.

The paper processed live data from the RTMCARM L-band phased array (16
channels, 128 pulses, 512 range gates).  We do not have those tapes, so this
package generates statistically-equivalent coherent processing interval
(CPI) data cubes: angle-Doppler-coupled ground clutter (the clutter ridge an
airborne radar sees), optional barrage jammers, receiver noise, and injected
point targets spread by the transmit waveform — everything the STAP chain's
code paths need (easy/hard Doppler split, mainbeam constraint, recursive
training over revisits).

Public surface: :class:`STAPParams` (algorithm shape), :class:`RadarScenario`
(physics), :class:`CPIDataCube` / :class:`CPIStream` (data), plus steering
vector and window utilities.
"""

from repro.radar.parameters import STAPParams
from repro.radar.scenario import RadarScenario, TargetTruth, JammerTruth
from repro.radar.geometry import (
    spatial_steering,
    temporal_steering,
    steering_matrix,
    beam_angles,
)
from repro.radar.windows import window_by_name, WINDOWS
from repro.radar.waveform import lfm_chirp, matched_filter_frequency_response
from repro.radar.datacube import CPIDataCube, CPIStream, generate_cpi
from repro.radar.io import FileCPIStream, load_cubes, save_cubes

__all__ = [
    "STAPParams",
    "RadarScenario",
    "TargetTruth",
    "JammerTruth",
    "spatial_steering",
    "temporal_steering",
    "steering_matrix",
    "beam_angles",
    "window_by_name",
    "WINDOWS",
    "lfm_chirp",
    "matched_filter_frequency_response",
    "CPIDataCube",
    "CPIStream",
    "generate_cpi",
    "FileCPIStream",
    "load_cubes",
    "save_cubes",
]
