"""Transmit waveform and pulse-compression replica.

Pulse compression (Section 5.4) convolves the received signal with a replica
of the transmit pulse.  We use a linear-FM (chirp) pulse — the standard
choice, with a sharp autocorrelation peak — so that injected point targets
compress to their true range gate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def lfm_chirp(length: int, bandwidth_fraction: float = 0.8, dtype=np.complex128) -> np.ndarray:
    """Unit-energy linear-FM pulse of ``length`` samples.

    ``bandwidth_fraction`` is the swept bandwidth as a fraction of the
    sampling rate (< 1 to stay oversampled, as the real system's 4:1
    oversampling does).
    """
    if length < 1:
        raise ConfigurationError(f"waveform length must be >= 1, got {length}")
    if not (0.0 < bandwidth_fraction <= 1.0):
        raise ConfigurationError(
            f"bandwidth_fraction must be in (0,1], got {bandwidth_fraction}"
        )
    t = np.arange(length, dtype=float)
    # Instantaneous frequency sweeps -B/2 .. +B/2 over the pulse.
    rate = bandwidth_fraction / max(length, 1)
    phase = np.pi * rate * (t - length / 2.0) ** 2
    pulse = np.exp(1j * phase).astype(dtype)
    return pulse / np.linalg.norm(pulse)


def matched_filter_frequency_response(
    waveform: np.ndarray, fft_length: int
) -> np.ndarray:
    """Frequency response ``conj(FFT(waveform))`` zero-padded to ``fft_length``.

    Multiplying a range-line FFT by this and inverse-transforming performs
    matched filtering (fast convolution), the paper's pulse-compression
    implementation: "first performing K-point FFTs ..., point-wise
    multiplication ... and then computing the inverse FFT."
    """
    waveform = np.asarray(waveform)
    if waveform.ndim != 1:
        raise ConfigurationError("waveform must be one-dimensional")
    if fft_length < waveform.size:
        raise ConfigurationError(
            f"fft_length {fft_length} shorter than waveform {waveform.size}"
        )
    return np.conj(np.fft.fft(waveform, n=fft_length))
