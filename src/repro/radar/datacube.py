"""CPI data-cube generation.

A coherent processing interval (CPI) cube is complex data indexed
``[range_cell, channel, pulse]`` — K x J x N, C-contiguous, so the pulse
dimension has unit stride.  That mirrors the real system, where interface
boards corner-turned the cube "so that the CPI is unit stride along pulses.
This speeds the subsequent Doppler processing" (Section 2) — and it is why
the parallel Doppler task partitions along K (Figure 5).

Signal model (per sample, before any processing)::

    x[k, j, n] = clutter + jammers + targets + noise

* clutter: sum over angular patches; patch at angle theta has Doppler
  ``0.5 * beta * sin(theta)`` cycles/PRI and an independent complex-Gaussian
  amplitude per range cell (i.i.d. across CPIs — the independence the
  paper's exponential forgetting relies on);
* targets: transmit waveform laid down over ``waveform_length`` cells
  starting at the true range gate, with spatial/temporal phase ramps;
* jammers: spatially coherent, temporally/range white;
* noise: white complex Gaussian.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.radar.geometry import spatial_steering, temporal_steering
from repro.radar.parameters import STAPParams
from repro.radar.scenario import RadarScenario, TargetTruth
from repro.radar.waveform import lfm_chirp
from repro.utils.rng import child_seed, rng_from_seed


@dataclass
class CPIDataCube:
    """One CPI: the raw cube plus identifying metadata and ground truth."""

    data: np.ndarray  # (K, J, N) complex
    cpi_index: int
    azimuth: int
    params: STAPParams
    truth: tuple[TargetTruth, ...] = ()

    def __post_init__(self):
        expected = (
            self.params.num_ranges,
            self.params.num_channels,
            self.params.num_pulses,
        )
        if self.data.shape != expected:
            raise ConfigurationError(
                f"CPI cube shape {self.data.shape} != expected {expected}"
            )

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


def _raw_spatial(params: STAPParams, scenario: RadarScenario, angle_deg: float):
    """Unnormalized (per-element magnitude 1) spatial phase ramp."""
    vec = spatial_steering(
        params.num_channels, angle_deg, scenario.element_spacing_wavelengths
    )
    return vec * np.sqrt(params.num_channels)


def _raw_temporal(params: STAPParams, normalized_doppler: float):
    """Unnormalized temporal phase ramp."""
    vec = temporal_steering(params.num_pulses, normalized_doppler)
    return vec * np.sqrt(params.num_pulses)


def generate_cpi(
    params: STAPParams,
    scenario: RadarScenario,
    cpi_index: int = 0,
    azimuth: int = 0,
) -> CPIDataCube:
    """Generate one CPI cube.

    Deterministic in ``(scenario.seed, cpi_index, azimuth)``; consecutive
    CPIs get independent clutter/noise realizations (decorrelated looks).
    """
    K, J, N = params.num_ranges, params.num_channels, params.num_pulses
    rng = rng_from_seed(child_seed(scenario.seed, "cpi", cpi_index, azimuth))
    cube = np.zeros((K, J, N), dtype=np.complex128)

    # --- receiver noise ------------------------------------------------------
    sigma_n = np.sqrt(scenario.noise_power / 2.0)
    cube += sigma_n * (rng.standard_normal((K, J, N)) + 1j * rng.standard_normal((K, J, N)))

    # --- ground clutter ridge ---------------------------------------------------
    cnr = 10.0 ** (scenario.clutter_to_noise_db / 10.0)
    if cnr > 1e-12:
        P = scenario.num_clutter_patches
        angles = np.rad2deg(
            np.arcsin(np.linspace(-0.95, 0.95, P))
        )  # uniform in sin-space, matching uniform ground patches
        dopplers = 0.5 * scenario.clutter_velocity_ratio * np.sin(np.deg2rad(angles))
        dopplers = dopplers + scenario.clutter_intrinsic_spread * rng.standard_normal(P)
        # Per-patch space-time signature, (P, J*N).
        signature = np.empty((P, J * N), dtype=np.complex128)
        for i in range(P):
            s = _raw_spatial(params, scenario, angles[i])
            t = _raw_temporal(params, dopplers[i])
            signature[i] = np.outer(s, t).ravel()
        sigma_c = np.sqrt(scenario.noise_power * cnr / (2.0 * P))
        amplitudes = sigma_c * (
            rng.standard_normal((K, P)) + 1j * rng.standard_normal((K, P))
        )
        cube += (amplitudes @ signature).reshape(K, J, N)

    # --- jammers ---------------------------------------------------------------
    for jam_idx, jammer in enumerate(scenario.jammers):
        jnr = 10.0 ** (jammer.jnr_db / 10.0)
        sigma_j = np.sqrt(scenario.noise_power * jnr / 2.0)
        s = _raw_spatial(params, scenario, jammer.angle_deg)
        jam_rng = rng_from_seed(
            child_seed(scenario.seed, "jam", jam_idx, cpi_index, azimuth)
        )
        waveform = sigma_j * (
            jam_rng.standard_normal((K, N)) + 1j * jam_rng.standard_normal((K, N))
        )
        cube += waveform[:, None, :] * s[None, :, None]

    # --- targets ------------------------------------------------------------------
    pulse = lfm_chirp(params.waveform_length)
    for tgt_idx, target in enumerate(scenario.targets):
        if not (0 <= target.range_cell < K):
            raise ConfigurationError(
                f"target range cell {target.range_cell} outside [0, {K})"
            )
        amp = np.sqrt(scenario.noise_power * 10.0 ** (target.snr_db / 10.0))
        # sqrt(L) restores per-sample amplitude after the unit-energy pulse.
        amp *= np.sqrt(params.waveform_length)
        tgt_rng = rng_from_seed(child_seed(scenario.seed, "tgt", tgt_idx, cpi_index))
        phase = np.exp(2j * np.pi * tgt_rng.uniform())
        s = _raw_spatial(params, scenario, target.angle_deg)
        t = _raw_temporal(params, target.normalized_doppler)
        extent = min(params.waveform_length, K - target.range_cell)
        contribution = (
            amp
            * phase
            * pulse[:extent, None, None]
            * s[None, :, None]
            * t[None, None, :]
        )
        cube[target.range_cell : target.range_cell + extent] += contribution

    return CPIDataCube(
        data=cube.astype(params.dtype),
        cpi_index=cpi_index,
        azimuth=azimuth,
        params=params,
        truth=tuple(scenario.targets),
    )


class CPIStream:
    """An iterator of CPIs, cycling through azimuth beam positions.

    The flight experiments revisited five transmit-beam azimuths at 1-2 Hz
    (Section 3); weight training history is keyed by azimuth, so a cycle
    length > 1 exercises the revisit bookkeeping.
    """

    def __init__(
        self,
        params: STAPParams,
        scenario: Optional[RadarScenario] = None,
        azimuth_cycle: int = 1,
    ):
        if azimuth_cycle < 1:
            raise ConfigurationError(f"azimuth_cycle must be >= 1, got {azimuth_cycle}")
        self.params = params
        self.scenario = scenario or RadarScenario.standard()
        self.azimuth_cycle = azimuth_cycle

    def azimuth_of(self, cpi_index: int) -> int:
        return cpi_index % self.azimuth_cycle

    def cube(self, cpi_index: int) -> CPIDataCube:
        """The CPI with the given index (deterministic, random access)."""
        return generate_cpi(
            self.params, self.scenario, cpi_index, azimuth=self.azimuth_of(cpi_index)
        )

    def take(self, count: int, start: int = 0) -> list[CPIDataCube]:
        """Materialize ``count`` consecutive CPIs."""
        return [self.cube(i) for i in range(start, start + count)]

    def __iter__(self) -> Iterator[CPIDataCube]:
        index = 0
        while True:
            yield self.cube(index)
            index += 1
