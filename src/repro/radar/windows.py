"""Doppler window functions.

The paper: "Selectable window functions are applied to the data prior to the
Doppler FFT's to control sidelobe levels" (Section 3).  The Appendix B code
uses a Hanning window over ``num_pulses - stagger`` samples.  We provide the
common radar choices; all are periodic-symmetric windows computed from first
principles (no scipy.signal dependency) and normalized to peak 1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def rectangular(length: int) -> np.ndarray:
    """All-ones window (no sidelobe control; narrowest mainlobe)."""
    _check_length(length)
    return np.ones(length)


def hanning(length: int) -> np.ndarray:
    """Hann window (MATLAB ``hanning``: symmetric, endpoints nonzero)."""
    _check_length(length)
    n = np.arange(1, length + 1)
    return 0.5 * (1.0 - np.cos(2.0 * np.pi * n / (length + 1)))


def hamming(length: int) -> np.ndarray:
    """Hamming window (symmetric)."""
    _check_length(length)
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * n / (length - 1))


def blackman(length: int) -> np.ndarray:
    """Blackman window (symmetric)."""
    _check_length(length)
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    x = 2.0 * np.pi * n / (length - 1)
    # Clamp: the endpoints are exactly 0 analytically but can come out as
    # -1e-17 in floating point.
    return np.maximum(0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2.0 * x), 0.0)


def taylor(length: int, nbar: int = 4, sidelobe_db: float = 30.0) -> np.ndarray:
    """Taylor window — the radar community's standard Doppler weighting.

    Produces ``nbar - 1`` near-in sidelobes at ``-sidelobe_db`` with the
    minimum mainlobe broadening, via the classical Taylor synthesis
    (cosine-series coefficients from the zero-matching formula).
    Normalized to peak 1.
    """
    _check_length(length)
    if nbar < 1:
        raise ConfigurationError(f"nbar must be >= 1, got {nbar}")
    if sidelobe_db <= 0:
        raise ConfigurationError(f"sidelobe_db must be positive, got {sidelobe_db}")
    if length == 1:
        return np.ones(1)
    amplitude_ratio = 10.0 ** (sidelobe_db / 20.0)
    a = np.arccosh(amplitude_ratio) / np.pi
    sigma2 = nbar**2 / (a**2 + (nbar - 0.5) ** 2)

    def coefficient(m: int) -> float:
        numerator = 1.0
        for n in range(1, nbar):
            numerator *= 1.0 - m**2 / (sigma2 * (a**2 + (n - 0.5) ** 2))
        denominator = 1.0
        for n in range(1, nbar):
            if n != m:
                denominator *= 1.0 - m**2 / n**2
        return -((-1.0) ** m) * numerator / (2.0 * denominator)

    positions = (np.arange(length) - (length - 1) / 2.0) / length
    window = np.ones(length)
    for m in range(1, nbar):
        window += 2.0 * coefficient(m) * np.cos(2.0 * np.pi * m * positions)
    return window / window.max()


def _check_length(length: int) -> None:
    if length < 1:
        raise ConfigurationError(f"window length must be >= 1, got {length}")


#: Registry used by :func:`window_by_name`.
WINDOWS = {
    "rectangular": rectangular,
    "rect": rectangular,
    "hanning": hanning,
    "hann": hanning,
    "hamming": hamming,
    "blackman": blackman,
    "taylor": taylor,
}


def window_by_name(name: str, length: int) -> np.ndarray:
    """Look up a window function by name and evaluate it."""
    try:
        fn = WINDOWS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown window {name!r}; choose from {sorted(set(WINDOWS))}"
        ) from None
    return fn(length)
