"""Array geometry and steering vectors.

The RTMCARM antenna is modeled as a uniform linear array (ULA) of J
half-wavelength-spaced elements (the paper processed the upper row of 16
elements of the L-band array).  Spatial steering vectors follow the standard
narrowband model; temporal (Doppler) steering vectors use normalized Doppler
frequency in cycles/PRI.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def spatial_steering(
    num_channels: int,
    angle_deg: float,
    spacing_wavelengths: float = 0.5,
    dtype=np.complex128,
) -> np.ndarray:
    """Unit-norm ULA steering vector for arrival angle ``angle_deg``.

    Parameters
    ----------
    num_channels:
        Number of array elements J.
    angle_deg:
        Angle off boresight, in degrees, in (-90, 90).
    spacing_wavelengths:
        Element spacing in wavelengths (default half-wavelength).
    """
    if not (-90.0 <= angle_deg <= 90.0):
        raise ConfigurationError(f"angle must be in [-90, 90] deg, got {angle_deg}")
    k = np.arange(num_channels)
    phase = 2.0 * np.pi * spacing_wavelengths * np.sin(np.deg2rad(angle_deg))
    vec = np.exp(1j * phase * k).astype(dtype)
    return vec / np.sqrt(num_channels)


def temporal_steering(
    num_pulses: int, normalized_doppler: float, dtype=np.complex128
) -> np.ndarray:
    """Unit-norm Doppler steering vector.

    ``normalized_doppler`` is in cycles per PRI; 0 is the (clutter-centred)
    zero-Doppler line, ±0.5 the unambiguous edges.
    """
    n = np.arange(num_pulses)
    vec = np.exp(2j * np.pi * normalized_doppler * n).astype(dtype)
    return vec / np.sqrt(num_pulses)


def beam_angles(num_beams: int, span_deg: float = 25.0) -> np.ndarray:
    """Receive-beam pointing angles within one transmit beam.

    The airborne system transmitted five 25-degree beams and formed six
    receive beams within each (Section 3); by default we spread ``num_beams``
    receive beams evenly across a 25-degree transmit illumination region.
    """
    if num_beams < 1:
        raise ConfigurationError(f"num_beams must be >= 1, got {num_beams}")
    if num_beams == 1:
        return np.zeros(1)
    half = span_deg / 2.0
    return np.linspace(-half, half, num_beams)


def steering_matrix(
    num_channels: int,
    angles_deg,
    spacing_wavelengths: float = 0.5,
    dtype=np.complex128,
) -> np.ndarray:
    """Matrix of steering vectors, shape (J, num_beams) — column per beam."""
    angles = np.atleast_1d(np.asarray(angles_deg, dtype=float))
    cols = [
        spatial_steering(num_channels, a, spacing_wavelengths, dtype=dtype)
        for a in angles
    ]
    return np.stack(cols, axis=1)
