"""Stage graph and replication planning for the process-parallel runtime.

The runtime executes the paper's seven-task decomposition (Figure 4) with
one worker process per stage replica.  :data:`EDGES` is the dataflow
graph; :func:`edge_specs` gives every edge's payload shape and dtype —
the exact arrays the sequential reference produces between kernels, so
shipping them whole keeps the parallel numerics bit-identical.

:class:`StagePlan` maps a paper processor assignment (Table 7 cases and
friends) onto a local worker budget: node counts are scaled down
proportionally (largest-remainder, at least one worker per stage) so a
236-node case 1 keeps its *shape* — hard weights get the lion's share —
at laptop scale.

Routing is deterministic and published here because producers and
consumers must agree on it without communicating: stateless stages own
CPI ``i`` at replica ``i % R``; the stateful weight stages own whole
azimuths (``azimuth % R``), since their recursion state lives per
azimuth.  Determinism makes every (producer replica, consumer replica)
channel a FIFO whose arrival order equals the consumer's processing
order — no reorder buffers, and progress follows by induction on
(topological order, CPI order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.assignment import TASK_NAMES, Assignment
from repro.errors import ConfigurationError
from repro.radar.parameters import STAPParams

#: Stages whose weight recursion state is keyed by azimuth; their
#: replication is capped at the azimuth cycle (a replica per azimuth is
#: the maximum useful parallelism) and their routing is by azimuth.
WEIGHT_STAGES = ("easy_weight", "hard_weight")

#: Dataflow edges: name -> (producer stage, consumer stage).
EDGES: Dict[str, Tuple[str, str]] = {
    "easy_data": ("doppler", "easy_beamform"),
    "hard_data": ("doppler", "hard_beamform"),
    "easy_train": ("doppler", "easy_weight"),
    "hard_train": ("doppler", "hard_weight"),
    "easy_w": ("easy_weight", "easy_beamform"),
    "hard_w": ("hard_weight", "hard_beamform"),
    "easy_y": ("easy_beamform", "pulse_compression"),
    "hard_y": ("hard_beamform", "pulse_compression"),
    "power": ("pulse_compression", "cfar"),
}


def edge_specs(params: STAPParams) -> Dict[str, Tuple[Tuple[int, ...], np.dtype]]:
    """Payload ``(shape, dtype)`` of every edge, from the algorithm shape.

    Shapes are exactly what the sequential chain materializes between
    kernels (the Doppler filter emits complex128 regardless of the cube
    dtype; pulse compression emits the params' real dtype), so a consumer
    slicing a channel view sees byte-identical strides to the serial code.
    """
    ne = params.num_easy_doppler
    nh = params.num_hard_doppler
    J = params.num_channels
    n2 = params.num_staggered_channels
    M = params.num_beams
    K = params.num_ranges
    S = params.num_segments
    c128 = np.dtype(np.complex128)
    return {
        "easy_data": ((ne, n2, K), c128),
        "hard_data": ((nh, n2, K), c128),
        "easy_train": ((ne, params.easy_train_per_cpi, J), c128),
        "hard_train": ((S, nh, params.hard_train_samples, n2), c128),
        "easy_w": ((ne, J, M), c128),
        "hard_w": ((S, nh, n2, M), c128),
        "easy_y": ((ne, M, K), c128),
        "hard_y": ((nh, M, K), c128),
        "power": ((params.num_doppler, M, K), np.dtype(params.real_dtype)),
    }


@dataclass(frozen=True)
class StagePlan:
    """Worker replicas per stage, in :data:`TASK_NAMES` order."""

    counts: Tuple[int, ...]

    def __post_init__(self):
        if len(self.counts) != len(TASK_NAMES):
            raise ConfigurationError(
                f"stage plan needs {len(TASK_NAMES)} counts, got "
                f"{len(self.counts)}"
            )
        for stage, count in zip(TASK_NAMES, self.counts):
            if not isinstance(count, int) or count < 1:
                raise ConfigurationError(
                    f"stage {stage} needs at least one worker, got {count!r}"
                )

    # -- views -------------------------------------------------------------------
    def of(self, stage: str) -> int:
        if stage not in TASK_NAMES:
            raise ConfigurationError(f"unknown stage {stage!r}")
        return self.counts[TASK_NAMES.index(stage)]

    @property
    def total_workers(self) -> int:
        return sum(self.counts)

    def as_dict(self) -> Dict[str, int]:
        return dict(zip(TASK_NAMES, self.counts))

    # -- routing -----------------------------------------------------------------
    def owner_of(self, stage: str, cpi: int, azimuth_cycle: int) -> int:
        """Replica that processes CPI ``cpi`` of ``stage`` (deterministic)."""
        replicas = self.of(stage)
        if stage in WEIGHT_STAGES:
            return (cpi % azimuth_cycle) % replicas
        return cpi % replicas

    def stage_cpis(self, stage: str, replica: int, num_cpis: int,
                   azimuth_cycle: int) -> list[int]:
        """The (increasing) CPI subsequence one replica owns — its whole
        work quota, known up front, so workers terminate by exhaustion
        instead of poison pills (a zero-CPI stream exits immediately)."""
        return [
            i for i in range(num_cpis)
            if self.owner_of(stage, i, azimuth_cycle) == replica
        ]

    # -- constructors ------------------------------------------------------------
    @classmethod
    def uniform(cls, replicas: int = 1,
                azimuth_cycle: int = 1) -> "StagePlan":
        """One plan entry per stage; weight stages capped at the cycle."""
        counts = tuple(
            min(replicas, azimuth_cycle) if stage in WEIGHT_STAGES else replicas
            for stage in TASK_NAMES
        )
        return cls(counts)

    @classmethod
    def from_assignment(
        cls,
        assignment: Assignment,
        workers: Optional[int] = None,
        azimuth_cycle: int = 1,
    ) -> "StagePlan":
        """Scale a paper assignment onto a local worker budget.

        Largest-remainder proportional scaling with a floor of one worker
        per stage; weight-stage replication never exceeds the azimuth
        cycle (extra replicas would own zero azimuths).  ``workers`` below
        the seven-stage minimum is raised to it.
        """
        node_counts = assignment.counts()
        budget = max(int(workers) if workers else len(TASK_NAMES),
                     len(TASK_NAMES))
        total = sum(node_counts)
        raw = [budget * c / total for c in node_counts]
        caps = [
            max(1, azimuth_cycle) if stage in WEIGHT_STAGES else budget
            for stage in TASK_NAMES
        ]
        counts = [min(max(1, math.floor(r)), cap)
                  for r, cap in zip(raw, caps)]
        # Hand out any remaining budget by descending fractional remainder
        # (index breaks ties, for determinism), respecting the caps.
        order = sorted(range(len(TASK_NAMES)),
                       key=lambda i: (-(raw[i] - math.floor(raw[i])), i))
        while sum(counts) < budget:
            for i in order:
                if sum(counts) >= budget:
                    break
                if counts[i] < caps[i]:
                    counts[i] += 1
            else:
                break  # every stage at its cap
            if all(counts[i] >= caps[i] for i in range(len(counts))):
                break
        # The one-worker floor can overshoot a tight budget (many tasks
        # scaled below one); shave the largest stages back down.
        while sum(counts) > budget:
            i = max(range(len(counts)), key=lambda j: (counts[j], -j))
            if counts[i] <= 1:
                break
            counts[i] -= 1
        return cls(tuple(counts))
