"""Process-parallel pipelined STAP runtime (real cores, shared memory).

The simulator (:mod:`repro.des`, :mod:`repro.core`) *models* the paper's
parallel pipeline; this package *executes* it: one worker process per
stage replica of the seven-task decomposition, double-buffered
shared-memory channels between stages, temporal parallelism across
in-flight CPIs, and detections bit-identical to the sequential
functional chain.

Entry points:

* :class:`ParallelSTAP` — build and run a parallel functional pipeline;
* :class:`~repro.rt.plan.StagePlan` — map a paper processor assignment
  onto a local worker budget;
* :meth:`repro.core.pipeline.STAPPipeline.run_parallel` — the same thing
  from an existing functional pipeline configuration;
* ``repro-stap detect --rt-workers N`` — the CLI demo.
"""

from repro.errors import PipelineError
from repro.rt.plan import EDGES, StagePlan, edge_specs
from repro.rt.runtime import ParallelSTAP, RtResult
from repro.rt.shm import ShmChannel

__all__ = [
    "EDGES",
    "ParallelSTAP",
    "PipelineError",
    "RtResult",
    "ShmChannel",
    "StagePlan",
    "edge_specs",
]
