"""Stage worker bodies for the process-parallel runtime.

Each function is the main loop of one worker process executing one
replica of one paper task.  The kernels called here are *exactly* the
sequential reference's calls (:class:`~repro.stap.reference.SequentialSTAP`
.process), on arrays with identical memory layout — the channels carry
the same contiguous blocks the serial code materializes
(``staggered[easy_bins]``, training extracts, weight tensors), and
consumers take the same views of them (``[:, :J, :]``) — so the parallel
detections are bit-identical to the serial chain by construction.

Temporal weight semantics (Section 5): the weights applied to CPI ``i``
were trained on the previous visit to the same azimuth, ``i - A`` for
cycle ``A``.  The weight workers therefore *tag* each weight message
with the future CPI it is for (``s + A`` after training on ``s``), and
the beamform workers fall back to the quiescent weights for the first
visit to each azimuth (``i < A``) — exactly the serial reference's
cold-start path.

Every worker knows its full CPI quota up front
(:meth:`~repro.rt.plan.StagePlan.stage_cpis`) and processes it strictly
in order, which is what makes every channel's arrival order equal its
consumption order (see :mod:`repro.rt.plan`).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.assignment import TASK_NAMES
from repro.rt.metrics import StageMetrics
from repro.stap.beamform import assemble_beamformed, beamform_easy, beamform_hard
from repro.stap.cfar import cfar_detect
from repro.stap.doppler import doppler_filter
from repro.stap.easy_weights import EasyWeightComputer, extract_easy_training
from repro.stap.hard_weights import HardWeightComputer, extract_hard_training
from repro.stap.pulse_compression import pulse_compress


class RtContext:
    """Everything a worker needs, inherited whole across ``fork``."""

    def __init__(self, params, plan, kernel_plan, stream, num_cpis,
                 azimuth_cycle, channels, result_q, abort, metered):
        self.params = params
        self.plan = plan
        self.kernel_plan = kernel_plan
        self.stream = stream
        self.num_cpis = num_cpis
        self.azimuth_cycle = azimuth_cycle
        self.channels = channels  # (edge, src_replica, dst_replica) -> ShmChannel
        self.result_q = result_q
        self.abort = abort
        self.metered = metered

    # -- plumbing ----------------------------------------------------------------
    def post(self, message) -> None:
        self.result_q.put(message)

    def channel(self, edge: str, src: int, dst: int):
        return self.channels[(edge, src, dst)]

    def my_cpis(self, stage: str, replica: int) -> list[int]:
        return self.plan.stage_cpis(stage, replica, self.num_cpis,
                                    self.azimuth_cycle)

    def send(self, edge: str, src: int, dst: int, array, cpi: int,
             metrics: StageMetrics) -> None:
        self.channel(edge, src, dst).send(
            array, cpi, self.abort, wait_observer=metrics.timed_backpressure)

    def recv(self, edge: str, src: int, dst: int, cpi: int,
             metrics: StageMetrics):
        return self.channel(edge, src, dst).recv(
            cpi, self.abort, wait_observer=metrics.timed_wait)


def _comp_clock(metrics: StageMetrics):
    return perf_counter() if metrics.enabled else None


def _comp_done(metrics: StageMetrics, started) -> None:
    if started is not None:
        metrics.observe_comp(perf_counter() - started)


# -- stage 0: Doppler filter (also the runtime's data source) ----------------------
def run_doppler(ctx: RtContext, replica: int, metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    kp = ctx.kernel_plan
    A = ctx.azimuth_cycle
    r_ew = plan.of("easy_weight")
    r_hw = plan.of("hard_weight")
    r_ebf = plan.of("easy_beamform")
    r_hbf = plan.of("hard_beamform")
    for i in ctx.my_cpis("doppler", replica):
        ctx.post(("start", i, perf_counter()))
        cube = ctx.stream.cube(i)
        azimuth = cube.azimuth
        if azimuth != i % A:
            raise RuntimeError(
                f"stream azimuth {azimuth} for CPI {i} breaks the cyclic "
                f"schedule (expected {i % A}); the runtime's azimuth "
                "routing requires azimuth_of(i) == i % azimuth_cycle"
            )
        started = _comp_clock(metrics)
        staggered = doppler_filter(cube, window=kp.doppler_window)
        # The exact blocks the sequential reference materializes: fancy
        # indexing copies them C-contiguous, which is also the layout the
        # channel slots hold — consumers see identical strides.
        easy_data = staggered[params.easy_bins]
        hard_data = staggered[params.hard_bins]
        easy_train = extract_easy_training(staggered, params)
        hard_train = extract_hard_training(staggered, params)
        _comp_done(metrics, started)
        ctx.send("easy_data", replica, i % r_ebf, easy_data, i, metrics)
        ctx.send("hard_data", replica, i % r_hbf, hard_data, i, metrics)
        ctx.send("easy_train", replica, azimuth % r_ew, easy_train, i, metrics)
        ctx.send("hard_train", replica, azimuth % r_hw, hard_train, i, metrics)
        metrics.count_item()


# -- stage 1: easy weights (stateful per azimuth) ----------------------------------
def run_easy_weight(ctx: RtContext, replica: int,
                    metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    A = ctx.azimuth_cycle
    r_d = plan.of("doppler")
    r_ebf = plan.of("easy_beamform")
    computer = EasyWeightComputer(params, ctx.kernel_plan.steering)
    for s in ctx.my_cpis("easy_weight", replica):
        azimuth = s % A
        slot, view = ctx.recv("easy_train", s % r_d, replica, s, metrics)
        # The computer's history deque retains the array across visits, so
        # take ownership with a copy before handing the slot back.
        training = np.array(view)
        ctx.channel("easy_train", s % r_d, replica).release(slot)
        started = _comp_clock(metrics)
        computer.push_training(training, azimuth)
        target = s + A  # the next visit to this azimuth
        if target < ctx.num_cpis:
            weights = computer.compute_weights(azimuth)
            _comp_done(metrics, started)
            ctx.send("easy_w", replica, target % r_ebf, weights, target,
                     metrics)
        else:
            _comp_done(metrics, started)
        metrics.count_item()


# -- stage 2: hard weights (recursive QR per azimuth) ------------------------------
def run_hard_weight(ctx: RtContext, replica: int,
                    metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    A = ctx.azimuth_cycle
    r_d = plan.of("doppler")
    r_hbf = plan.of("hard_beamform")
    computer = HardWeightComputer(params, ctx.kernel_plan.steering)
    for s in ctx.my_cpis("hard_weight", replica):
        azimuth = s % A
        slot, view = ctx.recv("hard_train", s % r_d, replica, s, metrics)
        started = _comp_clock(metrics)
        # The recursion absorbs the rows eagerly (nothing retains the
        # view), so no defensive copy is needed before releasing.
        computer.update(view, azimuth)
        ctx.channel("hard_train", s % r_d, replica).release(slot)
        target = s + A
        if target < ctx.num_cpis:
            weights = computer.compute_weights(azimuth)
            _comp_done(metrics, started)
            ctx.send("hard_w", replica, target % r_hbf, weights, target,
                     metrics)
        else:
            _comp_done(metrics, started)
        metrics.count_item()


# -- stage 3: easy beamforming -----------------------------------------------------
def run_easy_beamform(ctx: RtContext, replica: int,
                      metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    kp = ctx.kernel_plan
    A = ctx.azimuth_cycle
    J = params.num_channels
    r_d = plan.of("doppler")
    r_ew = plan.of("easy_weight")
    r_pc = plan.of("pulse_compression")
    for i in ctx.my_cpis("easy_beamform", replica):
        azimuth = i % A
        dslot, data = ctx.recv("easy_data", i % r_d, replica, i, metrics)
        wslot = None
        if i < A:
            # First visit to this azimuth: the quiescent cold start, built
            # exactly as the reference's EasyWeightComputer fallback.
            weights = np.empty(
                (params.num_easy_doppler, J, params.num_beams), dtype=complex)
            weights[:] = kp.easy_quiescent[None, :, :]
            src = None
        else:
            src = azimuth % r_ew
            wslot, weights = ctx.recv("easy_w", src, replica, i, metrics)
        started = _comp_clock(metrics)
        beams = beamform_easy(data[:, :J, :], weights, params)
        _comp_done(metrics, started)
        if wslot is not None:
            ctx.channel("easy_w", src, replica).release(wslot)
        ctx.channel("easy_data", i % r_d, replica).release(dslot)
        ctx.send("easy_y", replica, i % r_pc, beams, i, metrics)
        metrics.count_item()


# -- stage 4: hard beamforming -----------------------------------------------------
def run_hard_beamform(ctx: RtContext, replica: int,
                      metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    kp = ctx.kernel_plan
    A = ctx.azimuth_cycle
    r_d = plan.of("doppler")
    r_hw = plan.of("hard_weight")
    r_pc = plan.of("pulse_compression")
    n2 = params.num_staggered_channels
    for i in ctx.my_cpis("hard_beamform", replica):
        azimuth = i % A
        dslot, data = ctx.recv("hard_data", i % r_d, replica, i, metrics)
        wslot = None
        if i < A:
            weights = np.empty(
                (params.num_segments, params.num_hard_doppler, n2,
                 params.num_beams),
                dtype=complex,
            )
            weights[:] = kp.hard_quiescent[params.hard_bins][None]
            src = None
        else:
            src = azimuth % r_hw
            wslot, weights = ctx.recv("hard_w", src, replica, i, metrics)
        started = _comp_clock(metrics)
        beams = beamform_hard(data, weights, params)
        _comp_done(metrics, started)
        if wslot is not None:
            ctx.channel("hard_w", src, replica).release(wslot)
        ctx.channel("hard_data", i % r_d, replica).release(dslot)
        ctx.send("hard_y", replica, i % r_pc, beams, i, metrics)
        metrics.count_item()


# -- stage 5: pulse compression (joins the two beam halves) ------------------------
def run_pulse_compression(ctx: RtContext, replica: int,
                          metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    r_ebf = plan.of("easy_beamform")
    r_hbf = plan.of("hard_beamform")
    r_cfar = plan.of("cfar")
    replica_freq = ctx.kernel_plan.replica_freq
    for i in ctx.my_cpis("pulse_compression", replica):
        eslot, easy_y = ctx.recv("easy_y", i % r_ebf, replica, i, metrics)
        hslot, hard_y = ctx.recv("hard_y", i % r_hbf, replica, i, metrics)
        started = _comp_clock(metrics)
        beams = assemble_beamformed(easy_y, hard_y, params)
        ctx.channel("easy_y", i % r_ebf, replica).release(eslot)
        ctx.channel("hard_y", i % r_hbf, replica).release(hslot)
        power = pulse_compress(beams, params, replica_freq)
        _comp_done(metrics, started)
        ctx.send("power", replica, i % r_cfar, power, i, metrics)
        metrics.count_item()


# -- stage 6: CFAR (emits the detection reports) -----------------------------------
def run_cfar(ctx: RtContext, replica: int, metrics: StageMetrics) -> None:
    params, plan = ctx.params, ctx.plan
    r_pc = plan.of("pulse_compression")
    factor = ctx.kernel_plan.cfar_factor
    for i in ctx.my_cpis("cfar", replica):
        slot, power = ctx.recv("power", i % r_pc, replica, i, metrics)
        started = _comp_clock(metrics)
        detections = cfar_detect(power, params, factor=factor)
        _comp_done(metrics, started)
        ctx.channel("power", i % r_pc, replica).release(slot)
        ctx.post(("report", i, tuple(detections), perf_counter()))
        metrics.count_item()


STAGE_BODIES = {
    "doppler": run_doppler,
    "easy_weight": run_easy_weight,
    "hard_weight": run_hard_weight,
    "easy_beamform": run_easy_beamform,
    "hard_beamform": run_hard_beamform,
    "pulse_compression": run_pulse_compression,
    "cfar": run_cfar,
}
assert set(STAGE_BODIES) == set(TASK_NAMES)


def run_stage(ctx: RtContext, stage: str, replica: int) -> None:
    """Dispatch one worker's main loop (called inside the worker process)."""
    metrics = StageMetrics(stage)
    STAGE_BODIES[stage](ctx, replica, metrics)
