"""Metrics instrumentation for the process-parallel runtime.

Follows the campaign-metrics conventions of :mod:`repro.obs.metrics`:
default-off, guarded by one ``enabled`` read, fixed buckets so worker
snapshots merge bucket-wise.  Every worker enables its own (forked)
registry when the parent ran metered, records per-stage instruments
while processing, and ships one frozen snapshot home inside its "done"
message; the parent merges them so the campaign registry ends identical
to what a single-process run would have recorded stage by stage.

Series:

* ``rt_queue_wait_seconds{stage=}`` — time a stage spent blocked waiting
  for upstream data (the receive side of the paper's T_recv);
* ``rt_backpressure_seconds{stage=}`` — time blocked waiting for a free
  downstream slot (double-buffer credit exhausted);
* ``rt_comp_seconds{stage=}`` — kernel time per CPI;
* ``rt_items_total{stage=}`` — CPIs completed per stage.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs.metrics import MetricsRegistry, metrics_registry


class StageMetrics:
    """Per-worker instrument bundle for one stage (cheap when disabled)."""

    def __init__(self, stage: str, registry: MetricsRegistry | None = None):
        self.registry = metrics_registry if registry is None else registry
        labels = {"stage": stage}
        self._wait = self.registry.histogram(
            "rt_queue_wait_seconds",
            "host seconds blocked waiting for upstream data", labels=labels)
        self._pressure = self.registry.histogram(
            "rt_backpressure_seconds",
            "host seconds blocked on a full downstream double buffer",
            labels=labels)
        self._comp = self.registry.histogram(
            "rt_comp_seconds", "host kernel seconds per CPI", labels=labels)
        self._items = self.registry.counter(
            "rt_items_total", "CPIs completed by the stage", labels=labels)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    # -- observer shims for ShmChannel.send/recv ---------------------------------
    def timed_wait(self, blocking_call):
        """Run a blocking receive, recording how long it waited."""
        if not self.registry.enabled:
            return blocking_call()
        start = perf_counter()
        try:
            return blocking_call()
        finally:
            self._wait.observe(perf_counter() - start)

    def timed_backpressure(self, blocking_call):
        """Run a blocking credit acquire, recording how long it waited."""
        if not self.registry.enabled:
            return blocking_call()
        start = perf_counter()
        try:
            return blocking_call()
        finally:
            self._pressure.observe(perf_counter() - start)

    def observe_comp(self, seconds: float) -> None:
        self._comp.observe(seconds)

    def count_item(self) -> None:
        self._items.inc()


def record_rt_run(result, registry: MetricsRegistry | None = None) -> None:
    """Flush one completed parallel run's headline numbers (parent side)."""
    import math

    reg = metrics_registry if registry is None else registry
    if not reg.enabled:
        return
    reg.counter("rt_runs_total", "completed parallel runtime runs").inc()
    reg.counter("rt_reports_total",
                "detection reports produced by parallel runs").inc(
        len(result.reports))
    reg.gauge("rt_workers", "worker processes of the last parallel run").set(
        result.plan.total_workers)
    if not math.isnan(result.throughput):
        reg.histogram(
            "rt_throughput_cpis_per_second",
            "end-to-end throughput per parallel run",
            buckets=(0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128),
        ).observe(result.throughput)
    if not math.isnan(result.latency):
        reg.histogram("rt_latency_seconds",
                      "mean per-CPI input-to-report latency").observe(
            result.latency)
