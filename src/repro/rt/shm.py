"""Shared-memory ring channels for the process-parallel runtime.

One :class:`ShmChannel` connects exactly one producer replica to one
consumer replica for one pipeline edge.  It is the paper's double buffer
made literal: ``depth`` fixed-size slots of
:class:`multiprocessing.shared_memory.SharedMemory`, a *free queue* of
slot indices (the producer's credits — taking one blocks when the
consumer is behind, which is the backpressure rule) and a *data queue* of
``(slot, cpi)`` descriptors.  Arrays cross the process boundary as numpy
views over the mapped slot, so a CPI-sized payload costs one ``memcpy``
into the slot on send and zero copies on receive; only the tiny
descriptor is pickled.

Channels are created by the parent before forking and inherited by the
workers, so no shared-memory segment is ever attached by name (which
sidesteps the resource-tracker double-registration of
``SharedMemory(name=...)``); the parent unlinks every slot exactly once
at shutdown.
"""

from __future__ import annotations

import queue as _queue
from typing import Optional, Tuple

import numpy as np

#: Poll interval for abort-aware blocking operations (seconds).  A get
#: with a timeout returns the instant an item arrives; the interval only
#: bounds how stale an abort can go unnoticed on an idle queue.
_POLL_SECONDS = 0.05


class Aborted(Exception):
    """Internal control-flow signal: the runtime's abort event was set
    while a worker was blocked on a channel.  Never escapes the worker."""


def abortable_get(q, abort, timeout: float = _POLL_SECONDS):
    """``q.get()`` that re-checks ``abort`` between short waits."""
    while True:
        try:
            return q.get(timeout=timeout)
        except _queue.Empty:
            if abort.is_set():
                raise Aborted from None


class ShmChannel:
    """A bounded, ordered, single-producer/single-consumer array channel."""

    def __init__(self, ctx, name: str, shape: Tuple[int, ...],
                 dtype, depth: int = 2):
        from multiprocessing import shared_memory

        if depth < 1:
            raise ValueError(f"channel {name}: depth must be >= 1, got {depth}")
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.depth = depth
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._slots = [
            shared_memory.SharedMemory(create=True, size=nbytes)
            for _ in range(depth)
        ]
        self._free = ctx.Queue()
        for index in range(depth):
            self._free.put(index)
        self._data = ctx.Queue()

    # -- views -------------------------------------------------------------------
    def view(self, slot: int) -> np.ndarray:
        """The numpy array mapped over one slot (valid until released)."""
        return np.ndarray(self.shape, dtype=self.dtype,
                          buffer=self._slots[slot].buf)

    # -- producer side -----------------------------------------------------------
    def send(self, array: np.ndarray, cpi: int, abort,
             wait_observer=None) -> None:
        """Copy ``array`` into a free slot and publish it for ``cpi``.

        Blocks while every slot is still held by the consumer — the
        double-buffering backpressure that keeps at most ``depth`` CPIs of
        this edge in flight per channel.
        """
        if wait_observer is None:
            slot = abortable_get(self._free, abort)
        else:
            slot = wait_observer(lambda: abortable_get(self._free, abort))
        self.view(slot)[...] = array
        self._data.put((slot, cpi))

    # -- consumer side -----------------------------------------------------------
    def recv(self, expect_cpi: int, abort,
             wait_observer=None) -> Tuple[int, np.ndarray]:
        """Take the next descriptor; returns ``(slot, view)``.

        The runtime's deterministic routing makes every channel FIFO in
        exactly the consumer's processing order, so a descriptor for any
        CPI other than ``expect_cpi`` is a protocol violation, not a
        reordering to buffer around.
        """
        if wait_observer is None:
            slot, cpi = abortable_get(self._data, abort)
        else:
            slot, cpi = wait_observer(lambda: abortable_get(self._data, abort))
        if cpi != expect_cpi:
            raise RuntimeError(
                f"channel {self.name}: received CPI {cpi}, expected "
                f"{expect_cpi} (routing protocol violation)"
            )
        return slot, self.view(slot)

    def release(self, slot: int) -> None:
        """Return a received slot to the producer (consumer is done with
        the view — it must not be touched afterwards)."""
        self._free.put(slot)

    # -- lifecycle ---------------------------------------------------------------
    def destroy(self) -> None:
        """Close and unlink every slot (parent only, after joining workers)."""
        for shm in self._slots:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        for q in (self._free, self._data):
            q.close()

    @property
    def slot_bytes(self) -> int:
        return self._slots[0].size if self._slots else 0
