"""ParallelSTAP: the process-parallel pipelined runtime orchestrator.

Executes the functional STAP chain the way the paper's machine did: one
worker process per stage replica, double-buffered shared-memory channels
between stages, temporal parallelism across in-flight CPIs.  The parent
builds every channel and forks the workers, then sits on one result
queue collecting detection reports, per-worker completion messages, and
errors.

Shutdown contract:

* **success** — every worker exhausts its CPI quota, posts ``done`` and
  exits; the parent joins them and unlinks all shared memory;
* **worker exception** — the worker posts its traceback; the parent sets
  the abort event (unblocking everyone), raises
  :class:`~repro.errors.PipelineError` naming the stage, and still joins
  and unlinks everything in its ``finally``;
* **hard crash** (a worker dying without a message) — the parent notices
  the dead process during its poll, drains any in-flight messages, then
  raises :class:`PipelineError` with the exit code.
"""

from __future__ import annotations

import math
import multiprocessing
import queue as _queue
import traceback
from dataclasses import dataclass, field
from statistics import mean
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.assignment import TASK_NAMES, Assignment, CASE1
from repro.core.metrics import steady_state_slice
from repro.errors import ConfigurationError, PipelineError
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, metrics_registry
from repro.radar.parameters import STAPParams
from repro.rt.metrics import record_rt_run
from repro.rt.plan import EDGES, StagePlan, edge_specs
from repro.rt.shm import Aborted, ShmChannel
from repro.rt.stages import RtContext, run_stage
from repro.stap.detection import DetectionReport
from repro.stap.plan import KernelPlan
from repro.stap.reference import default_steering

#: Parent poll interval on the result queue (seconds).
_POLL_SECONDS = 0.1
#: Grace period for draining in-flight messages from a dead worker.
_DRAIN_SECONDS = 1.0
#: Seconds to wait for workers to exit after their final message.
_JOIN_SECONDS = 10.0


def _worker_entry(ctx: RtContext, stage: str, replica: int) -> None:
    """Process target: run one stage replica, always report how it ended."""
    if ctx.metered:
        metrics_registry.enable(reset=True)
    try:
        run_stage(ctx, stage, replica)
    except Aborted:
        return  # parent-initiated shutdown; it is not waiting for us
    except BaseException:
        try:
            ctx.post(("error", stage, replica, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already torn down
            pass
        return
    snapshot = metrics_registry.snapshot().to_dict() if ctx.metered else None
    ctx.post(("done", stage, replica, snapshot))


@dataclass
class RtResult:
    """Everything one parallel run produced."""

    reports: List[DetectionReport]
    num_cpis: int
    plan: StagePlan
    #: Host seconds from worker launch to the last detection report.
    elapsed_seconds: float
    #: End-to-end rate over the whole run, CPIs/second.
    throughput: float
    #: Rate over the paper's middle CPIs (pipeline fill/drain excluded).
    steady_throughput: float
    #: Mean input-to-report latency over the middle CPIs, seconds.
    latency: float
    #: Merged per-worker metrics (only when the registry was enabled).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def workers(self) -> int:
        return self.plan.total_workers


class ParallelSTAP:
    """Run the functional STAP pipeline across real worker processes."""

    def __init__(
        self,
        params: STAPParams,
        stream,
        num_cpis: int,
        azimuth_cycle: int = 1,
        assignment: Optional[Assignment] = None,
        workers: Optional[int] = None,
        plan: Optional[StagePlan] = None,
        steering=None,
        kernel_plan: Optional[KernelPlan] = None,
        depth: int = 2,
    ):
        """``plan`` wins when given; otherwise the stage replication is
        scaled from ``assignment`` (default: the paper's Table 7 case 1
        shape) onto ``workers`` local processes.  ``depth`` is the channel
        ring depth — 2 is the paper's double buffering.

        ``num_cpis`` may be zero: every worker's quota is empty and the
        run terminates immediately with no reports."""
        if num_cpis < 0:
            raise ConfigurationError(f"num_cpis must be >= 0, got {num_cpis}")
        if azimuth_cycle < 1:
            raise ConfigurationError(
                f"azimuth_cycle must be >= 1, got {azimuth_cycle}")
        stream_cycle = getattr(stream, "azimuth_cycle", azimuth_cycle)
        if stream_cycle != azimuth_cycle:
            raise ConfigurationError(
                f"stream azimuth cycle {stream_cycle} != runtime "
                f"azimuth_cycle {azimuth_cycle}")
        if getattr(stream, "params", params) != params:
            raise ConfigurationError("stream params differ from runtime params")
        self.params = params
        self.stream = stream
        self.num_cpis = num_cpis
        self.azimuth_cycle = azimuth_cycle
        if plan is None:
            plan = StagePlan.from_assignment(
                assignment or CASE1, workers=workers,
                azimuth_cycle=azimuth_cycle)
        self.plan = plan
        if kernel_plan is None:
            steering = (default_steering(params) if steering is None
                        else steering)
            kernel_plan = KernelPlan.build(params, steering)
        self.kernel_plan = kernel_plan
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = depth

    # -- construction ------------------------------------------------------------
    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods:
            raise PipelineError(
                "repro.rt requires the 'fork' start method (workers inherit "
                f"channels and streams); this platform offers {methods}")
        return multiprocessing.get_context("fork")

    def _build_channels(self, mp_ctx) -> Dict[Tuple[str, int, int], ShmChannel]:
        specs = edge_specs(self.params)
        channels: Dict[Tuple[str, int, int], ShmChannel] = {}
        for edge, (src_stage, dst_stage) in EDGES.items():
            shape, dtype = specs[edge]
            for src in range(self.plan.of(src_stage)):
                for dst in range(self.plan.of(dst_stage)):
                    channels[(edge, src, dst)] = ShmChannel(
                        mp_ctx, f"{edge}[{src}->{dst}]", shape, dtype,
                        depth=self.depth)
        return channels

    # -- execution ---------------------------------------------------------------
    def run(self, timeout: Optional[float] = None) -> RtResult:
        """Run to completion; raises :class:`PipelineError` on any worker
        failure (after tearing everything down)."""
        mp_ctx = self._context()
        metered = metrics_registry.enabled
        channels = self._build_channels(mp_ctx)
        abort = mp_ctx.Event()
        result_q = mp_ctx.Queue()
        ctx = RtContext(
            params=self.params, plan=self.plan, kernel_plan=self.kernel_plan,
            stream=self.stream, num_cpis=self.num_cpis,
            azimuth_cycle=self.azimuth_cycle, channels=channels,
            result_q=result_q, abort=abort, metered=metered,
        )
        specs = [(stage, replica) for stage in TASK_NAMES
                 for replica in range(self.plan.of(stage))]
        workers: Dict[Tuple[str, int], multiprocessing.Process] = {}
        reports: Dict[int, tuple] = {}
        starts: Dict[int, float] = {}
        done: set = set()
        merged: Optional[MetricsRegistry] = (
            MetricsRegistry() if metered else None)

        def handle(message) -> None:
            kind = message[0]
            if kind == "start":
                starts[message[1]] = message[2]
            elif kind == "report":
                reports[message[1]] = (message[2], message[3])
            elif kind == "done":
                _, stage, replica, snapshot = message
                done.add((stage, replica))
                if snapshot is not None and merged is not None:
                    merged.merge(snapshot)
            elif kind == "error":
                _, stage, replica, trace = message
                raise PipelineError(
                    f"worker {stage}[{replica}] failed:\n{trace}",
                    stage=stage, replica=replica)
            else:  # pragma: no cover - future protocol drift
                raise PipelineError(f"unknown runtime message {message!r}")

        start_time = perf_counter()
        deadline = None if timeout is None else start_time + timeout
        try:
            for stage, replica in specs:
                proc = mp_ctx.Process(
                    target=_worker_entry, args=(ctx, stage, replica),
                    name=f"rt-{stage}-{replica}", daemon=True)
                proc.start()
                workers[(stage, replica)] = proc

            while len(done) < len(specs):
                try:
                    handle(result_q.get(timeout=_POLL_SECONDS))
                    continue
                except _queue.Empty:
                    pass
                if deadline is not None and perf_counter() > deadline:
                    raise PipelineError(
                        f"parallel run exceeded {timeout} s "
                        f"({len(done)}/{len(specs)} workers finished, "
                        f"{len(reports)}/{self.num_cpis} reports)")
                self._check_liveness(workers, done, result_q, handle)

            if len(reports) != self.num_cpis:
                missing = sorted(set(range(self.num_cpis)) - set(reports))
                raise PipelineError(
                    f"workers finished but reports are missing for CPIs "
                    f"{missing[:8]}{'...' if len(missing) > 8 else ''}")
        except BaseException:
            abort.set()
            raise
        finally:
            self._shutdown(workers, channels, result_q, abort)

        return self._finish(reports, starts, start_time, merged)

    # -- internals ---------------------------------------------------------------
    @staticmethod
    def _check_liveness(workers, done, result_q, handle) -> None:
        """Detect workers that died without a final message."""
        for (stage, replica), proc in workers.items():
            if (stage, replica) in done or proc.is_alive():
                continue
            # Its last messages may still be in the queue's pipe: drain
            # briefly before declaring a hard crash.
            grace_end = perf_counter() + _DRAIN_SECONDS
            while (stage, replica) not in done and perf_counter() < grace_end:
                try:
                    handle(result_q.get(timeout=_POLL_SECONDS))
                except _queue.Empty:
                    pass
            if (stage, replica) not in done:
                raise PipelineError(
                    f"worker {stage}[{replica}] died without reporting "
                    f"(exit code {proc.exitcode})",
                    stage=stage, replica=replica)

    @staticmethod
    def _shutdown(workers, channels, result_q, abort) -> None:
        """Join (or kill) every worker, then free all shared memory."""
        abort_was_set = abort.is_set()
        for proc in workers.values():
            proc.join(timeout=_JOIN_SECONDS if not abort_was_set else 2.0)
        for proc in workers.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        # Drain anything left so the queue's feeder thread can exit.
        try:
            while True:
                result_q.get_nowait()
        except (_queue.Empty, OSError, ValueError):
            pass
        result_q.close()
        for channel in channels.values():
            channel.destroy()

    def _finish(self, reports, starts, start_time, merged) -> RtResult:
        out_reports = []
        for cpi in range(self.num_cpis):
            detections, finished = reports[cpi]
            out_reports.append(DetectionReport(
                cpi_index=cpi, detections=detections,
                completed_at=finished - start_time))
        elapsed = max((r.completed_at for r in out_reports), default=0.0)
        throughput = (self.num_cpis / elapsed
                      if self.num_cpis and elapsed > 0 else float("nan"))
        steady_throughput = float("nan")
        latency = float("nan")
        if self.num_cpis:
            lo, hi = steady_state_slice(self.num_cpis)
            mid = [reports[i][1] for i in range(lo, hi)]
            if len(mid) >= 2 and mid[-1] > mid[0]:
                steady_throughput = (len(mid) - 1) / (mid[-1] - mid[0])
            spans = [reports[i][1] - starts[i]
                     for i in range(lo, hi) if i in starts]
            if spans:
                latency = mean(spans)
        snapshot = None
        if merged is not None:
            snapshot = merged.snapshot()
            metrics_registry.merge(snapshot)
        result = RtResult(
            reports=out_reports, num_cpis=self.num_cpis, plan=self.plan,
            elapsed_seconds=elapsed, throughput=throughput,
            steady_throughput=steady_throughput, latency=latency,
            metrics=snapshot,
        )
        record_rt_run(result)
        return result
