"""Performance instrumentation for the simulator itself.

The paper's results are virtual-time measurements; this package measures
the *simulator's* wall-clock behaviour — events per second, matching
probes per message, wall-seconds per simulated CPI — so that regressions
in simulation speed are visible and the fast-path optimizations stay
honest.

:mod:`repro.perf.kernels` adds the complementary *numerical* view:
per-kernel host seconds and achieved flops/s of the batched STAP kernels
against the paper's Table 1 operation counts.

Everything here is opt-in.  The underlying counters
(:attr:`repro.des.Simulator.events_processed`,
:attr:`repro.mpi.World.match_probes`, ...) are plain integer increments
maintained unconditionally on the hot path; collection and reporting
only happen when a caller asks (``STAPPipeline(..., perf=True)``,
``repro-stap case --perf``, or :func:`profile_run`).
"""

from repro.perf.counters import (
    ExecCounters,
    PerfReport,
    exec_counters,
    snapshot_counters,
)
from repro.perf.kernels import (
    KernelCounters,
    KernelStats,
    achieved_vs_table1,
    kernel_counters,
)
from repro.perf.profiling import profile_run

__all__ = [
    "ExecCounters",
    "PerfReport",
    "exec_counters",
    "snapshot_counters",
    "KernelCounters",
    "KernelStats",
    "achieved_vs_table1",
    "kernel_counters",
    "profile_run",
]
