"""Per-kernel wall-time and achieved-flops counters for the STAP kernels.

Complements :mod:`repro.perf.counters` (which measures the *simulator*):
this module measures the *numerical kernels themselves* — how many host
seconds each batched NumPy kernel spends per run, and what fraction of the
paper's analytic operation counts (Table 1, :mod:`repro.stap.flops`) it
sustains.  The before/after evidence for the batched-kernel work lives in
``benchmarks/bench_kernels.py``, which drives these counters.

Collection is opt-in and off by default: every instrumented kernel pays
one attribute check (``if not counters.enabled``) when disabled, so the
functional hot path stays clean.  Enable around a region of interest::

    from repro.perf import kernel_counters

    with kernel_counters.collect():
        SequentialSTAP(params).process_stream(stream.take(8))
    print(kernel_counters.summary())

The kernel names match the pipeline task kernels (``doppler``,
``easy_weight``, ``hard_weight``, ``easy_beamform``, ``hard_beamform``,
``pulse_compression``, ``cfar``), so per-kernel achieved flops/s line up
row-for-row with Table 1.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional


@dataclass
class KernelStats:
    """Accumulated cost of one kernel: calls, host seconds, modeled flops.

    ``flops`` uses the analytic per-task counts of :mod:`repro.stap.flops`
    scaled by each call's share of the cube (the instrumented kernels know
    their block sizes) — i.e. *useful* operations, so ``flops_per_second``
    is achieved throughput against the paper's own accounting, not a count
    of machine instructions.
    """

    calls: int = 0
    seconds: float = 0.0
    flops: float = 0.0

    @property
    def flops_per_second(self) -> float:
        """Achieved throughput in modeled flops per host second."""
        return self.flops / self.seconds if self.seconds > 0.0 else 0.0

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "flops": self.flops,
            "flops_per_second": self.flops_per_second,
        }


class KernelCounters:
    """Registry of :class:`KernelStats`, keyed by kernel name.

    A module singleton (:data:`kernel_counters`) is shared by all
    instrumented kernels; :meth:`timed` is the single hot-path entry
    point.  Not thread-safe — enable it around single-threaded
    measurement regions only (the functional pipeline runs the numerics
    on one thread).
    """

    def __init__(self) -> None:
        self.enabled: bool = False
        self._stats: Dict[str, KernelStats] = {}

    # -- lifecycle ----------------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._stats.clear()

    @contextmanager
    def collect(self, reset: bool = True):
        """Enable collection for a ``with`` block; restores the prior state."""
        was_enabled = self.enabled
        self.enable(reset=reset)
        try:
            yield self
        finally:
            self.enabled = was_enabled

    # -- recording ----------------------------------------------------------------
    @contextmanager
    def timed(self, kernel: str, flops: float = 0.0):
        """Time a kernel invocation and credit it with ``flops`` operations.

        When disabled this is a no-op beyond the generator machinery; the
        instrumented kernels guard even that with ``if counters.enabled``
        so the disabled cost is one attribute check.
        """
        if not self.enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            self.record(kernel, perf_counter() - start, flops)

    def record(self, kernel: str, seconds: float, flops: float = 0.0) -> None:
        """Credit one call directly (for callers that time themselves)."""
        stats = self._stats.get(kernel)
        if stats is None:
            stats = self._stats[kernel] = KernelStats()
        stats.calls += 1
        stats.seconds += seconds
        stats.flops += flops

    # -- output -------------------------------------------------------------------
    def stats(self) -> Dict[str, KernelStats]:
        """Live view of the accumulated per-kernel statistics."""
        return self._stats

    def to_dict(self) -> dict:
        """JSON-serializable per-kernel ``{calls, seconds, flops, flops/s}``."""
        return {name: stats.to_dict() for name, stats in sorted(self._stats.items())}

    def summary(self, title: str = "kernel counters") -> str:
        """Printable per-kernel table, pipeline-task order first."""
        order = [
            "doppler",
            "easy_weight",
            "hard_weight",
            "easy_beamform",
            "hard_beamform",
            "pulse_compression",
            "cfar",
        ]
        names = [k for k in order if k in self._stats]
        names += [k for k in sorted(self._stats) if k not in order]
        lines = [
            f"--- {title}",
            f"{'kernel':<20} {'calls':>7} {'seconds':>10} {'Mflops/s':>10}",
        ]
        total = KernelStats()
        for name in names:
            stats = self._stats[name]
            total.calls += stats.calls
            total.seconds += stats.seconds
            total.flops += stats.flops
            lines.append(
                f"{name:<20} {stats.calls:>7d} {stats.seconds:>10.4f}"
                f" {stats.flops_per_second / 1e6:>10.1f}"
            )
        lines.append(
            f"{'total':<20} {total.calls:>7d} {total.seconds:>10.4f}"
            f" {total.flops_per_second / 1e6:>10.1f}"
        )
        return "\n".join(lines)


#: The module singleton the instrumented STAP kernels report into.
kernel_counters = KernelCounters()


def achieved_vs_table1(
    counters: Optional[KernelCounters] = None,
    num_cpis: int = 1,
) -> dict:
    """Per-kernel achieved flops/s against the paper's Table 1 counts.

    Returns ``{kernel: {seconds, flops, flops_per_second, paper_flops_per_cpi,
    paper_fraction}}`` where ``paper_fraction`` is the measured modeled
    flops divided by ``num_cpis`` times the Table 1 entry — 1.0 means the
    run performed exactly the paper's per-CPI operation count for that
    kernel (partial cubes and cold-start CPIs push it below 1).
    """
    from repro.stap.flops import PAPER_TABLE1

    counters = kernel_counters if counters is None else counters
    comparison = {}
    for name, stats in counters.stats().items():
        paper = PAPER_TABLE1.get(name)
        entry = stats.to_dict()
        entry["paper_flops_per_cpi"] = paper
        entry["paper_fraction"] = (
            stats.flops / (paper * num_cpis) if paper and num_cpis else None
        )
        comparison[name] = entry
    return comparison
