"""Simulation-speed counters and the report that aggregates them."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass
class ExecCounters:
    """Process-wide counters for the batch executor and result cache.

    Plain integer counters, always on (like the simulator's own
    counters); :mod:`repro.exec` maintains them as work flows through the
    executor and cache so tests and reports can verify, for example, that
    a repeated sweep performed *zero* new simulations.  Parallel workers
    report through their outcomes, so the parent's counters stay coherent
    regardless of ``jobs``.

    Mutation goes through :meth:`inc`, which serializes under a lock:
    the executor's ``note()`` runs from completion callbacks, and those
    may fire on helper threads, where a bare ``+=`` read-modify-write can
    drop increments.  Reads stay plain attribute access (a torn read of
    an int is impossible under CPython).
    """

    #: Points handed to :func:`repro.exec.run_points` (cached or not).
    points_submitted: int = 0
    #: Full pipeline simulations actually executed (cache misses).
    simulations_run: int = 0
    #: Points whose simulation raised (captured, not propagated).
    point_errors: int = 0
    #: Progress callbacks that raised (contained, not propagated).
    progress_errors: int = 0
    #: Result-cache hits served from the in-process LRU layer.
    cache_hits_memory: int = 0
    #: Result-cache hits served from the on-disk store.
    cache_hits_disk: int = 0
    #: Result-cache lookups that found nothing.
    cache_misses: int = 0
    #: Results written into the cache.
    cache_stores: int = 0
    #: On-disk entries that existed but failed to load (treated as misses).
    cache_corrupt: int = 0
    #: ``run_measured`` probe phases answered from the result cache.
    probe_cache_hits: int = 0

    def __post_init__(self):
        # Not a dataclass field: locks must stay out of snapshots/compares.
        self._lock = threading.Lock()
        self._names = tuple(f.name for f in fields(self))

    def inc(self, name: str, amount: int = 1) -> None:
        """Thread-safely add ``amount`` to the named counter."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        """Copy of the current values (for before/after deltas)."""
        with self._lock:
            return {name: getattr(self, name) for name in self._names}

    def delta_since(self, before: dict) -> dict:
        """Per-counter increase since a :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - before.get(key, 0) for key in now}

    def reset(self) -> None:
        with self._lock:
            for name in self._names:
                setattr(self, name, 0)


#: The module singleton the executor and cache increment.
exec_counters = ExecCounters()


#: Snapshot keys that identify the run rather than count it; they ride
#: along in snapshots but are carried through (not differenced) by
#: :meth:`PerfReport.from_snapshots`.
_META_KEYS = ("backend", "plan_build_seconds")


def snapshot_counters(sim, world=None) -> dict:
    """Raw counter values of a simulator (and optionally its MPI world).

    Taken before and after a run, the difference is what the run cost.
    Besides counters, the snapshot records which simulator backend ran
    and how long its :class:`~repro.des.backends.plan.EnginePlan` took to
    build (zero for the reference engine, which lowers nothing).
    """
    counters = {
        "events_processed": sim.events_processed,
        "match_probes": 0,
        "sends_posted": 0,
        "recvs_posted": 0,
        "wildcard_recvs": 0,
        "wildcard_hits": 0,
        "network_messages": 0,
        "network_bytes": 0,
        "backend": getattr(sim, "backend", "python"),
        "plan_build_seconds": 0.0,
    }
    if world is not None:
        plan = getattr(world, "engine_plan", None)
        counters.update(
            match_probes=world.match_probes,
            sends_posted=world.sends_posted,
            recvs_posted=world.recvs_posted,
            wildcard_recvs=world.wildcard_recvs,
            wildcard_hits=world.wildcard_hits,
            network_messages=world.network.messages_sent,
            network_bytes=world.network.bytes_sent,
            backend=getattr(world, "backend", counters["backend"]),
            plan_build_seconds=plan.build_seconds if plan is not None else 0.0,
        )
    return counters


@dataclass
class PerfReport:
    """Wall-clock cost of one simulation run.

    ``wall_seconds`` is host time; ``sim_seconds`` is the virtual makespan.
    The derived properties are the quantities tracked across PRs:
    events/second (engine throughput), probes/message (matching
    efficiency — the indexed queues aim at ~1), and wall-seconds per
    simulated CPI (the end-to-end figure of merit).
    """

    wall_seconds: float
    sim_seconds: float
    num_cpis: int
    events_processed: int
    match_probes: int = 0
    sends_posted: int = 0
    recvs_posted: int = 0
    wildcard_recvs: int = 0
    wildcard_hits: int = 0
    network_messages: int = 0
    network_bytes: int = 0
    #: Which simulator core ran (``python`` / ``lowered`` / ``compiled``).
    backend: str = ""
    #: Wall seconds spent building the backend's :class:`EnginePlan`
    #: tables before the run (zero for the reference engine).
    plan_build_seconds: float = 0.0
    #: Optional label (case name, mode) carried into serialized output.
    label: str = ""
    extras: dict = field(default_factory=dict)

    # -- derived ----------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Engine throughput in events per wall-clock second."""
        return self.events_processed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def probes_per_message(self) -> float:
        """Queue entries examined per point-to-point operation posted."""
        ops = self.sends_posted + self.recvs_posted
        return self.match_probes / ops if ops else 0.0

    @property
    def wall_seconds_per_cpi(self) -> float:
        """Host seconds spent per simulated CPI."""
        return self.wall_seconds / self.num_cpis if self.num_cpis else 0.0

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_snapshots(
        cls,
        before: dict,
        after: dict,
        wall_seconds: float,
        sim_seconds: float,
        num_cpis: int,
        label: str = "",
    ) -> "PerfReport":
        """Build a report from :func:`snapshot_counters` pairs."""
        delta = {
            key: after[key] - before[key]
            for key in before
            if key not in _META_KEYS
        }
        return cls(
            wall_seconds=wall_seconds,
            sim_seconds=sim_seconds,
            num_cpis=num_cpis,
            label=label,
            backend=str(after.get("backend", before.get("backend", ""))),
            plan_build_seconds=float(
                after.get(
                    "plan_build_seconds", before.get("plan_build_seconds", 0.0)
                )
            ),
            **delta,
        )

    #: ``to_dict`` keys computed from other fields; ``from_dict`` drops
    #: them rather than storing stale copies.
    _DERIVED_KEYS = ("events_per_second", "probes_per_message", "wall_seconds_per_cpi")

    @classmethod
    def from_dict(cls, doc: dict) -> "PerfReport":
        """Rebuild a report from :meth:`to_dict` output (round-trip safe).

        Derived rates are recomputed, not read back; keys that are not
        report fields land in ``extras`` so foreign annotations survive
        the round trip (``from_dict(r.to_dict()).to_dict() == r.to_dict()``
        holds whenever extras don't shadow field names).
        """
        doc = dict(doc)
        for key in cls._DERIVED_KEYS:
            doc.pop(key, None)
        known = {f.name for f in fields(cls)} - {"extras"}
        kwargs = {key: doc.pop(key) for key in list(doc) if key in known}
        return cls(extras=doc, **kwargs)

    # -- output -----------------------------------------------------------------
    def counters_dict(self) -> dict:
        """Raw registered counters only (no derived rates, no label).

        Every registered counter is present even when zero, so programmatic
        before/after diffs see the full key set — a counter that silently
        vanishes from the output reads as "unchanged" when it actually
        dropped to zero.
        """
        return {
            "events_processed": self.events_processed,
            "match_probes": self.match_probes,
            "sends_posted": self.sends_posted,
            "recvs_posted": self.recvs_posted,
            "wildcard_recvs": self.wildcard_recvs,
            "wildcard_hits": self.wildcard_hits,
            "network_messages": self.network_messages,
            "network_bytes": self.network_bytes,
        }

    def to_dict(self) -> dict:
        """JSON-serializable view (raw counters plus derived rates)."""
        return {
            "label": self.label,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "num_cpis": self.num_cpis,
            "events_processed": self.events_processed,
            "match_probes": self.match_probes,
            "sends_posted": self.sends_posted,
            "recvs_posted": self.recvs_posted,
            "wildcard_recvs": self.wildcard_recvs,
            "wildcard_hits": self.wildcard_hits,
            "network_messages": self.network_messages,
            "network_bytes": self.network_bytes,
            "backend": self.backend,
            "plan_build_seconds": self.plan_build_seconds,
            "events_per_second": self.events_per_second,
            "probes_per_message": self.probes_per_message,
            "wall_seconds_per_cpi": self.wall_seconds_per_cpi,
            **self.extras,
        }

    def summary(self) -> str:
        """Human-readable block for CLI output."""
        lines = [
            f"--- simulation perf {('(' + self.label + ')') if self.label else ''}".rstrip(),
            f"wall time          {self.wall_seconds:10.3f} s"
            f"   ({self.wall_seconds_per_cpi * 1e3:8.1f} ms / simulated CPI)",
            f"virtual makespan   {self.sim_seconds:10.3f} s",
            f"events processed   {self.events_processed:10d}"
            f"   ({self.events_per_second:10.0f} events/s)",
        ]
        if self.backend:
            lines.append(
                f"engine backend     {self.backend:>10s}"
                f"   ({self.plan_build_seconds * 1e3:10.1f} ms plan build)"
            )
        # Zero-valued counters are printed, not omitted: a silent omission
        # makes a before/after diff read as "unchanged" when the counter
        # actually collapsed to zero.
        ops = self.sends_posted + self.recvs_posted
        lines.append(
            f"p2p ops posted     {ops:10d}"
            f"   ({self.probes_per_message:10.2f} match probes/op)"
        )
        lines.append(
            f"network messages   {self.network_messages:10d}"
            f"   ({self.network_bytes / 2**20:10.1f} MiB on the wire)"
        )
        return "\n".join(lines)
