"""cProfile harness for simulation runs."""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Optional


def profile_run(
    fn: Callable[..., Any],
    *args,
    sort: str = "cumulative",
    limit: int = 25,
    **kwargs,
) -> tuple[Any, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, stats_text)`` where ``stats_text`` is the top
    ``limit`` entries sorted by ``sort`` ("cumulative", "tottime", ...).
    Intended use::

        result, stats = profile_run(pipeline.run)
        print(stats)

    The profiler multiplies wall time several-fold; use the
    :class:`~repro.perf.counters.PerfReport` path for honest timings and
    this one to find out *where* the time goes.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    return result, buffer.getvalue()
