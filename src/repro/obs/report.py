"""The bottleneck report: the paper's Table-style breakdown from a trace.

Rebuilds per-task ``T_recv`` / ``T_comp`` / ``T_send`` from the recorded
span tree — using the exact timestamps and the exact steady-state
aggregation the pipeline's own metrics use, so the report's numbers match
``PipelineMetrics`` to the last bit — then layers on what only the trace
knows: which stage limits throughput and how busy it is, which tasks are
starved, where the interconnect queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional

from repro.core.assignment import TASK_NAMES
from repro.core.metrics import PipelineMetrics, TaskMetrics, TaskTiming, steady_state_slice
from repro.obs.spans import LinkStats, TraceSink
from repro.scheduling.bottleneck import BottleneckReport, analyze_bottleneck


@dataclass
class EdgeTraffic:
    """Aggregate message traffic of one pipeline edge."""

    edge: str
    messages: int = 0
    nbytes: int = 0
    #: Mean post-to-delivery time per message (seconds).
    mean_seconds: float = 0.0


@dataclass
class PipelineObsReport:
    """Everything the bottleneck report knows about one traced run."""

    #: Table 7-style per-task breakdown, rebuilt from spans.
    tasks: Dict[str, TaskMetrics]
    metrics: PipelineMetrics
    diagnosis: BottleneckReport
    #: Work/(pipeline period) of the throughput-limiting stage.
    bottleneck_utilization: float
    edges: List[EdgeTraffic] = field(default_factory=list)
    #: Busiest interconnect resources, by busy time.
    hot_links: List[LinkStats] = field(default_factory=list)
    label: str = ""
    num_cpis: int = 0
    makespan: float = 0.0
    contention: str = ""

    def text(self) -> str:
        """The plain-text report."""
        lines = [self.metrics.table(f"=== bottleneck report: {self.label} ===")]
        lines.append("")
        lines.append(self.diagnosis.summary())
        lines.append(
            f"bottleneck stage utilization: "
            f"{100 * self.bottleneck_utilization:.1f}% of the pipeline period"
        )
        if self.edges:
            lines.append("")
            lines.append(f"{'edge':<22} {'msgs':>7} {'MiB':>9} {'mean ms':>9}")
            for e in self.edges:
                lines.append(
                    f"{e.edge:<22} {e.messages:>7} {e.nbytes / 2**20:>9.2f} "
                    f"{e.mean_seconds * 1e3:>9.3f}"
                )
        if self.hot_links:
            lines.append("")
            lines.append(
                f"hottest interconnect resources ({self.contention} contention):"
            )
            lines.append(
                f"{'resource':<22} {'msgs':>7} {'busy %':>7} {'wait ms':>9}"
            )
            for s in self.hot_links:
                busy_pct = 100 * s.utilization(self.makespan)
                lines.append(
                    f"{s.name:<22} {s.messages:>7} {busy_pct:>6.1f}% "
                    f"{s.wait_seconds * 1e3:>9.2f}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable view of the report."""
        return {
            "label": self.label,
            "num_cpis": self.num_cpis,
            "makespan_s": self.makespan,
            "contention": self.contention,
            "tasks": {
                name: {
                    "nodes": m.num_nodes,
                    "recv": m.recv,
                    "comp": m.comp,
                    "send": m.send,
                    "total": m.total,
                }
                for name, m in self.tasks.items()
            },
            "throughput_cpis_per_s": self.metrics.measured_throughput,
            "latency_s": self.metrics.measured_latency,
            "bottleneck": {
                "task": self.diagnosis.bottleneck_task,
                "work_seconds": self.diagnosis.bottleneck_seconds,
                "utilization": self.bottleneck_utilization,
                "starved_tasks": list(self.diagnosis.starved_tasks),
            },
            "edges": [
                {
                    "edge": e.edge,
                    "messages": e.messages,
                    "bytes": e.nbytes,
                    "mean_seconds": e.mean_seconds,
                }
                for e in self.edges
            ],
            "hot_links": [
                {
                    "name": s.name,
                    "messages": s.messages,
                    "bytes": s.nbytes,
                    "busy_seconds": s.busy_seconds,
                    "wait_seconds": s.wait_seconds,
                    "wait_histogram": dict(s.wait_histogram),
                }
                for s in self.hot_links
            ],
        }


def _timings_from_spans(sink: TraceSink) -> Dict[str, List[TaskTiming]]:
    """Reconstruct per-task :class:`TaskTiming` rows from the span tree."""
    # (task, local_rank, cpi) -> {phase: span}
    phases: Dict[tuple, dict] = {}
    for span in sink.spans:
        if span.phase in ("recv", "comp", "send") and span.cpi >= 0:
            phases.setdefault((span.task, span.local_rank, span.cpi), {})[
                span.phase
            ] = span
    timings: Dict[str, List[TaskTiming]] = {}
    for (task, local_rank, cpi), by_phase in phases.items():
        if len(by_phase) != 3:
            continue  # incomplete iteration (dropped spans)
        timings.setdefault(task, []).append(
            TaskTiming(
                cpi_index=cpi,
                rank=local_rank,
                t0=by_phase["recv"].start,
                t1=by_phase["comp"].start,
                t2=by_phase["send"].start,
                t3=by_phase["send"].end,
            )
        )
    return timings


def _metrics_from_spans(
    sink: TraceSink, num_cpis: int
) -> tuple[Dict[str, TaskMetrics], PipelineMetrics]:
    """Per-task metrics and end-to-end measurements, from spans alone."""
    timings = _timings_from_spans(sink)
    rank_counts = {
        task: len({t.rank for t in rows}) for task, rows in timings.items()
    }
    task_metrics = {
        task: TaskMetrics.aggregate(task, rank_counts[task], rows, num_cpis)
        for task, rows in timings.items()
    }

    lo, hi = steady_state_slice(num_cpis)
    # Input availability: earliest Doppler iteration start per CPI; report
    # completion: latest CFAR iteration end per CPI — the same event pair
    # the collector stamps.
    starts: Dict[int, float] = {}
    dones: Dict[int, float] = {}
    for span in sink.spans:
        if span.phase != "iteration":
            continue
        if span.task == "doppler":
            if span.cpi not in starts or span.start < starts[span.cpi]:
                starts[span.cpi] = span.start
        elif span.task == "cfar":
            if span.cpi not in dones or span.end > dones[span.cpi]:
                dones[span.cpi] = span.end
    done = [dones[i] for i in range(lo, hi) if i in dones]
    start = [starts[i] for i in range(lo, hi) if i in starts]
    if len(done) >= 2:
        throughput = (len(done) - 1) / (done[-1] - done[0])
    else:
        throughput = float("nan")
    latency = mean(d - s for d, s in zip(done, start)) if done else float("nan")
    return task_metrics, PipelineMetrics(
        tasks=task_metrics,
        measured_throughput=throughput,
        measured_latency=latency,
    )


def _edge_traffic(sink: TraceSink) -> List[EdgeTraffic]:
    from repro.core.redistribution import edge_of_tag

    by_edge: Dict[str, EdgeTraffic] = {}
    sums: Dict[str, float] = {}
    for record in sink.messages:
        edge, _cpi = edge_of_tag(record.tag)
        if edge is None:
            edge = "(other)"
        traffic = by_edge.get(edge)
        if traffic is None:
            traffic = by_edge[edge] = EdgeTraffic(edge)
            sums[edge] = 0.0
        traffic.messages += 1
        traffic.nbytes += record.nbytes
        lifetime = record.t_complete - record.t_send_post
        if lifetime == lifetime:  # not NaN
            sums[edge] += lifetime
    for edge, traffic in by_edge.items():
        if traffic.messages:
            traffic.mean_seconds = sums[edge] / traffic.messages
    order = {name: i for i, name in enumerate(TASK_NAMES)}
    return sorted(by_edge.values(), key=lambda t: (t.edge not in order, t.edge))


def build_report(
    sink: TraceSink,
    num_cpis: Optional[int] = None,
    top_links: int = 8,
) -> PipelineObsReport:
    """Build the bottleneck report from a traced run's sink."""
    num_cpis = num_cpis if num_cpis is not None else int(sink.meta.get("num_cpis", 0))
    task_metrics, metrics = _metrics_from_spans(sink, num_cpis)
    diagnosis = analyze_bottleneck(metrics)
    period = (
        1.0 / metrics.measured_throughput
        if metrics.measured_throughput and metrics.measured_throughput > 0
        else float("nan")
    )
    utilization = (
        diagnosis.bottleneck_seconds / period if period == period else float("nan")
    )
    hot = sorted(
        sink.link_stats.values(), key=lambda s: s.busy_seconds, reverse=True
    )[:top_links]
    return PipelineObsReport(
        tasks=task_metrics,
        metrics=metrics,
        diagnosis=diagnosis,
        bottleneck_utilization=utilization,
        edges=_edge_traffic(sink),
        hot_links=hot,
        label=str(sink.meta.get("label", "")),
        num_cpis=num_cpis,
        makespan=float(sink.meta.get("makespan", 0.0) or 0.0),
        contention=str(sink.meta.get("contention", "")),
    )
