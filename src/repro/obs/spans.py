"""Spans, message records, link statistics, and the sink that holds them.

The observability layer is *passive*: nothing here schedules events,
advances the clock, or touches the simulation state.  Producers (the task
loop, the MPI matcher, the network) call the ``record_*`` methods with
timestamps they already had, so attaching a sink can never change a
simulated timestamp — the bit-identical guarantee the golden-fastpath
tests enforce.

Everything is keyed on the paper's measurement vocabulary:

* a :class:`Span` is one interval of simulated time on one rank — an
  iteration of the Figure 10 loop, or one of its recv/comp/send phases;
* a :class:`MessageRecord` is one point-to-point message's lifecycle
  (post -> match -> complete), the raw material for Tables 2-6;
* :class:`LinkStats` accumulates per-resource utilization and
  contention-wait on the interconnect (Section 7.2's effect).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Phases of one Figure 10 iteration, in loop order.
ITERATION_PHASES = ("recv", "comp", "send")


@dataclass
class Span:
    """One named interval of simulated time.

    ``parent_id`` links phase spans to their iteration span, so a CPI's
    critical path can be walked: group spans by ``cpi``, follow the
    receive edges (from :class:`MessageRecord`) backwards from the CFAR
    iteration to the Doppler iteration.
    """

    span_id: int
    parent_id: Optional[int]
    #: Task name for pipeline spans; free-form label otherwise.
    task: str
    #: World rank (-1 for spans not bound to a rank).
    rank: int
    #: Local rank within the task (-1 when not applicable).
    local_rank: int
    #: CPI index (-1 when not bound to a pipeline iteration).
    cpi: int
    #: "iteration", "recv", "comp", "send", or a caller-chosen phase.
    phase: str
    start: float
    end: float
    #: False for spans that never sit on the latency path of equation (2)
    #: — the weight tasks, whose products feed a *later* CPI (TD(1,3)).
    latency_path: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class MessageRecord:
    """Lifecycle of one point-to-point message (world-rank endpoints).

    ``t_send_post`` is stamped when the send is posted, ``t_recv_post``
    when the matching receive was posted, ``t_match`` when the pair met in
    the matcher, and ``t_complete`` at payload delivery.  A NaN
    ``t_complete`` means the message was still in flight when the run
    ended (a drained run leaves none).
    """

    src: int
    dst: int
    tag: int
    nbytes: int
    t_send_post: float
    t_recv_post: float = math.nan
    t_match: float = math.nan
    t_complete: float = math.nan

    @property
    def match_delay(self) -> float:
        """Post-to-match time: how long the earlier side waited."""
        return self.t_match - min(self.t_send_post, self.t_recv_post)

    @property
    def transfer_time(self) -> float:
        """Match-to-delivery time (wire + contention)."""
        return self.t_complete - self.t_match


def wait_bucket(wait_seconds: float) -> int:
    """Histogram bucket for a contention wait: -1 for no wait, else the
    power-of-two microsecond bucket ``floor(log2(wait_us)) + 1``."""
    micros = int(wait_seconds * 1e6)
    if micros <= 0:
        return -1
    return micros.bit_length()


def bucket_bounds(bucket: int) -> tuple[float, float]:
    """(lo, hi) wait range of a histogram bucket, in microseconds."""
    if bucket <= -1:
        return (0.0, 1.0)
    return (float(2 ** (bucket - 1)), float(2**bucket))


@dataclass
class LinkStats:
    """Utilization and contention-wait accumulator for one network resource
    (an injection/ejection port, or a mesh link under LINKS contention)."""

    name: str
    messages: int = 0
    nbytes: int = 0
    #: Total simulated seconds the resource was held by transfers.
    busy_seconds: float = 0.0
    #: Total simulated seconds transfers queued waiting for it.
    wait_seconds: float = 0.0
    #: Contention-wait histogram: :func:`wait_bucket` -> count.
    wait_histogram: Dict[int, int] = field(default_factory=dict)

    def record(self, busy: float, wait: float, nbytes: int) -> None:
        self.messages += 1
        self.nbytes += nbytes
        self.busy_seconds += busy
        self.wait_seconds += wait
        bucket = wait_bucket(wait)
        self.wait_histogram[bucket] = self.wait_histogram.get(bucket, 0) + 1

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` seconds the resource was busy."""
        return self.busy_seconds / horizon if horizon > 0 else 0.0


class _SpanContext:
    """Context manager returned by :meth:`TraceSink.span`."""

    __slots__ = ("_sink", "span")

    def __init__(self, sink: "TraceSink", span: Span):
        self._sink = sink
        self.span = span

    def __enter__(self) -> Span:
        self.span.start = self._sink.now()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.end = self._sink.now()
        self._sink._append_span(self.span)


class TraceSink:
    """Run-wide collector for spans, message records, and link statistics.

    One sink observes one simulation run (its clock is bound to the run's
    :class:`~repro.des.Simulator` by :meth:`bind`).  Buffers are bounded
    when ``max_spans`` / ``max_messages`` / ``max_link_intervals`` are
    given: overflow is counted in the ``dropped_*`` attributes instead of
    growing without limit, mirroring the DES tracer's bounded mode.
    """

    def __init__(
        self,
        max_spans: Optional[int] = None,
        max_messages: Optional[int] = None,
        max_link_intervals: Optional[int] = None,
    ):
        self.spans: List[Span] = []
        self.messages: List[MessageRecord] = []
        #: Resource name -> accumulated stats.
        self.link_stats: Dict[str, LinkStats] = {}
        #: Resource name -> [(start, end, nbytes), ...] busy intervals
        #: (the link tracks of the exported timeline).
        self.link_intervals: Dict[str, List[tuple]] = {}
        self.max_spans = max_spans
        self.max_messages = max_messages
        self.max_link_intervals = max_link_intervals
        self.dropped_spans = 0
        self.dropped_messages = 0
        self.dropped_link_intervals = 0
        self._link_interval_count = 0
        #: Run metadata filled by the pipeline: label, num_cpis, rank
        #: names, contention mode, makespan.
        self.meta: Dict[str, object] = {}
        self._ids = itertools.count()
        self._sim = None

    # -- clock ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Attach the sink to a simulator's virtual clock."""
        self._sim = sim

    def now(self) -> float:
        """Current simulated time (0.0 before :meth:`bind`)."""
        return self._sim.now if self._sim is not None else 0.0

    # -- spans ------------------------------------------------------------------
    def _append_span(self, span: Span) -> bool:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return False
        self.spans.append(span)
        return True

    def add_span(
        self,
        task: str,
        cpi: int,
        phase: str,
        start: float,
        end: float,
        rank: int = -1,
        local_rank: int = -1,
        parent_id: Optional[int] = None,
        latency_path: bool = True,
    ) -> Span:
        """Record a completed interval with explicit timestamps."""
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            task=task,
            rank=rank,
            local_rank=local_rank,
            cpi=cpi,
            phase=phase,
            start=start,
            end=end,
            latency_path=latency_path,
        )
        self._append_span(span)
        return span

    def span(
        self,
        task: str,
        cpi: int = -1,
        phase: str = "",
        rank: int = -1,
        local_rank: int = -1,
        parent: Optional[Span] = None,
        latency_path: bool = True,
    ) -> _SpanContext:
        """Context manager stamping start/end from the bound clock::

            with sink.span("doppler", cpi=3, phase="comp", rank=0):
                ... simulated work ...
        """
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            task=task,
            rank=rank,
            local_rank=local_rank,
            cpi=cpi,
            phase=phase,
            start=0.0,
            end=0.0,
            latency_path=latency_path,
        )
        return _SpanContext(self, span)

    def record_iteration(
        self,
        task: str,
        local_rank: int,
        world_rank: int,
        cpi: int,
        t0: float,
        t1: float,
        t2: float,
        t3: float,
        latency_path: bool = True,
    ) -> None:
        """One Figure 10 iteration: a parent span plus its recv/comp/send
        children at the exact ``t0..t3`` boundaries the metrics use."""
        parent = self.add_span(
            task, cpi, "iteration", t0, t3,
            rank=world_rank, local_rank=local_rank, latency_path=latency_path,
        )
        for phase, lo, hi in (("recv", t0, t1), ("comp", t1, t2), ("send", t2, t3)):
            self.add_span(
                task, cpi, phase, lo, hi,
                rank=world_rank, local_rank=local_rank,
                parent_id=parent.span_id, latency_path=latency_path,
            )

    # -- messages ---------------------------------------------------------------
    def new_message(
        self, src: int, dst: int, tag: int, nbytes: int, t_send_post: float
    ) -> Optional[MessageRecord]:
        """Open a message record at send-post time; returns None when the
        buffer is full (the producer then skips per-message stamping)."""
        if self.max_messages is not None and len(self.messages) >= self.max_messages:
            self.dropped_messages += 1
            return None
        record = MessageRecord(
            src=src, dst=dst, tag=tag, nbytes=nbytes, t_send_post=t_send_post
        )
        self.messages.append(record)
        return record

    # -- links ------------------------------------------------------------------
    def record_link_hold(
        self, name: str, start: float, end: float, nbytes: int, wait: float
    ) -> None:
        """One transfer's occupancy of one network resource."""
        stats = self.link_stats.get(name)
        if stats is None:
            stats = self.link_stats[name] = LinkStats(name)
        stats.record(end - start, wait, nbytes)
        if (
            self.max_link_intervals is not None
            and self._link_interval_count >= self.max_link_intervals
        ):
            self.dropped_link_intervals += 1
            return
        self._link_interval_count += 1
        self.link_intervals.setdefault(name, []).append((start, end, nbytes))

    # -- queries ----------------------------------------------------------------
    def spans_of(
        self,
        task: Optional[str] = None,
        cpi: Optional[int] = None,
        phase: Optional[str] = None,
    ) -> List[Span]:
        """Spans filtered by any combination of task / cpi / phase."""
        return [
            s
            for s in self.spans
            if (task is None or s.task == task)
            and (cpi is None or s.cpi == cpi)
            and (phase is None or s.phase == phase)
        ]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of a span, in recorded order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)
