"""repro.obs — end-to-end observability for pipeline simulations.

The paper's entire evaluation is a timing decomposition: per-task
``T_recv`` / ``T_comp`` / ``T_send`` per CPI (Tables 2-10), throughput and
latency from equations (1)-(3).  This package makes those quantities
first-class at run time instead of aggregate-only:

* :class:`TraceSink` collects :class:`Span` trees (one iteration span per
  task rank per CPI with recv/comp/send children), per-message
  :class:`MessageRecord` lifecycles from the MPI matcher, and per-link
  :class:`LinkStats` utilization/contention-wait from the network;
* :func:`chrome_trace` / :func:`write_chrome_trace` export a
  Perfetto-loadable timeline (one track per rank, one per network
  resource);
* :func:`build_report` produces the Table-style bottleneck report.

Everything is **default-off and passive**: a run without a sink takes one
``is None`` check per iteration/message, and an attached sink only reads
timestamps the simulation already produced — modeled times are
bit-identical either way (enforced by the golden-fastpath tests).

Enable via ``STAPPipeline(..., trace=True)`` or the CLI's
``repro-stap case --trace-out timeline.json --report``.
"""

from repro.obs.spans import (
    ITERATION_PHASES,
    LinkStats,
    MessageRecord,
    Span,
    TraceSink,
    bucket_bounds,
    wait_bucket,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.report import EdgeTraffic, PipelineObsReport, build_report

__all__ = [
    "ITERATION_PHASES",
    "Span",
    "TraceSink",
    "MessageRecord",
    "LinkStats",
    "wait_bucket",
    "bucket_bounds",
    "chrome_trace",
    "write_chrome_trace",
    "build_report",
    "PipelineObsReport",
    "EdgeTraffic",
]
