"""repro.obs — end-to-end observability for pipeline simulations.

The paper's entire evaluation is a timing decomposition: per-task
``T_recv`` / ``T_comp`` / ``T_send`` per CPI (Tables 2-10), throughput and
latency from equations (1)-(3).  This package makes those quantities
first-class at run time instead of aggregate-only:

* :class:`TraceSink` collects :class:`Span` trees (one iteration span per
  task rank per CPI with recv/comp/send children), per-message
  :class:`MessageRecord` lifecycles from the MPI matcher, and per-link
  :class:`LinkStats` utilization/contention-wait from the network;
* :func:`chrome_trace` / :func:`write_chrome_trace` export a
  Perfetto-loadable timeline (one track per rank, one per network
  resource);
* :func:`build_report` produces the Table-style bottleneck report.

Everything is **default-off and passive**: a run without a sink takes one
``is None`` check per iteration/message, and an attached sink only reads
timestamps the simulation already produced — modeled times are
bit-identical either way (enforced by the golden-fastpath tests).

Enable via ``STAPPipeline(..., trace=True)`` or the CLI's
``repro-stap case --trace-out timeline.json --report``.

Campaign-scale telemetry lives alongside the single-run trace layer:

* :mod:`repro.obs.metrics` — the process-wide :data:`metrics_registry`
  of :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  with snapshot/merge semantics across executor worker processes,
  JSON/Prometheus export (``--metrics-out`` / ``--metrics-format``);
* :mod:`repro.obs.dashboard` — :class:`SweepDashboard`, a live terminal
  progress callback for sweeps (points/s, cache hit rate, errors, ETA,
  per-stage latency histograms);
* :mod:`repro.obs.progress` — store-backed campaign progress: the same
  dashboard figures (pts/s, completion, ETA, stage histograms) read from
  a :class:`~repro.exec.campaign.CampaignStore` directory on disk, so
  ``repro-stap campaign status`` reports on a campaign this process did
  not start;
* :mod:`repro.obs.regress` — the benchmark/metrics regression gate
  (``python -m repro.obs.regress baseline.json current.json``).
"""

from repro.obs.spans import (
    ITERATION_PHASES,
    LinkStats,
    MessageRecord,
    Span,
    TraceSink,
    bucket_bounds,
    wait_bucket,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    metrics_registry,
    to_prometheus,
    write_snapshot,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.report import EdgeTraffic, PipelineObsReport, build_report
from repro.obs.dashboard import SweepDashboard
from repro.obs.progress import campaign_status, read_campaign_progress

_REGRESS_EXPORTS = ("RegressionReport", "compare", "compare_files")


def __getattr__(name):
    # Lazy: ``python -m repro.obs.regress`` first imports this package, and
    # an eager submodule import here would trigger runpy's found-in-
    # sys.modules RuntimeWarning on every CLI gate invocation.
    if name in _REGRESS_EXPORTS:
        from repro.obs import regress

        return getattr(regress, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ITERATION_PHASES",
    "Span",
    "TraceSink",
    "MessageRecord",
    "LinkStats",
    "wait_bucket",
    "bucket_bounds",
    "chrome_trace",
    "write_chrome_trace",
    "build_report",
    "PipelineObsReport",
    "EdgeTraffic",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "metrics_registry",
    "to_prometheus",
    "write_snapshot",
    "SweepDashboard",
    "campaign_status",
    "read_campaign_progress",
    "RegressionReport",
    "compare",
    "compare_files",
]
