"""Timeline exporters: Chrome trace-event JSON, loadable in Perfetto.

:func:`chrome_trace` renders a :class:`~repro.obs.spans.TraceSink` as the
Chrome trace-event format (the JSON flavour https://ui.perfetto.dev opens
directly):

* **pid 1 — "ranks"**: one track (tid = world rank) per simulated rank,
  with nested complete ("X") events for every iteration and its
  recv/comp/send phases;
* **pid 2 — "network"**: one track per interconnect resource (injection /
  ejection port, or mesh link under LINKS contention), with one busy
  interval per transfer that held it;
* **pid 3 — "messages"**: async ("b"/"e") events per point-to-point
  message on the destination rank's track, named by pipeline edge, from
  send-post to delivery.

Timestamps are microseconds of simulated time; events are sorted by
``(ts, -dur)`` so every track is monotone and parents precede their
same-timestamp children (the nesting Perfetto's stack view needs).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional

from repro.obs.spans import TraceSink

#: Process ids of the exported track groups.
PID_RANKS = 1
PID_NETWORK = 2
PID_MESSAGES = 3


def _us(seconds: float) -> float:
    """Simulated seconds -> trace microseconds (ns-rounded)."""
    return round(seconds * 1e6, 3)


def _edge_label(tag: int) -> str:
    """Human label for a message tag: its pipeline edge name, if any."""
    from repro.core.redistribution import edge_of_tag

    edge, cpi = edge_of_tag(tag)
    if edge is None:
        return f"tag {tag}"
    return f"{edge} cpi={cpi}"


def chrome_trace(sink: TraceSink, mesh=None) -> dict:
    """Render a sink as a Chrome trace-event JSON document (a dict).

    ``mesh`` (a :class:`~repro.machine.mesh.Mesh2D`) prettifies link track
    names with mesh coordinates when given.
    """
    events: list[dict] = []
    meta: list[dict] = []

    meta.append(_process_name(PID_RANKS, "ranks"))
    meta.append(_process_name(PID_NETWORK, "network"))
    meta.append(_process_name(PID_MESSAGES, "messages"))

    # -- rank tracks ------------------------------------------------------------
    rank_names = sink.meta.get("ranks", {})
    seen_ranks = set()
    for span in sink.spans:
        tid = span.rank if span.rank >= 0 else 0
        if tid not in seen_ranks:
            seen_ranks.add(tid)
            label = rank_names.get(tid, f"rank {tid}")
            meta.append(_thread_name(PID_RANKS, tid, f"{label} @rank{tid}"))
        events.append(
            {
                "name": f"{span.task}:{span.phase}" if span.phase else span.task,
                "cat": "task" if span.latency_path else "weight",
                "ph": "X",
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "pid": PID_RANKS,
                "tid": tid,
                "args": {
                    "cpi": span.cpi,
                    "task": span.task,
                    "local_rank": span.local_rank,
                    "latency_path": span.latency_path,
                },
            }
        )

    # -- link tracks ------------------------------------------------------------
    for tid, name in enumerate(sorted(sink.link_intervals)):
        label = _pretty_link(name, mesh)
        meta.append(_thread_name(PID_NETWORK, tid, label))
        for start, end, nbytes in sink.link_intervals[name]:
            events.append(
                {
                    "name": label,
                    "cat": "link",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": _us(end - start),
                    "pid": PID_NETWORK,
                    "tid": tid,
                    "args": {"bytes": nbytes},
                }
            )

    # -- message async events ------------------------------------------------------
    for msg_id, record in enumerate(sink.messages):
        if math.isnan(record.t_complete):
            continue  # still in flight at run end
        name = _edge_label(record.tag)
        common = {
            "cat": "message",
            "id": msg_id,
            "pid": PID_MESSAGES,
            "tid": record.dst,
        }
        events.append(
            {
                **common,
                "name": name,
                "ph": "b",
                "ts": _us(record.t_send_post),
                "args": {
                    "src": record.src,
                    "dst": record.dst,
                    "tag": record.tag,
                    "bytes": record.nbytes,
                    "t_match": _us(record.t_match),
                },
            }
        )
        events.append(
            {**common, "name": name, "ph": "e", "ts": _us(record.t_complete)}
        )
    message_ranks = {r.dst for r in sink.messages}
    for tid in sorted(message_ranks):
        label = rank_names.get(tid, f"rank {tid}")
        meta.append(_thread_name(PID_MESSAGES, tid, f"to {label}"))

    events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": sink.meta.get("label", ""),
            "num_cpis": sink.meta.get("num_cpis"),
            "contention": sink.meta.get("contention"),
            "makespan_s": sink.meta.get("makespan"),
            "dropped_spans": sink.dropped_spans,
            "dropped_messages": sink.dropped_messages,
            "dropped_link_intervals": sink.dropped_link_intervals,
        },
    }


def write_chrome_trace(sink: TraceSink, path, mesh=None) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(sink, mesh=mesh)) + "\n")
    return path


# -- helpers ------------------------------------------------------------------------
def _process_name(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}


def _thread_name(pid: int, tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _pretty_link(resource_name: str, mesh=None) -> str:
    """Annotate ``link[a->b]`` resource names with mesh coordinates."""
    if mesh is None or not resource_name.startswith("link["):
        return resource_name
    try:
        src, dst = resource_name[5:-1].split("->")
        sx, sy = mesh.coords(int(src))
        dx, dy = mesh.coords(int(dst))
    except Exception:  # pragma: no cover - unparseable name stays as-is
        return resource_name
    return f"link ({sx},{sy})->({dx},{dy})"
