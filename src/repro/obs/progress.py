"""Store-backed campaign progress: observe a sweep you did not start.

A live :class:`~repro.obs.dashboard.SweepDashboard` is fed by the
executor's in-process progress callback; a campaign running in *another*
process offers no such feed.  This module reads the same figures —
points/s, completion, cache state, per-stage comp-seconds, ETA — straight
from a :class:`~repro.exec.campaign.CampaignStore` directory, so
``repro-stap campaign status`` (or any second terminal) can render an
accurate dashboard from disk alone while the campaign is still running.

Everything here is read-only and counter-neutral: progress probes go
through the store's ``peek`` path, never perturbing the hit/miss
accounting a live run is accumulating.
"""

from __future__ import annotations

from typing import Optional


def read_campaign_progress(directory, load_results: bool = True):
    """The :class:`~repro.exec.campaign.CampaignProgress` of a store on disk.

    ``load_results`` controls whether completed results are unpickled for
    the per-stage comp-seconds breakdown (linear in completed points).
    """
    from repro.exec.campaign import CampaignStore

    return CampaignStore(directory).progress(load_results=load_results)


def campaign_status(directory, label: Optional[str] = None) -> str:
    """The full status block for a campaign directory.

    A :class:`~repro.obs.dashboard.SweepDashboard` seeded from the store
    renders it, so the figures and layout match what the campaign's own
    ``--dashboard`` shows — same status line, same per-stage sparklines —
    just derived from disk instead of a live callback.
    """
    import io

    from repro.exec.campaign import CampaignStore
    from repro.obs.dashboard import SweepDashboard

    store = CampaignStore(directory)
    progress = store.progress()
    dash = SweepDashboard(
        stream=io.StringIO(),  # status is returned, not live-rendered
        label=label or f"campaign:{progress.name}",
    )
    dash.seed_progress(progress)
    lines = [dash.status_line(), "", dash.summary()]
    if store.stale_manifest:
        lines.append(
            "note: an on-disk manifest from an older schema/version was "
            "ignored (every point reads as pending)"
        )
    return "\n".join(lines)
