"""Campaign-scale metrics: registry, instruments, snapshot/merge, export.

:mod:`repro.obs` tracing (spans, message lifecycles, link stats) covers a
*single run* in depth; this module covers *campaigns* — the thousands of
independent runs behind Monte-Carlo sweeps and mapping searches — in
aggregate.  Three instrument kinds, Prometheus-shaped:

* :class:`Counter` — a monotonically increasing total (events processed,
  cache hits, points simulated);
* :class:`Gauge` — a last-written level, merged as a high-water mark
  (peak event-heap depth);
* :class:`Histogram` — fixed, preregistered buckets (per-stage latency,
  per-point wall time), so histograms from different processes merge by
  plain bucket-wise addition.

Everything hangs off a process-wide :class:`MetricsRegistry`
(:data:`metrics_registry`), **default-off**: instruments only record when
the registry is enabled, and the instrumented layers guard their calls
with one ``enabled`` check, mirroring the trace layer's ``is None``
convention.  Recording is pull-shaped — producers flush counters the
simulation already maintained *after* a run (:func:`record_pipeline_run`)
— so enabling metrics can never change a simulated timestamp.

Cross-process story: :meth:`MetricsRegistry.snapshot` freezes the
registry into a plain-dict :class:`MetricsSnapshot`; worker processes of
:func:`repro.exec.run_points` ship one snapshot per point back on the
:class:`~repro.exec.executor.PointOutcome`, and the parent
:meth:`~MetricsRegistry.merge`\\ s them, so a ``jobs=8`` sweep ends with
the same campaign-wide registry a serial sweep would (counters sum,
gauges max, histogram buckets add — enforced by ``tests/obs/test_metrics.py``).

Exports: :func:`to_prometheus` renders the Prometheus text exposition
format; :func:`write_snapshot` writes JSON or ``prom`` files (the CLI's
``--metrics-out`` / ``--metrics-format``).
"""

from __future__ import annotations

import json
import math
import os
import threading
from bisect import bisect_left
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Tuple

#: Snapshot schema identifier (bump on incompatible layout changes).
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Default histogram buckets for simulated/host *seconds*: half-decade
#: steps from 100 µs to 100 s.  Pipeline stage times (~10 ms – 1 s) and
#: per-point wall times (~0.1 – 30 s) both land mid-range.
SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Canonical ``name{k="v",...}`` series identifier (stable JSON key)."""
    key = _label_key(labels)
    if not key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared shape of all three instrument kinds.

    ``_registry`` is the owning registry — recording is a no-op while it
    is disabled, so handles can be created once and called unconditionally
    from instrumented code (the single ``enabled`` attribute read is the
    default-off cost).
    """

    __slots__ = ("name", "labels", "help", "_registry")

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: _LabelKey, help: str):
        self._registry = registry
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def series(self) -> str:
        return series_name(self.name, dict(self.labels))


class Counter(_Instrument):
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, registry, name, labels, help):
        super().__init__(registry, name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._registry._lock:
            self.value += amount


class Gauge(_Instrument):
    """A level: set freely, merged across processes as the maximum."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, registry, name, labels, help):
        super().__init__(registry, name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self.value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if higher (high-water mark)."""
        if not self._registry.enabled:
            return
        with self._registry._lock:
            if value > self.value:
                self.value = float(value)


class Histogram(_Instrument):
    """Fixed-bucket distribution: counts per bucket plus sum and count.

    ``bounds`` are inclusive upper bounds; an implicit ``+inf`` bucket
    catches the overflow.  Fixed buckets are the whole point: two
    histograms of the same metric — from two worker processes, or two
    campaigns — merge by adding counts element-wise, with no rebinning.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, registry, name, labels, help,
                 buckets: Iterable[float] = SECONDS_BUCKETS):
        super().__init__(registry, name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} buckets must be sorted and unique")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        if math.isnan(value):
            return
        with self._registry._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsSnapshot:
    """Frozen, plain-dict view of a registry — the merge/transport unit.

    The payload is JSON-ready (what :meth:`to_dict` returns), so snapshots
    pickle cheaply across the executor's process boundary and serialize
    directly to ``--metrics-out`` files.
    """

    def __init__(self, data: dict):
        self.data = data

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        schema = data.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unknown metrics snapshot schema {schema!r} "
                f"(expected {SNAPSHOT_SCHEMA!r})"
            )
        return cls(data)

    def to_dict(self) -> dict:
        return self.data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=True)

    # -- queries ----------------------------------------------------------------
    def value(self, name: str, labels: Optional[Mapping[str, str]] = None) -> float:
        """Counter or gauge value of one series (0.0 when absent)."""
        series = series_name(name, labels)
        for kind in ("counters", "gauges"):
            entry = self.data[kind].get(series)
            if entry is not None:
                return entry["value"]
        return 0.0

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None) -> Optional[dict]:
        return self.data["histograms"].get(series_name(name, labels))

    def series(self) -> list[str]:
        """All series identifiers, sorted."""
        return sorted(
            list(self.data["counters"])
            + list(self.data["gauges"])
            + list(self.data["histograms"])
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, MetricsSnapshot) and self.data == other.data

    def __repr__(self) -> str:
        return (
            f"MetricsSnapshot({len(self.data['counters'])} counters, "
            f"{len(self.data['gauges'])} gauges, "
            f"{len(self.data['histograms'])} histograms)"
        )


class MetricsRegistry:
    """Process-wide instrument registry with snapshot/merge semantics.

    Default-off: :attr:`enabled` starts False and every instrument's
    record method returns immediately while it stays so.  All mutation —
    recording, registration, merging — happens under one lock, so
    completion callbacks and helper threads can record concurrently
    (instrument registration is idempotent: asking for an existing
    (name, labels) series returns the live instrument).
    """

    def __init__(self):
        self.enabled = False
        self._lock = threading.RLock()
        self._instruments: Dict[Tuple[str, _LabelKey], _Instrument] = {}

    # -- lifecycle --------------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every instrument (a fresh campaign)."""
        with self._lock:
            self._instruments.clear()

    @contextmanager
    def collect(self, reset: bool = True):
        """Enable for a ``with`` block; restores the prior enabled state."""
        was_enabled = self.enabled
        self.enable(reset=reset)
        try:
            yield self
        finally:
            self.enabled = was_enabled

    # -- registration -----------------------------------------------------------
    def _register(self, cls, name: str, labels, help: str, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(self, name, key[1], help, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._register(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._register(Gauge, name, labels, help)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Iterable[float] = SECONDS_BUCKETS) -> Histogram:
        instrument = self._register(Histogram, name, labels, help, buckets=buckets)
        if tuple(float(b) for b in buckets) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return instrument

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.series)

    # -- snapshot / merge --------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state into a transportable snapshot."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        with self._lock:
            for instrument in self._instruments.values():
                series = instrument.series
                meta = {
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    "help": instrument.help,
                }
                if isinstance(instrument, Counter):
                    counters[series] = {**meta, "value": instrument.value}
                elif isinstance(instrument, Gauge):
                    gauges[series] = {**meta, "value": instrument.value}
                else:
                    histograms[series] = {
                        **meta,
                        "bounds": list(instrument.bounds),
                        "counts": list(instrument.counts),
                        "sum": instrument.sum,
                        "count": instrument.count,
                    }
        return MetricsSnapshot({
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })

    def merge(self, snapshot: MetricsSnapshot | dict) -> None:
        """Fold a snapshot into the live registry.

        Counters add, gauges keep the maximum (high-water semantics),
        histograms add bucket-wise (bounds must match — fixed buckets are
        the contract that makes cross-process merging exact).  Merging
        ignores the ``enabled`` flag deliberately: the parent of a sweep
        may keep its own recording off while still aggregating workers.
        """
        if isinstance(snapshot, dict):
            snapshot = MetricsSnapshot.from_dict(snapshot)
        data = snapshot.data
        with self._lock:
            for entry in data["counters"].values():
                c = self._register(Counter, entry["name"], entry["labels"],
                                   entry.get("help", ""))
                c.value += entry["value"]
            for entry in data["gauges"].values():
                g = self._register(Gauge, entry["name"], entry["labels"],
                                   entry.get("help", ""))
                if entry["value"] > g.value:
                    g.value = entry["value"]
            for entry in data["histograms"].values():
                h = self._register(
                    Histogram, entry["name"], entry["labels"],
                    entry.get("help", ""), buckets=entry["bounds"],
                )
                if list(h.bounds) != list(entry["bounds"]):
                    raise ValueError(
                        f"cannot merge histogram {entry['name']!r}: "
                        "bucket bounds differ"
                    )
                for i, n in enumerate(entry["counts"]):
                    h.counts[i] += n
                h.sum += entry["sum"]
                h.count += entry["count"]


#: The process-wide registry every instrumented layer reports into.
metrics_registry = MetricsRegistry()


# -- run-level flush ---------------------------------------------------------------
def kernel_stats_snapshot() -> dict:
    """Current ``{kernel: (calls, seconds, flops)}`` of the kernel counters
    (for delta-based flushing around one run)."""
    from repro.perf import kernel_counters

    return {
        name: (stats.calls, stats.seconds, stats.flops)
        for name, stats in kernel_counters.stats().items()
    }


def record_pipeline_run(
    pipeline, sim, world, metrics, makespan: float,
    kernel_before: Optional[dict] = None,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Flush one completed pipeline run into the registry.

    Pull-based by design: everything recorded here is a counter or
    timestamp the simulation *already produced* (the same always-on
    integers :func:`repro.perf.snapshot_counters` reads), so the run's
    virtual-time behaviour is bit-identical with metrics on or off.  The
    simulator and world are fresh per run, so their totals are this run's
    deltas.
    """
    reg = metrics_registry if registry is None else registry
    if not reg.enabled:
        return
    backend = {"backend": getattr(world, "backend", getattr(sim, "backend", "python"))}

    # DES engine.
    reg.counter("des_events_total",
                "events processed by the simulator core",
                labels=backend).inc(sim.events_processed)
    reg.gauge("des_heap_depth_peak",
              "peak event-heap depth observed at schedule time").set_max(
        getattr(sim, "heap_peak", 0))
    plan = getattr(world, "engine_plan", None)
    if plan is not None:
        reg.counter("des_plan_build_seconds_total",
                    "host seconds spent lowering EnginePlan tables",
                    labels=backend).inc(plan.build_seconds)

    # SimMPI matcher.
    reg.counter("mpi_match_probes_total",
                "queue entries examined while matching").inc(world.match_probes)
    reg.counter("mpi_sends_total", "point-to-point sends posted").inc(
        world.sends_posted)
    reg.counter("mpi_recvs_total", "point-to-point receives posted").inc(
        world.recvs_posted)
    reg.counter("mpi_wildcard_recvs_total",
                "receives posted with a wildcard source or tag").inc(
        getattr(world, "wildcard_recvs", 0))
    reg.counter("mpi_wildcard_hits_total",
                "matches that involved a wildcard receive").inc(
        getattr(world, "wildcard_hits", 0))

    # Network.
    network = world.network
    reg.counter("net_messages_total", "messages sent on the interconnect").inc(
        network.messages_sent)
    reg.counter("net_bytes_total", "bytes sent on the interconnect").inc(
        network.bytes_sent)
    sink = getattr(pipeline, "trace_sink", None)
    if sink is not None and sink.link_stats:
        busy = sum(s.busy_seconds for s in sink.link_stats.values())
        wait = sum(s.wait_seconds for s in sink.link_stats.values())
        held = sum(s.messages for s in sink.link_stats.values())
        reg.counter("net_link_busy_seconds_total",
                    "simulated seconds interconnect resources were held").inc(busy)
        reg.counter("net_link_wait_seconds_total",
                    "simulated seconds transfers queued for resources").inc(wait)
        reg.counter("net_link_holds_total",
                    "resource holds recorded by the trace sink").inc(held)

    # Pipeline stages (the paper's per-task recv/comp/send decomposition).
    reg.counter("pipeline_runs_total", "completed pipeline simulations").inc()
    reg.histogram("pipeline_makespan_seconds",
                  "simulated makespan per run").observe(makespan)
    if metrics is not None:
        if not math.isnan(metrics.measured_latency):
            reg.histogram("pipeline_latency_seconds",
                          "measured end-to-end latency per run").observe(
                metrics.measured_latency)
        if not math.isnan(metrics.measured_throughput):
            reg.histogram(
                "pipeline_throughput_cpis_per_second",
                "measured steady-state throughput per run",
                buckets=(0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256),
            ).observe(metrics.measured_throughput)
        for task, tm in metrics.tasks.items():
            labels = {"task": task}
            for phase, value in (("recv", tm.recv), ("comp", tm.comp),
                                 ("send", tm.send)):
                reg.histogram(
                    f"stage_{phase}_seconds",
                    f"steady-state {phase} seconds per CPI, per run",
                    labels=labels,
                ).observe(value)

    # STAP kernels (reusing repro.perf.kernels timings when collection is on).
    if kernel_before is not None:
        record_kernel_delta(kernel_before, kernel_stats_snapshot(), registry=reg)


def record_kernel_delta(before: dict, after: dict,
                        registry: Optional[MetricsRegistry] = None) -> None:
    """Record per-kernel call/seconds/flops growth between two
    :func:`kernel_stats_snapshot` readings."""
    reg = metrics_registry if registry is None else registry
    if not reg.enabled:
        return
    for kernel, (calls, seconds, flops) in after.items():
        b_calls, b_seconds, b_flops = before.get(kernel, (0, 0.0, 0.0))
        if calls == b_calls:
            continue
        labels = {"kernel": kernel}
        reg.counter("stap_kernel_calls_total",
                    "instrumented kernel invocations", labels=labels).inc(
            calls - b_calls)
        reg.counter("stap_kernel_seconds_total",
                    "host seconds inside instrumented kernels",
                    labels=labels).inc(seconds - b_seconds)
        reg.counter("stap_kernel_flops_total",
                    "modeled useful flops performed", labels=labels).inc(
            flops - b_flops)


# -- export ------------------------------------------------------------------------
def to_prometheus(snapshot: MetricsSnapshot | dict) -> str:
    """Prometheus text exposition format (version 0.0.4) of a snapshot."""
    if isinstance(snapshot, dict):
        snapshot = MetricsSnapshot.from_dict(snapshot)
    data = snapshot.data
    lines: list[str] = []
    seen_types: set[str] = set()

    def _head(name: str, kind: str, help: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")

    def _fmt(value: float) -> str:
        return repr(float(value)) if value % 1 else str(int(value))

    for kind_key, kind in (("counters", "counter"), ("gauges", "gauge")):
        for series in sorted(data[kind_key]):
            entry = data[kind_key][series]
            _head(entry["name"], kind, entry.get("help", ""))
            lines.append(f"{series} {_fmt(entry['value'])}")
    for series in sorted(data["histograms"]):
        entry = data["histograms"][series]
        name = entry["name"]
        _head(name, "histogram", entry.get("help", ""))
        labels = entry.get("labels", {})
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            lines.append(
                f"{series_name(name + '_bucket', {**labels, 'le': repr(bound)})}"
                f" {cumulative}"
            )
        lines.append(
            f"{series_name(name + '_bucket', {**labels, 'le': '+Inf'})}"
            f" {entry['count']}"
        )
        lines.append(f"{series_name(name + '_sum', labels)} {entry['sum']!r}")
        lines.append(f"{series_name(name + '_count', labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


def write_snapshot(snapshot: MetricsSnapshot | dict, path,
                   format: str = "json") -> Path:
    """Write a snapshot to ``path`` as ``json`` or ``prom`` text.

    Parent directories are created on demand (``--metrics-out`` may point
    into a fresh results tree) and the write is atomic — rendered to a
    sibling temp file, then renamed — so a scrape never reads a torn
    snapshot."""
    if isinstance(snapshot, dict):
        snapshot = MetricsSnapshot.from_dict(snapshot)
    path = Path(path)
    if format == "json":
        text = snapshot.to_json() + "\n"
    elif format == "prom":
        text = to_prometheus(snapshot)
    else:
        raise ValueError(f"unknown metrics format {format!r} (json or prom)")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path
