"""Benchmark/metrics regression gate: diff two JSON documents, fail on drift.

``repro.obs.regress`` compares any two JSON documents of numbers — two
``BENCH_simspeed.json`` / ``BENCH_kernels.json`` generations, a metrics
snapshot against a stored baseline, two sweep summaries — and flags every
leaf whose change exceeds a tolerance *in the bad direction*.  Direction
is inferred from the metric's name (``events_per_second`` up is good,
``wall_seconds`` up is bad, unrecognized names are informational only),
so the same tool gates both throughput-like and latency-like figures.

Library use::

    from repro.obs.regress import compare

    report = compare(baseline_doc, current_doc, tolerance=0.10)
    print(report.table())
    assert report.ok, report.summary()

Command line (exit code 1 on regression, 2 on bad input)::

    python -m repro.obs.regress BENCH_simspeed.json.old BENCH_simspeed.json \\
        --tolerance 0.10

The benchmark scripts run this automatically: updating a ``BENCH_*.json``
via :func:`benchmarks.common.merge_results` prints the pass/fail delta
table against the previous generation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Name-fragment -> preferred direction, checked in order (first match
#: wins: "events_per_second" must classify as higher-better before the
#: "seconds" rule would claim it).
DIRECTION_RULES: tuple[tuple[str, str], ...] = (
    ("per_second", "higher"),
    ("per_s", "higher"),
    ("throughput", "higher"),
    ("speedup", "higher"),
    ("efficiency", "higher"),
    ("flops", "higher"),
    ("hit", "higher"),
    ("paper_fraction", "higher"),
    ("latency", "lower"),
    ("seconds", "lower"),
    ("wall", "lower"),
    ("_ms", "lower"),
    ("error", "lower"),
    ("miss", "lower"),
    ("wait", "lower"),
    ("probes", "lower"),
    ("corrupt", "lower"),
)

#: Leaf-name fragments that are identifiers, not measurements (never
#: compared for regression, excluded from the table).
IGNORED_FRAGMENTS = ("schema", "version", "nodes", "ranks", "jobs", "cpus",
                     "num_cpis", "calls", "count", "bounds", "label")


def direction_of(path: str) -> Optional[str]:
    """``"higher"``/``"lower"``-is-better for a metric path, None if unknown.

    Matched against the whole dotted path (not just the leaf) so metrics
    snapshots — where the telling name sits in the series key and the
    leaf is ``value``/``sum`` — classify like flat benchmark documents.
    """
    lowered = path.lower()
    for fragment, direction in DIRECTION_RULES:
        if fragment in lowered:
            return direction
    return None


def _is_ignored(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1].lower()
    return any(fragment in leaf for fragment in IGNORED_FRAGMENTS)


def flatten(doc, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> numeric leaf map of an arbitrary JSON document.

    Bools and non-numeric leaves are skipped; list elements are indexed
    (``runs.0.wall_seconds``).  Metrics snapshots need no special casing —
    their counter/gauge ``value`` and histogram ``sum`` leaves flatten
    like any other document.
    """
    flat: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            flat.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(doc, (list, tuple)):
        for index, value in enumerate(doc):
            flat.update(flatten(value, f"{prefix}{index}."))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        value = float(doc)
        if math.isfinite(value):
            flat[prefix[:-1]] = value
    return flat


@dataclass(frozen=True)
class MetricDelta:
    """One compared leaf."""

    path: str
    before: float
    after: float
    #: "higher" / "lower" is better, or None (informational).
    direction: Optional[str]
    #: Signed fractional change relative to ``before`` (inf when before=0).
    change: float
    #: Change beyond tolerance in the *bad* direction.
    regressed: bool

    @property
    def improved(self) -> bool:
        if self.direction is None or self.change == 0.0:
            return False
        return (self.change > 0) == (self.direction == "higher")

    def row(self) -> str:
        pct = (
            f"{self.change * 100:+9.1f}%" if math.isfinite(self.change)
            else "      new"
        )
        if self.regressed:
            status = "FAIL"
        elif self.direction is None:
            status = "  --"
        else:
            status = "  ok"
        return (
            f"{status}  {self.path:<52.52} {self.before:>12.5g} "
            f"{self.after:>12.5g} {pct}"
        )


@dataclass
class RegressionReport:
    """Outcome of one baseline/current comparison."""

    deltas: list[MetricDelta]
    tolerance: float
    #: Paths present in only one document (informational).
    only_baseline: list[str]
    only_current: list[str]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        n = len(self.regressions)
        if not n:
            return (
                f"ok: {len(self.deltas)} metrics within "
                f"{self.tolerance * 100:.0f}% tolerance"
            )
        worst = max(
            self.regressions,
            key=lambda d: abs(d.change) if math.isfinite(d.change) else 0.0,
        )
        return (
            f"REGRESSION: {n} of {len(self.deltas)} metrics beyond "
            f"{self.tolerance * 100:.0f}% tolerance "
            f"(worst: {worst.path} {worst.change * 100:+.1f}%)"
        )

    def table(self, only_changed: bool = True) -> str:
        """Printable delta table; regressions first, then largest movers."""
        rows = [d for d in self.deltas
                if not only_changed or d.change != 0.0 or d.regressed]
        rows.sort(key=lambda d: (
            not d.regressed,
            -(abs(d.change) if math.isfinite(d.change) else float("inf")),
        ))
        lines = [
            f"{'':>4}  {'metric':<52} {'baseline':>12} {'current':>12} "
            f"{'change':>10}",
        ]
        lines += [d.row() for d in rows]
        if not rows:
            lines.append("  (no changed metrics)")
        if self.only_current:
            lines.append(f"  +{len(self.only_current)} new metric(s)")
        if self.only_baseline:
            lines.append(f"  -{len(self.only_baseline)} removed metric(s)")
        lines.append(self.summary())
        return "\n".join(lines)


def compare(baseline, current, tolerance: float = 0.10) -> RegressionReport:
    """Compare two JSON documents (dicts) leaf by leaf.

    A leaf regresses when its relative change exceeds ``tolerance`` in
    the direction its name marks as bad; unknown-direction and identifier
    leaves are reported but can never fail the gate.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base_flat = flatten(baseline)
    curr_flat = flatten(current)
    deltas = []
    for path in sorted(set(base_flat) & set(curr_flat)):
        if _is_ignored(path):
            continue
        before, after = base_flat[path], curr_flat[path]
        if before == 0.0:
            change = 0.0 if after == 0.0 else math.copysign(math.inf, after)
        else:
            change = (after - before) / abs(before)
        direction = direction_of(path)
        if direction is None or not math.isfinite(change):
            regressed = False
        elif direction == "higher":
            regressed = change < -tolerance
        else:
            regressed = change > tolerance
        deltas.append(MetricDelta(
            path=path, before=before, after=after,
            direction=direction, change=change, regressed=regressed,
        ))
    return RegressionReport(
        deltas=deltas,
        tolerance=tolerance,
        only_baseline=sorted(set(base_flat) - set(curr_flat)),
        only_current=sorted(set(curr_flat) - set(base_flat)),
    )


def compare_files(baseline_path, current_path,
                  tolerance: float = 0.10) -> RegressionReport:
    """File-path convenience wrapper around :func:`compare`."""
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return compare(baseline, current, tolerance=tolerance)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Diff two benchmark/metrics JSON files; fail on "
                    "regressions beyond a tolerance.",
    )
    parser.add_argument("baseline", help="baseline JSON file")
    parser.add_argument("current", help="current JSON file")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional drift in the bad direction "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--all", action="store_true",
                        help="list unchanged metrics too")
    args = parser.parse_args(argv)
    try:
        report = compare_files(args.baseline, args.current,
                               tolerance=args.tolerance)
    except (OSError, ValueError) as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2
    print(report.table(only_changed=not args.all))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
