"""Live terminal dashboard for executor sweeps.

A :class:`SweepDashboard` is an ordinary
:data:`~repro.exec.executor.ProgressCallback` — plug it into
:func:`repro.exec.run_points` (or the sweep runners' ``progress=``, or the
CLI's ``sweep --dashboard``) and it renders a one-line live status as
points complete::

    sweep [#########-----------]  12/25  48%  3.1 pts/s  hits 33%  err 0  ETA 4.2s

plus, on :meth:`summary`, a final block with per-stage latency histograms
aggregated over every completed point (tiny unicode sparklines over the
fixed :data:`~repro.obs.metrics.SECONDS_BUCKETS`).

The dashboard is read-only: it consumes the ``PointOutcome`` stream and
keeps its own private instruments, so it composes with (but does not
require) an enabled :data:`~repro.obs.metrics.metrics_registry`.  On a
TTY the status line redraws in place (``\\r``); on a plain stream it
prints at most one line per ``min_interval`` seconds so logs stay small.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.core.assignment import TASK_NAMES
from repro.obs.metrics import Histogram, MetricsRegistry, SECONDS_BUCKETS

#: Sparkline glyphs, lowest to highest.
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(counts) -> str:
    """Unicode mini-histogram of a bucket-count sequence."""
    peak = max(counts) if counts else 0
    if peak <= 0:
        return ""
    return "".join(
        " " if n == 0 else _SPARKS[min(len(_SPARKS) - 1,
                                       int(n / peak * (len(_SPARKS) - 1)))]
        for n in counts
    )


def _trim(counts, bounds) -> tuple[list, list]:
    """Drop empty leading/trailing buckets so sparklines stay compact."""
    nonzero = [i for i, n in enumerate(counts) if n]
    if not nonzero:
        return [], []
    lo, hi = nonzero[0], nonzero[-1] + 1
    padded_bounds = list(bounds) + [float("inf")]
    return counts[lo:hi], padded_bounds[lo:hi]


def _fmt_seconds(seconds: float) -> str:
    if seconds != seconds or seconds == float("inf"):  # NaN / unknown
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class SweepDashboard:
    """Progress callback rendering sweep status live in the terminal.

    Parameters
    ----------
    stream:
        Output stream (default ``sys.stderr``, keeping stdout clean for
        the sweep's own tables).
    min_interval:
        Minimum seconds between redraws (rate limit; the final point
        always renders).
    label:
        Prefix shown on the status line.
    clock:
        Injectable monotonic clock (tests pin it).

    The callback never raises on malformed outcomes — a sweep must not die
    because its progress display hiccuped (the executor additionally
    contains callback errors; see ``run_points``).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.2,
        label: str = "sweep",
        clock=time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.label = label
        self.clock = clock
        self.started_at: Optional[float] = None
        self.completed = 0
        self.total = 0
        self.cached = 0
        self.errors = 0
        self.sim_seconds = 0.0
        #: Private per-stage comp-seconds histograms (task -> Histogram).
        self._stage_registry = MetricsRegistry()
        self._stage_registry.enable()
        self._last_render = float("-inf")
        self._line_len = 0

    # -- the progress callback ---------------------------------------------------
    def __call__(self, completed: int, total: int, outcome) -> None:
        now = self.clock()
        if self.started_at is None:
            self.started_at = now
        self.completed = completed
        self.total = total
        if getattr(outcome, "cached", False):
            self.cached += 1
        if getattr(outcome, "error", None) is not None:
            self.errors += 1
        self.sim_seconds += getattr(outcome, "elapsed", 0.0)
        result = getattr(outcome, "result", None)
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            for task, tm in metrics.tasks.items():
                self._stage_histogram(task).observe(tm.comp)
        if completed >= total or now - self._last_render >= self.min_interval:
            self._last_render = now
            self.render(now)

    def _stage_histogram(self, task: str) -> Histogram:
        return self._stage_registry.histogram(
            "stage_comp_seconds", "per-point steady-state comp seconds",
            labels={"task": task}, buckets=SECONDS_BUCKETS,
        )

    # -- store-backed fallback ---------------------------------------------------
    def seed_progress(self, progress) -> None:
        """Adopt a store-derived :class:`~repro.exec.campaign.CampaignProgress`.

        The fallback for campaigns this process is not running: when no
        in-process callback is wired, the same figures are read from the
        campaign store on disk — completed points count as store-served
        (they are cache hits from this observer's perspective), the
        points/s rate comes from the results' publish-time span, and the
        per-stage histograms are rebuilt from the stored metrics.
        Idempotent: re-seeding replaces the previous state, so a watcher
        can refresh in a loop.
        """
        now = self.clock()
        self.total = progress.total
        self.completed = progress.complete
        self.cached = progress.complete
        self.errors = 0
        self.sim_seconds = 0.0
        # With fewer than two publish times the historical rate is
        # unknown — leave started_at unset so pts/s and ETA render "?"
        # instead of a nonsense figure from a near-zero elapsed.
        self.started_at = (
            now - progress.span_seconds if progress.span_seconds > 0 else None
        )
        self._stage_registry = MetricsRegistry()
        self._stage_registry.enable()
        for task, comps in progress.stage_comp.items():
            histogram = self._stage_histogram(task)
            for comp in comps:
                histogram.observe(comp)

    @classmethod
    def from_store(cls, directory, label: str = "", **kwargs) -> "SweepDashboard":
        """A dashboard seeded from a campaign store directory.

        ``repro-stap campaign status`` uses this to report on a live (or
        finished, or crashed) campaign from a second terminal.
        """
        from repro.obs.progress import read_campaign_progress

        progress = read_campaign_progress(directory)
        dash = cls(label=label or f"campaign:{progress.name}", **kwargs)
        dash.seed_progress(progress)
        return dash

    # -- derived figures ---------------------------------------------------------
    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return max(self.clock() - self.started_at, 0.0)

    @property
    def points_per_second(self) -> float:
        elapsed = self.elapsed
        return self.completed / elapsed if elapsed > 0 else float("nan")

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.completed if self.completed else 0.0

    @property
    def eta_seconds(self) -> float:
        rate = self.points_per_second
        if not rate or rate != rate:
            return float("nan")
        return (self.total - self.completed) / rate

    # -- rendering ---------------------------------------------------------------
    def status_line(self, now: Optional[float] = None) -> str:
        done, total = self.completed, self.total
        frac = done / total if total else 0.0
        width = 20
        filled = int(frac * width)
        bar = "#" * filled + "-" * (width - filled)
        rate = self.points_per_second
        rate_s = f"{rate:5.1f}" if rate == rate else "    ?"
        return (
            f"{self.label} [{bar}] {done:>4}/{total} {frac * 100:3.0f}%  "
            f"{rate_s} pts/s  hits {self.cache_hit_rate * 100:3.0f}%  "
            f"err {self.errors}  ETA {_fmt_seconds(self.eta_seconds)}"
        )

    def render(self, now: Optional[float] = None) -> None:
        line = self.status_line(now)
        try:
            if getattr(self.stream, "isatty", lambda: False)():
                pad = max(self._line_len - len(line), 0)
                self.stream.write("\r" + line + " " * pad)
                if self.completed >= self.total:
                    self.stream.write("\n")
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
            self._line_len = len(line)
        except (OSError, ValueError):
            # A closed/broken stream must never kill the sweep.
            pass

    def summary(self) -> str:
        """Final multi-line block: totals plus per-stage comp histograms."""
        rate = self.points_per_second
        lines = [
            f"--- {self.label} dashboard",
            f"points      {self.completed}/{self.total}  "
            f"({self.cached} cached, {self.errors} errors)",
            f"wall        {_fmt_seconds(self.elapsed)}  "
            f"({f'{rate:.2f}' if rate == rate else '?'} pts/s, "
            f"{self.sim_seconds:.1f} s simulating)",
        ]
        snapshot = self._stage_registry.snapshot()
        stage_rows = []
        for task in TASK_NAMES:
            hist = snapshot.histogram("stage_comp_seconds", {"task": task})
            if hist is None or not hist["count"]:
                continue
            counts, bounds = _trim(hist["counts"], hist["bounds"])
            mean = hist["sum"] / hist["count"]
            stage_rows.append(
                f"  {task:<18} {mean * 1e3:>8.1f} ms mean  {sparkline(counts)}"
            )
        if stage_rows:
            lines.append("stage comp seconds per CPI (mean, distribution):")
            lines.extend(stage_rows)
        return "\n".join(lines)
