"""Result records: measured-vs-paper value pairs and table containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Comparison:
    """One quantity: what we measured and what the paper reported."""

    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def error_pct(self) -> Optional[float]:
        """Signed percent deviation from the paper (None if no reference)."""
        if self.paper is None or self.paper == 0:
            return None
        return 100.0 * (self.measured - self.paper) / self.paper

    def within(self, rel: float) -> bool:
        """True if within ``rel`` relative error of the paper's value."""
        if self.paper is None:
            return True
        return abs(self.measured - self.paper) <= rel * abs(self.paper)

    def __str__(self) -> str:
        if self.paper is None:
            return f"{self.measured:.4f}{self.unit}"
        return (
            f"{self.measured:.4f}{self.unit} "
            f"(paper {self.paper:.4f}, {self.error_pct:+.1f}%)"
        )


@dataclass
class TableResult:
    """A reproduced table: named rows of named comparisons."""

    table_id: str
    title: str
    rows: Dict[str, Dict[str, Comparison]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, row: str, column: str, comparison: Comparison) -> None:
        self.rows.setdefault(row, {})[column] = comparison

    def all_within(self, rel: float) -> bool:
        """True if every compared cell is within ``rel`` of the paper."""
        return all(
            c.within(rel) for cells in self.rows.values() for c in cells.values()
        )

    def worst_error_pct(self) -> float:
        """Largest absolute percent deviation across compared cells."""
        errors = [
            abs(c.error_pct)
            for cells in self.rows.values()
            for c in cells.values()
            if c.error_pct is not None
        ]
        return max(errors, default=0.0)

    def render(self) -> str:
        """Human-readable block."""
        lines = [f"{self.table_id} — {self.title}"]
        for row_name, cells in self.rows.items():
            parts = [f"{col}: {cmp}" for col, cmp in cells.items()]
            lines.append(f"  {row_name:<24} " + "; ".join(parts))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
