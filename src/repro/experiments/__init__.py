"""Structured experiment runners for the paper's evaluation.

Each function reproduces one table (or figure) of the paper and returns a
typed result object carrying both the measured values and the paper's
published ones, so callers — the CLI, the benchmark harness, notebooks —
can render or assert on them uniformly.

    from repro.experiments import run_table8
    result = run_table8(num_cpis=25)
    print(result.render())
    assert result.rows["case2"].throughput.within(0.15)
"""

from repro.experiments.records import Comparison, TableResult
from repro.experiments.tables import (
    run_table1,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
    run_baseline,
    PAPER_CASES,
)
from repro.experiments.sweeps import (
    scalability_curve,
    scalability_points,
    speedup_points,
    speedup_series,
)
from repro.experiments.report import generate_report, write_report

__all__ = [
    "generate_report",
    "write_report",
    "Comparison",
    "TableResult",
    "run_table1",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_table10",
    "run_baseline",
    "PAPER_CASES",
    "speedup_series",
    "speedup_points",
    "scalability_curve",
    "scalability_points",
]
