"""Runners for the paper's Tables 1 and 7-10 plus the Section 2 baseline.

All runners accept ``num_cpis`` (default 25, the paper's run length) and an
optional machine override, and return :class:`TableResult` objects pairing
measured values with the paper's published ones.
"""

from __future__ import annotations

from typing import Optional

from repro.core.assignment import (
    Assignment,
    CASE1,
    CASE2,
    CASE3,
    CASE2_PLUS_DOPPLER,
    CASE2_PLUS_DOPPLER_PC_CFAR,
    TASK_NAMES,
)
from repro.core.pipeline import STAPPipeline
from repro.core.roundrobin import RoundRobinSTAP
from repro.experiments.records import Comparison, TableResult
from repro.machine import Machine
from repro.radar.parameters import STAPParams
from repro.stap import flops as flops_mod

#: The named assignments of the evaluation section.
PAPER_CASES: dict[str, Assignment] = {
    "case1": CASE1,
    "case2": CASE2,
    "case3": CASE3,
    "table9": CASE2_PLUS_DOPPLER,
    "table10": CASE2_PLUS_DOPPLER_PC_CFAR,
}

#: Table 8 "real" rows.
_PAPER_TABLE8 = {
    "case1": (7.2659, 0.3622),
    "case2": (3.7959, 0.6805),
    "case3": (1.9898, 1.3530),
}

#: Table 7 (recv, comp, send) per case and task.
_PAPER_TABLE7 = {
    "case1": {
        "doppler": (0.0055, 0.0874, 0.0348),
        "easy_weight": (0.0493, 0.0913, 0.0003),
        "hard_weight": (0.0555, 0.0831, 0.0005),
        "easy_beamform": (0.0658, 0.0708, 0.0021),
        "hard_beamform": (0.0936, 0.0414, 0.0010),
        "pulse_compression": (0.0551, 0.0776, 0.0028),
        "cfar": (0.0910, 0.0434, None),
    },
    "case2": {
        "doppler": (0.0110, 0.1714, 0.0668),
        "easy_weight": (0.0998, 0.1636, 0.0003),
        "hard_weight": (0.0979, 0.1636, 0.0005),
        "easy_beamform": (0.1302, 0.1267, 0.0036),
        "hard_beamform": (0.1782, 0.0822, 0.0017),
        "pulse_compression": (0.1027, 0.1543, 0.0051),
        "cfar": (0.1742, 0.0864, None),
    },
    "case3": {
        "doppler": (0.0219, 0.3509, 0.1296),
        "easy_weight": (0.1796, 0.3254, 0.0003),
        "hard_weight": (0.1779, 0.3265, 0.0006),
        "easy_beamform": (0.2439, 0.2529, 0.0068),
        "hard_beamform": (0.3370, 0.1636, 0.0032),
        "pulse_compression": (0.1806, 0.3067, 0.0097),
        "cfar": (0.3240, 0.1723, None),
    },
}


def run_table1(params: Optional[STAPParams] = None) -> TableResult:
    """Table 1: analytic flop counts vs the paper's."""
    params = params or STAPParams.paper()
    counts = flops_mod.all_task_flops(params)
    result = TableResult("Table 1", "flops to process one CPI")
    for task, paper_value in flops_mod.PAPER_TABLE1.items():
        result.add(
            task, "flops", Comparison(measured=counts[task], paper=paper_value)
        )
    return result


def _run_pipeline(
    assignment: Assignment,
    num_cpis: int,
    machine: Optional[Machine],
    measured: bool,
):
    pipeline = STAPPipeline(
        STAPParams.paper(), assignment, machine=machine, num_cpis=num_cpis
    )
    return pipeline.run_measured() if measured else pipeline.run()


def run_table7(
    case: str, num_cpis: int = 25, machine: Optional[Machine] = None
) -> TableResult:
    """Table 7: per-task recv/comp/send for one of the three cases."""
    if case not in _PAPER_TABLE7:
        raise KeyError(f"case must be one of {sorted(_PAPER_TABLE7)}, got {case!r}")
    assignment = PAPER_CASES[case]
    run = _run_pipeline(assignment, num_cpis, machine, measured=False)
    result = TableResult("Table 7", f"per-task timing, {assignment.name}")
    for task in TASK_NAMES:
        metrics = run.metrics.tasks[task]
        p_recv, p_comp, p_send = _PAPER_TABLE7[case][task]
        result.add(task, "recv", Comparison(metrics.recv, p_recv, " s"))
        result.add(task, "comp", Comparison(metrics.comp, p_comp, " s"))
        result.add(task, "send", Comparison(metrics.send, p_send, " s"))
    result.add(
        "throughput", "CPIs/s",
        Comparison(run.metrics.measured_throughput, _PAPER_TABLE8[case][0]),
    )
    return result


def run_table8(
    num_cpis: int = 25,
    machine: Optional[Machine] = None,
    cases=("case1", "case2", "case3"),
) -> TableResult:
    """Table 8: throughput and latency across the machine sizes."""
    result = TableResult("Table 8", "throughput and latency vs machine size")
    for case in cases:
        run = _run_pipeline(PAPER_CASES[case], num_cpis, machine, measured=True)
        paper_thr, paper_lat = _PAPER_TABLE8[case]
        result.add(
            case, "throughput",
            Comparison(run.metrics.measured_throughput, paper_thr, " CPIs/s"),
        )
        result.add(
            case, "latency",
            Comparison(run.metrics.measured_latency, paper_lat, " s"),
        )
        result.add(
            case, "eq_latency",
            Comparison(run.metrics.equation_latency, None, " s"),
        )
    result.notes.append("equation (2) latency is the paper's upper bound")
    return result


def run_table9(num_cpis: int = 25, machine: Optional[Machine] = None) -> TableResult:
    """Table 9: +4 Doppler nodes on case 2."""
    before = _run_pipeline(CASE2, num_cpis, machine, measured=True)
    after = _run_pipeline(CASE2_PLUS_DOPPLER, num_cpis, machine, measured=True)
    result = TableResult("Table 9", "case 2 + 4 Doppler nodes (118 -> 122)")
    thr_gain = (
        after.metrics.measured_throughput / before.metrics.measured_throughput - 1
    )
    lat_gain = 1 - after.metrics.measured_latency / before.metrics.measured_latency
    result.add("throughput gain", "%", Comparison(100 * thr_gain, 32.0))
    result.add("latency gain", "%", Comparison(100 * lat_gain, 19.0))
    for task in TASK_NAMES:
        if task == "doppler":
            continue
        result.add(
            task, "recv delta",
            Comparison(
                after.metrics.tasks[task].recv - before.metrics.tasks[task].recv,
                None, " s",
            ),
        )
    result.notes.append(
        "secondary effect: successor recv deltas should be negative"
    )
    return result


def run_table10(num_cpis: int = 25, machine: Optional[Machine] = None) -> TableResult:
    """Table 10: +16 pulse compression / CFAR nodes on the Table 9 config."""
    before = _run_pipeline(CASE2_PLUS_DOPPLER, num_cpis, machine, measured=True)
    after = _run_pipeline(
        CASE2_PLUS_DOPPLER_PC_CFAR, num_cpis, machine, measured=True
    )
    result = TableResult("Table 10", "+16 PC/CFAR nodes (122 -> 138)")
    result.add(
        "throughput ratio", "x",
        Comparison(
            after.metrics.measured_throughput / before.metrics.measured_throughput,
            4.9052 / 5.0213,
        ),
    )
    result.add(
        "latency gain", "%",
        Comparison(
            100 * (1 - after.metrics.measured_latency / before.metrics.measured_latency),
            23.0,
        ),
    )
    result.notes.append("throughput flat: the weight tasks are the bottleneck")
    return result


def run_baseline(num_cpis: int = 50, num_nodes: int = 25) -> TableResult:
    """Section 2: the RTMCARM round-robin system."""
    run = RoundRobinSTAP(STAPParams.paper(), num_nodes=num_nodes).run(num_cpis)
    result = TableResult("Section 2", f"round-robin baseline, {num_nodes} nodes")
    result.add("throughput", "CPIs/s", Comparison(run.throughput, 10.0))
    result.add("latency", "s", Comparison(run.latency, 2.35))
    return result
