"""Parameter sweeps: Figure 11 series and machine-size scalability curves.

Both sweep runners are built on the batch executor (:mod:`repro.exec`):
every point of a sweep is an independent full-pipeline simulation, so the
points fan out over ``jobs`` worker processes and route through the
content-addressed result cache — a repeated sweep is all cache hits.
``jobs=1`` (the default) is bit-identical to the historical serial loop;
simulations are deterministic, so ``jobs>1`` is too (enforced by the
golden tests in ``tests/exec/``).

Both runners also accept ``trace_dir``: when given, every point's run is
traced and a Perfetto timeline named after the point is written there, so
a whole sweep's timelines can be diffed side by side.  Tracing needs the
live in-process sink, so traced sweeps always run serially and uncached.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.assignment import Assignment, TASK_NAMES
from repro.core.pipeline import STAPPipeline
from repro.errors import ConfigurationError
from repro.exec import (
    USE_DEFAULT_CACHE,
    SimPoint,
    raise_on_failures,
    run_points,
)
from repro.machine import Machine
from repro.radar.parameters import STAPParams
from repro.scheduling import AnalyticPipelineModel, optimize_throughput


def _traced_run(point: SimPoint, trace_dir, point_name: str):
    """Serial fallback for traced sweeps: run live, write the timeline."""
    from repro.obs import write_chrome_trace

    pipeline = point.build_pipeline(trace=True)
    result = pipeline.run_measured() if point.measured else pipeline.run()
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(
        result.trace, directory / f"{point_name}.trace.json",
        mesh=pipeline.machine.mesh,
    )
    return result


def _run_sweep_points(points, names, trace_dir, jobs, cache, progress=None,
                      campaign_dir=None, campaign_name="sweep"):
    """Results for a sweep's points, one per point, in input order.

    ``campaign_dir`` routes the sweep through a durable
    :class:`~repro.exec.campaign.CampaignStore` at that directory: points
    are declared in the manifest, results publish atomically, and an
    interrupted sweep rerun against the same directory resumes from
    whatever completed (``repro-stap campaign status`` reads the same
    store from any terminal).
    """
    if trace_dir is not None:
        return [_traced_run(p, trace_dir, name) for p, name in zip(points, names)]
    if campaign_dir is not None:
        from repro.exec.campaign import CampaignStore

        cache = CampaignStore(campaign_dir, name=campaign_name)
    outcomes = run_points(points, jobs=jobs, cache=cache, progress=progress)
    raise_on_failures(outcomes)
    return [outcome.result for outcome in outcomes]


#: Case-2 node counts used for the tasks *not* being swept.
_BASE_COUNTS = {
    "doppler": 16,
    "easy_weight": 8,
    "hard_weight": 56,
    "easy_beamform": 8,
    "hard_beamform": 14,
    "pulse_compression": 8,
    "cfar": 8,
}


@dataclass(frozen=True)
class SpeedupPoint:
    """One node count of a Figure 11 series."""

    nodes: int
    comp_seconds: float
    speedup: float
    ideal_speedup: float

    @property
    def efficiency(self) -> float:
        return self.speedup / self.ideal_speedup


def speedup_points(
    task: str,
    node_counts: Sequence[int],
    num_cpis: int = 25,
    machine: Optional[Machine] = None,
    params: Optional[STAPParams] = None,
    backend: Optional[str] = None,
) -> tuple[list[SimPoint], list[str]]:
    """The Figure-11 point set: one assignment per swept node count.

    Shared by :func:`speedup_series` and the ``campaign`` CLI, so a
    durable campaign declares exactly the points the in-process sweep
    would run.
    """
    if task not in TASK_NAMES:
        raise ConfigurationError(f"unknown task {task!r}")
    if not node_counts:
        raise ConfigurationError("node_counts must be non-empty")
    params = params or STAPParams.paper()
    points, names = [], []
    for nodes in node_counts:
        counts = dict(_BASE_COUNTS)
        counts[task] = nodes
        name = f"sweep-{task}-{nodes}"
        points.append(
            SimPoint(
                params,
                Assignment(name=name, **counts),
                machine=machine,
                num_cpis=num_cpis,
                backend=backend,
            )
        )
        names.append(name)
    return points, names


def speedup_series(
    task: str,
    node_counts: Sequence[int],
    num_cpis: int = 25,
    machine: Optional[Machine] = None,
    params: Optional[STAPParams] = None,
    trace_dir=None,
    jobs: int = 1,
    cache=USE_DEFAULT_CACHE,
    backend: Optional[str] = None,
    progress=None,
    campaign_dir=None,
) -> list[SpeedupPoint]:
    """Figure 11: computation time & speedup of one task vs its node count.

    The other tasks are held at case-2 counts; each point is one
    full-pipeline simulation's comp column.  Points are independent, so
    they run through the executor (``jobs`` workers, result-cached).
    ``progress`` is an executor :data:`~repro.exec.executor.ProgressCallback`
    (e.g. a :class:`repro.obs.SweepDashboard`); ignored for traced sweeps.
    ``campaign_dir`` makes the sweep durable and resumable (see
    :mod:`repro.exec.campaign`).
    """
    points, names = speedup_points(
        task, node_counts, num_cpis=num_cpis, machine=machine, params=params,
        backend=backend,
    )
    results = _run_sweep_points(
        points, names, trace_dir, jobs, cache, progress,
        campaign_dir=campaign_dir, campaign_name=f"speedup-{task}",
    )
    series = []
    base_comp = None
    base_nodes = None
    for nodes, result in zip(node_counts, results):
        comp = result.metrics.tasks[task].comp
        if base_comp is None:
            base_comp, base_nodes = comp, nodes
        series.append(
            SpeedupPoint(
                nodes=nodes,
                comp_seconds=comp,
                speedup=base_comp / comp,
                ideal_speedup=nodes / base_nodes,
            )
        )
    return series


@dataclass(frozen=True)
class ScalabilityPoint:
    """One machine size of a scalability curve."""

    budget: int
    assignment: Assignment
    throughput: float
    latency: float


def scalability_points(
    budgets: Sequence[int],
    num_cpis: int = 15,
    machine: Optional[Machine] = None,
    params: Optional[STAPParams] = None,
    measured: bool = True,
    backend: Optional[str] = None,
) -> tuple[list[SimPoint], list[Assignment]]:
    """The scalability point set: one optimized assignment per budget.

    The optimizer runs here (cheap, in-process); only the simulations are
    campaign work.  Shared by :func:`scalability_curve` and the
    ``campaign`` CLI.
    """
    if not budgets:
        raise ConfigurationError("budgets must be non-empty")
    params = params or STAPParams.paper()
    model = AnalyticPipelineModel(params, machine)
    assignments = [optimize_throughput(model, budget) for budget in budgets]
    points = [
        SimPoint(
            params,
            assignment,
            machine=machine,
            num_cpis=num_cpis,
            measured=measured,
            backend=backend,
        )
        for assignment in assignments
    ]
    return points, assignments


def scalability_curve(
    budgets: Sequence[int],
    num_cpis: int = 15,
    machine: Optional[Machine] = None,
    params: Optional[STAPParams] = None,
    measured: bool = True,
    trace_dir=None,
    jobs: int = 1,
    cache=USE_DEFAULT_CACHE,
    backend: Optional[str] = None,
    progress=None,
    campaign_dir=None,
) -> list[ScalabilityPoint]:
    """Throughput/latency vs total node budget, with optimized assignments.

    The generalization of Table 8's three points: for each budget, the
    greedy optimizer picks the assignment (cheap, in-process) and the
    simulation measures it (fanned out over ``jobs`` workers).
    ``campaign_dir`` makes the sweep durable and resumable.
    """
    points, assignments = scalability_points(
        budgets, num_cpis=num_cpis, machine=machine, params=params,
        measured=measured, backend=backend,
    )
    names = [f"budget-{budget}" for budget in budgets]
    results = _run_sweep_points(
        points, names, trace_dir, jobs, cache, progress,
        campaign_dir=campaign_dir, campaign_name="scalability",
    )
    return [
        ScalabilityPoint(
            budget=budget,
            assignment=assignment,
            throughput=result.metrics.measured_throughput,
            latency=result.metrics.measured_latency,
        )
        for budget, assignment, result in zip(budgets, assignments, results)
    ]
