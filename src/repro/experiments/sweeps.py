"""Parameter sweeps: Figure 11 series and machine-size scalability curves.

Both sweep runners accept ``trace_dir``: when given, every point's run is
traced and a Perfetto timeline named after the point is written there, so
a whole sweep's timelines can be diffed side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.assignment import Assignment, TASK_NAMES
from repro.core.pipeline import STAPPipeline
from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.radar.parameters import STAPParams
from repro.scheduling import AnalyticPipelineModel, optimize_throughput


def _maybe_write_trace(result, pipeline, trace_dir, point_name: str) -> None:
    """Write one sweep point's timeline when ``trace_dir`` is set."""
    if trace_dir is None or result.trace is None:
        return
    from repro.obs import write_chrome_trace

    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(
        result.trace, directory / f"{point_name}.trace.json",
        mesh=pipeline.machine.mesh,
    )

#: Case-2 node counts used for the tasks *not* being swept.
_BASE_COUNTS = {
    "doppler": 16,
    "easy_weight": 8,
    "hard_weight": 56,
    "easy_beamform": 8,
    "hard_beamform": 14,
    "pulse_compression": 8,
    "cfar": 8,
}


@dataclass(frozen=True)
class SpeedupPoint:
    """One node count of a Figure 11 series."""

    nodes: int
    comp_seconds: float
    speedup: float
    ideal_speedup: float

    @property
    def efficiency(self) -> float:
        return self.speedup / self.ideal_speedup


def speedup_series(
    task: str,
    node_counts: Sequence[int],
    num_cpis: int = 25,
    machine: Optional[Machine] = None,
    params: Optional[STAPParams] = None,
    trace_dir=None,
) -> list[SpeedupPoint]:
    """Figure 11: computation time & speedup of one task vs its node count.

    The other tasks are held at case-2 counts; each point is one
    full-pipeline simulation's comp column.
    """
    if task not in TASK_NAMES:
        raise ConfigurationError(f"unknown task {task!r}")
    if not node_counts:
        raise ConfigurationError("node_counts must be non-empty")
    params = params or STAPParams.paper()
    series = []
    base_comp = None
    base_nodes = None
    for nodes in node_counts:
        counts = dict(_BASE_COUNTS)
        counts[task] = nodes
        pipeline = STAPPipeline(
            params,
            Assignment(name=f"sweep-{task}-{nodes}", **counts),
            machine=machine,
            num_cpis=num_cpis,
            trace=trace_dir is not None,
        )
        result = pipeline.run()
        _maybe_write_trace(result, pipeline, trace_dir, f"sweep-{task}-{nodes}")
        comp = result.metrics.tasks[task].comp
        if base_comp is None:
            base_comp, base_nodes = comp, nodes
        series.append(
            SpeedupPoint(
                nodes=nodes,
                comp_seconds=comp,
                speedup=base_comp / comp,
                ideal_speedup=nodes / base_nodes,
            )
        )
    return series


@dataclass(frozen=True)
class ScalabilityPoint:
    """One machine size of a scalability curve."""

    budget: int
    assignment: Assignment
    throughput: float
    latency: float


def scalability_curve(
    budgets: Sequence[int],
    num_cpis: int = 15,
    machine: Optional[Machine] = None,
    params: Optional[STAPParams] = None,
    measured: bool = True,
    trace_dir=None,
) -> list[ScalabilityPoint]:
    """Throughput/latency vs total node budget, with optimized assignments.

    The generalization of Table 8's three points: for each budget, the
    greedy optimizer picks the assignment and the simulation measures it.
    """
    if not budgets:
        raise ConfigurationError("budgets must be non-empty")
    params = params or STAPParams.paper()
    model = AnalyticPipelineModel(params, machine)
    curve = []
    for budget in budgets:
        assignment = optimize_throughput(model, budget)
        pipeline = STAPPipeline(
            params, assignment, machine=machine, num_cpis=num_cpis,
            trace=trace_dir is not None,
        )
        result = pipeline.run_measured() if measured else pipeline.run()
        _maybe_write_trace(result, pipeline, trace_dir, f"budget-{budget}")
        curve.append(
            ScalabilityPoint(
                budget=budget,
                assignment=assignment,
                throughput=result.metrics.measured_throughput,
                latency=result.metrics.measured_latency,
            )
        )
    return curve
