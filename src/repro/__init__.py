"""repro — parallel pipelined STAP on a simulated parallel computer.

A from-scratch reproduction of *"Design, Implementation and Evaluation of
Parallel Pipelined STAP on Parallel Computers"* (Choudhary, Liao, Weiner,
Varshney, Linderman, Linderman, Brown — IPPS 1998): the full PRI-staggered
post-Doppler STAP signal-processing chain, a discrete-event model of the
AFRL Intel Paragon it ran on, a simulated MPI, and the parallel pipeline
system that reproduces the paper's evaluation (Tables 1-10, Figure 11).

Quick start::

    from repro import (STAPParams, RadarScenario, CPIStream,
                       SequentialSTAP, STAPPipeline, CASE2)

    params = STAPParams.small()
    stream = CPIStream(params, RadarScenario.standard())

    # Sequential reference
    reports = SequentialSTAP(params).process_stream(stream.take(8))

    # Parallel pipeline on the simulated Paragon (timing model)
    result = STAPPipeline(STAPParams.paper(), CASE2, num_cpis=25).run()
    print(result.metrics.table())

Subpackages: :mod:`repro.des` (discrete-event engine), :mod:`repro.machine`
(Paragon model), :mod:`repro.mpi` (simulated MPI), :mod:`repro.radar`
(synthetic CPI data), :mod:`repro.stap` (signal processing),
:mod:`repro.core` (the parallel pipeline), :mod:`repro.scheduling`
(processor-assignment optimization), :mod:`repro.rt` (the real
process-parallel runtime — shared-memory stage workers on actual cores).
"""

from repro.version import __version__
from repro.errors import (
    ReproError,
    SimulationError,
    DeadlockError,
    MPIError,
    MachineError,
    ConfigurationError,
    AssignmentError,
    PipelineError,
)
from repro.radar import (
    STAPParams,
    RadarScenario,
    TargetTruth,
    JammerTruth,
    CPIDataCube,
    CPIStream,
    generate_cpi,
)
from repro.stap import SequentialSTAP, DetectionReport
from repro.machine import Machine, afrl_paragon, ruggedized_paragon
from repro.obs import TraceSink
from repro.core import (
    Assignment,
    TASK_NAMES,
    CASE1,
    CASE2,
    CASE3,
    CASE2_PLUS_DOPPLER,
    CASE2_PLUS_DOPPLER_PC_CFAR,
    STAPPipeline,
    PipelineResult,
    ReplicatedSTAPPipeline,
    RoundRobinSTAP,
)
from repro.rt import ParallelSTAP, RtResult, StagePlan

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "MPIError",
    "MachineError",
    "ConfigurationError",
    "AssignmentError",
    "STAPParams",
    "RadarScenario",
    "TargetTruth",
    "JammerTruth",
    "CPIDataCube",
    "CPIStream",
    "generate_cpi",
    "SequentialSTAP",
    "DetectionReport",
    "Machine",
    "afrl_paragon",
    "ruggedized_paragon",
    "Assignment",
    "TASK_NAMES",
    "CASE1",
    "CASE2",
    "CASE3",
    "CASE2_PLUS_DOPPLER",
    "CASE2_PLUS_DOPPLER_PC_CFAR",
    "STAPPipeline",
    "PipelineResult",
    "ReplicatedSTAPPipeline",
    "RoundRobinSTAP",
    "PipelineError",
    "ParallelSTAP",
    "RtResult",
    "StagePlan",
]
