"""The batch experiment executor: fan independent points out over workers.

The paper's evaluation is a grid of *independent* full-pipeline runs
(Tables 7–10, the Figure 11 series, scalability curves).  The executor
takes a list of :class:`~repro.exec.point.SimPoint` and returns one
:class:`PointOutcome` per point **in input order**, regardless of
completion order, so ``jobs`` never changes what a caller sees:

* ``jobs=1`` runs in-process, in order — bit-identical to the historical
  serial loops;
* ``jobs>1`` fans cache misses out over a ``ProcessPoolExecutor``;
  simulations are deterministic, so parallel results are byte-equal to
  serial ones (enforced by the golden tests in ``tests/exec/``);
* every point is first looked up in the result cache, and fresh results
  are stored back, so a repeated sweep performs zero new simulations.

One failed point does not kill the batch: its traceback is captured on
the outcome (``outcome.error``) and the remaining points still run.
Progress callbacks fire once per completed point (cache hits included)
and the :data:`repro.perf.exec_counters` totals are maintained
throughout.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ExecutionError
from repro.exec.cache import (
    USE_DEFAULT_CACHE,
    ResultCache,
    cache_key,
    resolve_cache,
)
from repro.exec.point import PointResult, SimPoint
from repro.perf import exec_counters

#: ``progress(completed_count, total, outcome)`` — called once per point,
#: in completion order (which is input order for cache hits and ``jobs=1``).
ProgressCallback = Callable[[int, int, "PointOutcome"], None]


@dataclass
class PointOutcome:
    """What happened to one submitted point."""

    index: int
    point: SimPoint
    result: Optional[PointResult] = None
    #: Formatted traceback of the failure, if any.
    error: Optional[str] = None
    #: True when the result came from the cache (no simulation ran).
    cached: bool = False
    #: Host seconds spent simulating this point (0.0 for cache hits).
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> PointResult:
        """The result, or :class:`~repro.errors.ExecutionError` on failure."""
        if self.error is not None:
            raise ExecutionError(
                f"point {self.point.display_label!r} failed:\n{self.error}"
            )
        assert self.result is not None
        return self.result


def _run_point(index: int, point: SimPoint):
    """Worker body: never raises, so one bad point cannot kill the pool."""
    start = time.perf_counter()
    try:
        result = point.run()
        return index, result, None, time.perf_counter() - start
    except Exception:
        return index, None, traceback.format_exc(), time.perf_counter() - start


def run_points(
    points: Iterable[SimPoint],
    jobs: int = 1,
    cache=USE_DEFAULT_CACHE,
    progress: Optional[ProgressCallback] = None,
) -> list[PointOutcome]:
    """Execute a batch of independent points; outcomes in input order.

    ``cache`` is the process default unless given explicitly; pass
    ``None`` to disable caching entirely.
    """
    points = list(points)
    if jobs < 1:
        raise ExecutionError(f"jobs must be >= 1, got {jobs}")
    store = resolve_cache(cache)
    total = len(points)
    outcomes: list[Optional[PointOutcome]] = [None] * total
    completed = 0

    def note(outcome: PointOutcome) -> None:
        nonlocal completed
        outcomes[outcome.index] = outcome
        completed += 1
        if outcome.error is not None:
            exec_counters.point_errors += 1
        elif not outcome.cached:
            exec_counters.simulations_run += 1
        if progress is not None:
            progress(completed, total, outcome)

    pending: list[tuple[int, SimPoint, Optional[str]]] = []
    for index, point in enumerate(points):
        exec_counters.points_submitted += 1
        key = cache_key(point) if store is not None else None
        if store is not None:
            hit = store.get(key)
            if hit is not None:
                note(PointOutcome(index=index, point=point, result=hit, cached=True))
                continue
        pending.append((index, point, key))

    if not pending:
        return outcomes  # type: ignore[return-value]

    keys = {index: key for index, _, key in pending}

    def settle(index: int, result, error, elapsed: float) -> None:
        if error is None and store is not None and keys[index] is not None:
            store.put(keys[index], result)
        note(
            PointOutcome(
                index=index,
                point=points[index],
                result=result,
                error=error,
                elapsed=elapsed,
            )
        )

    if jobs == 1 or len(pending) == 1:
        for index, point, _ in pending:
            settle(*_run_point(index, point))
        return outcomes  # type: ignore[return-value]

    workers = min(jobs, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_point, index, point): index
            for index, point, _ in pending
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    index, result, error, elapsed = future.result()
                except Exception:
                    # The pool itself failed (worker killed, unpicklable
                    # payload): charge it to the point, keep the batch.
                    index = futures[future]
                    result, error, elapsed = None, traceback.format_exc(), 0.0
                settle(index, result, error, elapsed)
    return outcomes  # type: ignore[return-value]


def execute_point(point: SimPoint, cache=USE_DEFAULT_CACHE) -> PointResult:
    """Run (or fetch) a single point; raises on failure."""
    return run_points([point], jobs=1, cache=cache)[0].unwrap()


def raise_on_failures(outcomes: Sequence[PointOutcome]) -> None:
    """Raise :class:`~repro.errors.ExecutionError` listing any failed points."""
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    lines = [f"{len(failed)} of {len(outcomes)} sweep points failed:"]
    for outcome in failed:
        summary = outcome.error.strip().splitlines()[-1] if outcome.error else "?"
        lines.append(f"  [{outcome.index}] {outcome.point.display_label}: {summary}")
    lines.append("")
    lines.append(failed[0].error or "")
    raise ExecutionError("\n".join(lines))
