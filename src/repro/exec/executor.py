"""The batch experiment executor: fan independent points out over workers.

The paper's evaluation is a grid of *independent* full-pipeline runs
(Tables 7–10, the Figure 11 series, scalability curves).  The executor
takes a list of :class:`~repro.exec.point.SimPoint` and returns one
:class:`PointOutcome` per point **in input order**, regardless of
completion order, so ``jobs`` never changes what a caller sees:

* ``jobs=1`` runs in-process, in order — bit-identical to the historical
  serial loops;
* ``jobs>1`` fans cache misses out over a ``ProcessPoolExecutor``;
  simulations are deterministic, so parallel results are byte-equal to
  serial ones (enforced by the golden tests in ``tests/exec/``);
* every point is first looked up in the result cache, and fresh results
  are stored back, so a repeated sweep performs zero new simulations.

One failed point does not kill the batch: its traceback is captured on
the outcome (``outcome.error``) and the remaining points still run.
Progress callbacks fire once per completed point (cache hits included)
and the :data:`repro.perf.exec_counters` totals are maintained
throughout.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ExecutionError
from repro.exec.cache import (
    USE_DEFAULT_CACHE,
    ResultCache,
    cache_key,
    resolve_cache,
)
from repro.exec.point import PointResult, SimPoint
from repro.perf import exec_counters

#: ``progress(completed_count, total, outcome)`` — called once per point,
#: in completion order (which is input order for cache hits and ``jobs=1``).
ProgressCallback = Callable[[int, int, "PointOutcome"], None]


@dataclass
class PointOutcome:
    """What happened to one submitted point."""

    index: int
    point: SimPoint
    result: Optional[PointResult] = None
    #: Formatted traceback of the failure, if any.
    error: Optional[str] = None
    #: True when the result came from the cache (no simulation ran).
    cached: bool = False
    #: Host seconds spent simulating this point (0.0 for cache hits).
    elapsed: float = 0.0
    #: Per-point :class:`~repro.obs.metrics.MetricsSnapshot` dict shipped
    #: back by a pool worker (None for cache hits, serial runs — which
    #: record straight into the parent registry — and metrics-off runs).
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> PointResult:
        """The result, or :class:`~repro.errors.ExecutionError` on failure."""
        if self.error is not None:
            raise ExecutionError(
                f"point {self.point.display_label!r} failed:\n{self.error}"
            )
        assert self.result is not None
        return self.result


def _warm_start(params_batch: Sequence) -> None:
    """Pool initializer: pay per-process import and plan costs up front.

    A cold pool worker spends its first point importing numpy/scipy and
    building the kernel plan before any simulation runs; with many small
    points that startup tax dominates.  Warming at pool creation moves it
    off the measured path (``benchmarks/bench_simspeed.py`` records the
    delta).  Only default-steering plans are content-addressable by
    params, which is exactly what :func:`repro.stap.plan.default_plan`
    caches — points with explicit steering simply skip the warm plan.
    """
    import numpy  # noqa: F401  (resident for every kernel call)
    import scipy.linalg  # noqa: F401  (the LSQ solver's import)

    from repro.stap.plan import default_plan

    for params in params_batch:
        try:
            default_plan(params)
        except Exception:  # pragma: no cover - warming must never kill a pool
            pass


def _run_point(index: int, point: SimPoint, collect_metrics: bool = False):
    """Worker body: never raises, so one bad point cannot kill the pool.

    With ``collect_metrics`` the worker's (forked, possibly dirty)
    registry is reset and enabled for exactly this point, and the frozen
    snapshot rides home as the fifth tuple element for the parent to
    merge — giving ``jobs>1`` the same campaign-wide totals a serial run
    records directly.
    """
    registry = None
    if collect_metrics:
        from repro.obs.metrics import metrics_registry as registry

        registry.enable(reset=True)
    start = time.perf_counter()
    try:
        result = point.run()
        error = None
    except Exception:
        result, error = None, traceback.format_exc()
    elapsed = time.perf_counter() - start
    snapshot = None
    if registry is not None:
        snapshot = registry.snapshot().to_dict()
        registry.disable()
    return index, result, error, elapsed, snapshot


def run_points(
    points: Iterable[SimPoint],
    jobs: int = 1,
    cache=USE_DEFAULT_CACHE,
    progress: Optional[ProgressCallback] = None,
) -> list[PointOutcome]:
    """Execute a batch of independent points; outcomes in input order.

    ``cache`` is the process default unless given explicitly; pass
    ``None`` to disable caching entirely.

    A call is a one-shot campaign: the points and the resolved cache form
    an ephemeral :class:`~repro.exec.campaign.Campaign` whose pull-based
    queue :func:`_execute` drains.  Bind the same points to a durable
    :class:`~repro.exec.campaign.CampaignStore` instead and the identical
    engine becomes a resumable, multi-process sweep.
    """
    from repro.exec.campaign import Campaign

    return Campaign(list(points), store=resolve_cache(cache)).run(
        jobs=jobs, progress=progress
    )


def _execute(
    points: Sequence[SimPoint],
    jobs: int,
    store: Optional[ResultCache],
    progress: Optional[ProgressCallback] = None,
) -> list[PointOutcome]:
    """The executor engine: drain one campaign's queue over ``jobs`` workers.

    ``store`` is any already-resolved result store (a plain
    :class:`ResultCache`, a :class:`~repro.exec.campaign.CampaignStore`,
    or ``None``); each point is first pulled from it (complete → served,
    no simulation) and fresh results are atomically published back.
    """
    from repro.obs.metrics import metrics_registry

    points = list(points)
    total = len(points)
    outcomes: list[Optional[PointOutcome]] = [None] * total
    completed = 0
    metered = metrics_registry.enabled

    def note(outcome: PointOutcome) -> None:
        nonlocal completed
        outcomes[outcome.index] = outcome
        completed += 1
        if outcome.error is not None:
            exec_counters.inc("point_errors")
            status = "error"
        elif outcome.cached:
            status = "cached"
        else:
            exec_counters.inc("simulations_run")
            status = "simulated"
        if metered:
            metrics_registry.counter(
                "exec_points_total", "points completed by the batch executor",
                labels={"status": status},
            ).inc()
            if status == "simulated":
                metrics_registry.histogram(
                    "exec_point_seconds", "host seconds per simulated point",
                ).observe(outcome.elapsed)
        if progress is not None:
            # Containment: a flaky progress consumer (a dashboard writing
            # to a closed terminal, say) must not kill a multi-hour sweep.
            try:
                progress(completed, total, outcome)
            except Exception:
                exec_counters.inc("progress_errors")

    pending: list[tuple[int, SimPoint, Optional[str]]] = []
    for index, point in enumerate(points):
        exec_counters.inc("points_submitted")
        # rt points time real processes: not content-addressable, never
        # looked up or stored.
        key = (cache_key(point)
               if store is not None and point.cacheable else None)
        if key is not None:
            hit = store.get(key)
            if hit is not None:
                note(PointOutcome(index=index, point=point, result=hit, cached=True))
                continue
        pending.append((index, point, key))

    if not pending:
        return outcomes  # type: ignore[return-value]

    keys = {index: key for index, _, key in pending}

    def settle(index: int, result, error, elapsed: float,
               metrics: Optional[dict] = None) -> None:
        if error is None and store is not None and keys[index] is not None:
            store.put(keys[index], result)
        if metrics is not None:
            # Worker snapshots fold into the parent registry as they land,
            # so the merged totals match what a serial sweep records.
            metrics_registry.merge(metrics)
        note(
            PointOutcome(
                index=index,
                point=points[index],
                result=result,
                error=error,
                elapsed=elapsed,
                metrics=metrics,
            )
        )

    if jobs == 1 or len(pending) == 1:
        # In-process points record into the parent registry directly via
        # the pipeline's own flush; collecting per-point snapshots here
        # would double-count.
        for index, point, _ in pending:
            settle(*_run_point(index, point))
        return outcomes  # type: ignore[return-value]

    workers = min(jobs, len(pending))
    warm_params = tuple({point.params for _, point, _ in pending})
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_warm_start,
        initargs=(warm_params,),
    ) as pool:
        futures = {
            pool.submit(_run_point, index, point, metered): index
            for index, point, _ in pending
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    index, result, error, elapsed, metrics = future.result()
                except Exception:
                    # The pool itself failed (worker killed, unpicklable
                    # payload): charge it to the point, keep the batch.
                    index = futures[future]
                    result, error, elapsed, metrics = (
                        None, traceback.format_exc(), 0.0, None,
                    )
                settle(index, result, error, elapsed, metrics)
    return outcomes  # type: ignore[return-value]


def execute_point(point: SimPoint, cache=USE_DEFAULT_CACHE) -> PointResult:
    """Run (or fetch) a single point; raises on failure."""
    return run_points([point], jobs=1, cache=cache)[0].unwrap()


def raise_on_failures(outcomes: Sequence[PointOutcome]) -> None:
    """Raise :class:`~repro.errors.ExecutionError` listing any failed points."""
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    lines = [f"{len(failed)} of {len(outcomes)} sweep points failed:"]
    for outcome in failed:
        summary = outcome.error.strip().splitlines()[-1] if outcome.error else "?"
        lines.append(f"  [{outcome.index}] {outcome.point.display_label}: {summary}")
    lines.append("")
    lines.append(failed[0].error or "")
    raise ExecutionError("\n".join(lines))
