"""Durable experiment campaigns: a shared store plus a pull-based queue.

The paper's evaluation is a grid of machine/assignment points (Tables
7–10, Figure 11); the Monte-Carlo and mapping-search directions multiply
that grid by orders of magnitude.  A multi-hour sweep must therefore
survive interruption, be shareable between processes, and report progress
from disk — none of which a per-process :class:`~repro.exec.cache.ResultCache`
plus a one-shot :func:`~repro.exec.run_points` call can do.  This module
turns :mod:`repro.exec` into a campaign subsystem:

* :class:`CampaignStore` generalizes the result cache into a shared
  on-disk store: content-addressed results under ``<dir>/results/`` plus
  a versioned ``manifest.json`` of declared points, everything published
  atomically (tmp + ``os.replace``), every corrupt or stale entry a clean
  miss;
* :class:`Campaign` is the **pull-based two-state work queue** over that
  store, in the style of the dashcam-processor task model: a point is
  *pending* while its key is absent from the store and *complete* once a
  result is published under it.  There is deliberately no claimed or
  leased state — points are idempotent (simulations are deterministic),
  so any worker process may pull a pending point, run it, and publish;
  the worst concurrent outcome is one duplicated simulation whose
  byte-identical result wins the last atomic write.  Crash recovery is
  therefore trivial: restart the campaign against the same store and it
  resumes exactly where the store says, serving completed points as
  cache hits and simulating only what is missing.

A manifest records enough of each point (:func:`point_spec`) to rebuild
the full :class:`~repro.exec.point.SimPoint` from disk alone, so
:func:`load_campaign` can resume — or a second terminal can report on —
a campaign its process did not start.  Results remain plain
content-addressed entries shared *across* campaigns: two campaigns
declaring the same point share one simulation.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.core.assignment import Assignment
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.cache import (
    CACHE_SCHEMA,
    MANIFEST_SCHEMA,
    ResultCache,
    cache_key,
)
from repro.exec.point import SimPoint
from repro.machine import Machine
from repro.machine.cost_model import NetworkCostModel, PackingCostModel
from repro.machine.mesh import Mesh2D
from repro.machine.node import ComputeRateTable, NodeModel
from repro.machine.paragon import SpeedRegion
from repro.radar.parameters import STAPParams
from repro.version import __version__

#: File names inside a campaign directory.
MANIFEST_NAME = "manifest.json"
RESULTS_DIR = "results"


# -- point (de)serialization ---------------------------------------------------------
def _encode(value):
    """JSON-ready form of one spec value; floats round-trip exactly."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # float.hex round-trips every bit pattern; a plain JSON float
        # would be close but the cache keys on exact bits.
        return {"float": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    raise ConfigurationError(
        f"cannot serialize campaign spec value {value!r} "
        f"({type(value).__name__})"
    )


def _decode(value):
    if isinstance(value, dict):
        return float.fromhex(value["float"])
    if isinstance(value, list):
        return tuple(_decode(v) for v in value)
    return value


def _machine_spec(machine: Optional[Machine]) -> Optional[dict]:
    """A JSON document from which a :class:`Machine` can be rebuilt.

    ``None`` (the default machine) stays ``None``.  Floats go through
    :func:`_encode` so the rebuilt machine's cache fingerprint is
    bit-identical to the original's.
    """
    if machine is None:
        return None
    return {
        "mesh": [machine.mesh.width, machine.mesh.height],
        "node": {
            "rates": {
                kernel: _encode(rate)
                for kernel, rate in sorted(machine.node.rates.rates.items())
            },
            "processors_per_node": machine.node.processors_per_node,
            "memory_bytes": machine.node.memory_bytes,
            "smp_efficiency": _encode(machine.node.smp_efficiency),
        },
        "network_cost": {
            "startup_s": _encode(machine.network_cost.startup_s),
            "per_byte_s": _encode(machine.network_cost.per_byte_s),
            "per_hop_s": _encode(machine.network_cost.per_hop_s),
        },
        "packing_cost": {
            "contiguous_per_byte_s": _encode(
                machine.packing_cost.contiguous_per_byte_s
            ),
            "strided_per_byte_s": _encode(machine.packing_cost.strided_per_byte_s),
        },
        "name": machine.name,
        "speed_regions": [
            [region.start, region.stop, _encode(region.factor)]
            for region in machine.speed_regions
        ],
    }


def _machine_from_spec(spec: Optional[dict]) -> Optional[Machine]:
    if spec is None:
        return None
    return Machine(
        mesh=Mesh2D(*spec["mesh"]),
        node=NodeModel(
            rates=ComputeRateTable(
                {k: _decode(v) for k, v in spec["node"]["rates"].items()}
            ),
            processors_per_node=spec["node"]["processors_per_node"],
            memory_bytes=spec["node"]["memory_bytes"],
            smp_efficiency=_decode(spec["node"]["smp_efficiency"]),
        ),
        network_cost=NetworkCostModel(
            startup_s=_decode(spec["network_cost"]["startup_s"]),
            per_byte_s=_decode(spec["network_cost"]["per_byte_s"]),
            per_hop_s=_decode(spec["network_cost"]["per_hop_s"]),
        ),
        packing_cost=PackingCostModel(
            contiguous_per_byte_s=_decode(
                spec["packing_cost"]["contiguous_per_byte_s"]
            ),
            strided_per_byte_s=_decode(spec["packing_cost"]["strided_per_byte_s"]),
        ),
        name=spec["name"],
        speed_regions=tuple(
            SpeedRegion(start, stop, _decode(factor))
            for start, stop, factor in spec["speed_regions"]
        ),
    )


def point_spec(point: SimPoint) -> dict:
    """A JSON document from which ``point`` can be rebuilt exactly.

    Covers every durable-campaign point: ``modeled`` mode on the default
    machine or any explicit :class:`~repro.machine.Machine` (the tuner's
    heterogeneous scenarios included).  rt points time real hardware (not
    content-addressable), so they are rejected — campaigns over such
    points still run in-process, they just cannot be resumed from the
    manifest alone.
    """
    if not point.cacheable:
        raise ConfigurationError(
            f"point {point.display_label!r} is not content-addressable "
            f"(mode={point.mode!r}); only modeled points have campaign specs"
        )
    return {
        "machine": _machine_spec(point.machine),
        "params": {
            f.name: _encode(getattr(point.params, f.name))
            for f in dataclasses.fields(point.params)
        },
        "assignment": {
            "counts": list(point.assignment.counts()),
            "name": point.assignment.name,
        },
        "num_cpis": point.num_cpis,
        "mode": point.mode,
        "input_rate": _encode(point.input_rate),
        "contention": str(point.contention),
        "azimuth_cycle": point.azimuth_cycle,
        "double_buffering": point.double_buffering,
        "collect_training": point.collect_training,
        "measured": point.measured,
        "backend": point.backend,
        "label": point.label,
    }


def point_from_spec(spec: dict) -> SimPoint:
    """Rebuild a :class:`SimPoint` from its manifest spec."""
    params = STAPParams(
        **{name: _decode(value) for name, value in spec["params"].items()}
    )
    assignment = Assignment(
        *spec["assignment"]["counts"], name=spec["assignment"]["name"]
    )
    return SimPoint(
        params,
        assignment,
        machine=_machine_from_spec(spec.get("machine")),
        num_cpis=spec["num_cpis"],
        mode=spec["mode"],
        input_rate=_decode(spec["input_rate"]),
        contention=spec["contention"],
        azimuth_cycle=spec["azimuth_cycle"],
        double_buffering=spec["double_buffering"],
        collect_training=spec["collect_training"],
        measured=spec["measured"],
        backend=spec["backend"],
        label=spec["label"],
    )


# -- progress ------------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignProgress:
    """A campaign's state as read from its store — no live process needed."""

    name: str
    total: int
    complete: int
    #: task -> comp-seconds of each completed point whose result loaded
    #: (empty when results were not loaded, or for a manifest-less store).
    stage_comp: dict = field(default_factory=dict)
    #: Seconds spanned by the completed results' publish mtimes (0.0 with
    #: fewer than two results on disk, so :attr:`rate` reads unknown).
    span_seconds: float = 0.0

    @property
    def pending(self) -> int:
        return self.total - self.complete

    @property
    def fraction(self) -> float:
        return self.complete / self.total if self.total else 0.0

    @property
    def rate(self) -> float:
        """Historical points/s over the publish-time span (NaN if unknown)."""
        if self.span_seconds > 0 and self.complete > 1:
            return self.complete / self.span_seconds
        return float("nan")

    @property
    def eta_seconds(self) -> float:
        rate = self.rate
        if rate != rate or rate <= 0:
            return float("nan")
        return self.pending / rate


# -- the store -----------------------------------------------------------------------
class CampaignStore(ResultCache):
    """Shared on-disk campaign store: content-addressed results + manifest.

    Layout under ``directory``::

        manifest.json        # versioned list of declared points
        results/<key>.pkl    # one atomic content-addressed entry per point

    The results layer *is* a :class:`ResultCache` (this class plugs
    directly into ``run_points(cache=...)``); the manifest is what makes
    a campaign more than a cache: the declared point set is durable, so
    progress, pending work, and full resumption can all be derived from
    the directory alone.  ``directory=None`` builds an **ephemeral**
    store (in-memory results, in-memory manifest) — the degenerate
    campaign a plain ``run_points`` call runs over.

    Staleness is never an error: a manifest written under a different
    :data:`~repro.exec.cache.MANIFEST_SCHEMA`, :data:`~repro.exec.cache.CACHE_SCHEMA`,
    or package version loads as *empty* (every point cleanly pending),
    mirroring how old-schema result entries simply miss because the
    schema is part of every key.
    """

    def __init__(self, directory=None, name: str = "campaign",
                 maxsize: int = 256):
        self.root = Path(directory) if directory is not None else None
        super().__init__(
            maxsize=maxsize,
            directory=self.root / RESULTS_DIR if self.root else None,
        )
        self.name = name
        #: key -> {"label": str, "spec": dict | None}, in declaration order.
        self._points: OrderedDict[str, dict] = OrderedDict()
        #: True when an on-disk manifest existed but belonged to an older
        #: schema/version era and was therefore ignored.
        self.stale_manifest = False
        if self.root is not None:
            loaded, stale = self._read_manifest()
            self._points.update(loaded)
            self.stale_manifest = stale

    # -- manifest ----------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> tuple[OrderedDict, bool]:
        """The on-disk manifest's points, or empty — never an error.

        Returns ``(points, stale)`` where ``stale`` marks a manifest that
        existed but was unreadable or from another schema/version era.
        """
        empty: OrderedDict[str, dict] = OrderedDict()
        try:
            document = json.loads(self._manifest_path().read_text())
        except FileNotFoundError:
            return empty, False
        except (OSError, ValueError):
            return empty, True
        if not isinstance(document, dict):
            return empty, True
        if (
            document.get("schema") != MANIFEST_SCHEMA
            or document.get("cache_schema") != CACHE_SCHEMA
            or document.get("version") != __version__
        ):
            return empty, True
        name = document.get("name")
        if isinstance(name, str) and name:
            self.name = name
        points: OrderedDict[str, dict] = OrderedDict()
        for entry in document.get("points") or []:
            if not isinstance(entry, dict):
                continue
            key = entry.get("key")
            if isinstance(key, str) and key:
                points[key] = {
                    "label": entry.get("label", ""),
                    "spec": entry.get("spec"),
                }
        return points, False

    def _write_manifest(self) -> None:
        """Atomically publish the manifest (tmp + ``os.replace``)."""
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": MANIFEST_SCHEMA,
            "cache_schema": CACHE_SCHEMA,
            "version": __version__,
            "name": self.name,
            "points": [
                {"key": key, "label": entry["label"], "spec": entry["spec"]}
                for key, entry in self._points.items()
            ],
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".manifest-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1)
            os.replace(tmp_name, self._manifest_path())
        except BaseException as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if not isinstance(error, OSError):
                raise

    def declare(self, points: Sequence[SimPoint]) -> list[str]:
        """Record ``points`` in the manifest; their keys, in input order.

        Idempotent — re-declaring known keys changes nothing, which is
        what makes resumption safe to repeat.  Before writing, the
        on-disk manifest is re-read and merged, so two processes
        declaring different point sets into one store converge (plain
        last-writer-wins on the file, but each writer carries the other's
        points forward).  Points that cannot be content-addressed
        (``rt`` mode) are rejected: a campaign *is* its content-addressed
        result set.
        """
        keys = []
        fresh = False
        for point in points:
            if not point.cacheable:
                raise ConfigurationError(
                    f"point {point.display_label!r} (mode={point.mode!r}) is "
                    "not content-addressable and cannot join a campaign"
                )
            key = cache_key(point)
            keys.append(key)
            if key not in self._points:
                try:
                    spec = point_spec(point)
                except ConfigurationError:
                    # Custom machine: tracked and cached, but only the
                    # declaring script can rebuild it (points() raises).
                    spec = None
                self._points[key] = {
                    "label": point.display_label, "spec": spec,
                }
                fresh = True
        if fresh and self.root is not None:
            on_disk, _ = self._read_manifest()
            for key, entry in on_disk.items():
                self._points.setdefault(key, entry)
            self._write_manifest()
        return keys

    # -- queue views -------------------------------------------------------------
    def declared_keys(self) -> list[str]:
        """Keys of every declared point, in declaration order."""
        return list(self._points)

    def entry(self, key: str) -> Optional[dict]:
        """The manifest entry (label/spec) for ``key``, if declared."""
        found = self._points.get(key)
        return dict(found) if found is not None else None

    def state(self, key: str) -> str:
        """The two-state queue test: ``complete`` iff a result exists."""
        return "complete" if self.contains(key) else "pending"

    def pending_keys(self) -> list[str]:
        return [k for k in self._points if not self.contains(k)]

    def complete_keys(self) -> list[str]:
        return [k for k in self._points if self.contains(k)]

    def points(self) -> list[SimPoint]:
        """Every declared point, rebuilt from its manifest spec.

        This is the resume path: a process that did not create the
        campaign reconstructs the exact point set from disk.
        """
        rebuilt = []
        for key, entry in self._points.items():
            spec = entry.get("spec")
            if spec is None:
                raise ExecutionError(
                    f"campaign point {entry.get('label')!r} ({key[:12]}…) "
                    "has no stored spec (custom machine); resume it from "
                    "the script that declared it"
                )
            rebuilt.append(point_from_spec(spec))
        return rebuilt

    # -- progress ----------------------------------------------------------------
    def progress(self, load_results: bool = True) -> CampaignProgress:
        """Campaign progress derived from the store alone.

        ``load_results`` additionally unpickles each completed result for
        the per-stage comp-seconds breakdown — linear in completed
        points, so a status probe against a huge campaign can pass
        ``False`` to stay O(directory listing).  Reads go through
        :meth:`~ResultCache.peek`, so probing never perturbs the
        hit/miss counters a live run is accumulating.
        """
        complete = 0
        mtimes = []
        stage_comp: dict[str, list[float]] = {}
        for key in self._points:
            if not self.contains(key):
                continue
            complete += 1
            if self.directory is not None:
                try:
                    mtimes.append(self._disk_path(key).stat().st_mtime)
                except OSError:
                    pass
            if load_results:
                result = self.peek(key)
                metrics = getattr(result, "metrics", None)
                if metrics is None:
                    continue
                for task, tm in metrics.tasks.items():
                    stage_comp.setdefault(task, []).append(tm.comp)
        span = max(mtimes) - min(mtimes) if len(mtimes) > 1 else 0.0
        return CampaignProgress(
            name=self.name,
            total=len(self._points),
            complete=complete,
            stage_comp=stage_comp,
            span_seconds=span,
        )


# -- the campaign --------------------------------------------------------------------
class Campaign:
    """A point set bound to a store: the pull-based two-state work queue.

    ``store`` may be a :class:`CampaignStore` (declared durably at
    construction), a plain :class:`ResultCache` (an ephemeral campaign —
    exactly what :func:`~repro.exec.run_points` wraps every batch in), or
    ``None`` (no store: every point always pending, nothing published).

    Execution *is* the queue discipline: :meth:`run` pulls each point,
    serves it from the store when its key is already complete, simulates
    and atomically publishes otherwise.  Because points are idempotent
    there is no claimed state to clean up — kill the process at any
    instant and a rerun resumes from exactly the published set.
    """

    def __init__(self, points: Sequence[SimPoint], store=None,
                 name: Optional[str] = None):
        self.points = list(points)
        self.store = store
        if isinstance(store, CampaignStore):
            if name:
                store.name = name
            self.keys: Optional[list[str]] = store.declare(self.points)
        else:
            self.keys = None

    # -- queue views -------------------------------------------------------------
    def _key(self, index: int) -> Optional[str]:
        point = self.points[index]
        if not point.cacheable:
            return None
        if self.keys is not None:
            return self.keys[index]
        return cache_key(point)

    def state(self, index: int) -> str:
        """Two-state test for one point: complete iff published."""
        if self.store is None:
            return "pending"
        key = self._key(index)
        if key is None:
            return "pending"
        return "complete" if self.store.contains(key) else "pending"

    def pending(self) -> list[SimPoint]:
        """Points with no published result, in input order."""
        return [p for i, p in enumerate(self.points)
                if self.state(i) == "pending"]

    def progress(self) -> CampaignProgress:
        """Progress over this campaign's own point set."""
        if isinstance(self.store, CampaignStore):
            return self.store.progress()
        complete = sum(
            1 for i in range(len(self.points)) if self.state(i) == "complete"
        )
        return CampaignProgress(
            name="campaign", total=len(self.points), complete=complete,
        )

    # -- execution ---------------------------------------------------------------
    def run(self, jobs: int = 1, progress=None, limit: Optional[int] = None):
        """Drain the queue; one :class:`~repro.exec.executor.PointOutcome`
        per processed point, in input order.

        ``limit`` bounds how many *pending* points this call may
        simulate: complete points are still served from the store, the
        first ``limit`` pending points run, and the rest are left
        untouched for a later call (the cooperative form of
        interruption; outcomes then cover only the processed subset).
        """
        from repro.exec.executor import _execute

        if jobs < 1:
            raise ExecutionError(f"jobs must be >= 1, got {jobs}")
        points = self.points
        if limit is not None:
            budget = max(limit, 0)
            chosen = []
            for index, point in enumerate(points):
                if self.state(index) == "complete":
                    chosen.append(point)
                elif budget > 0:
                    chosen.append(point)
                    budget -= 1
            points = chosen
        return _execute(points, jobs=jobs, store=self.store,
                        progress=progress)


def load_campaign(directory, name: Optional[str] = None) -> Campaign:
    """Rebuild a campaign purely from its on-disk store.

    The resume entry point: any process pointed at the directory gets
    the declared point set back (manifest specs) bound to the shared
    store, and :meth:`Campaign.run` finishes whatever is still pending.
    """
    store = CampaignStore(directory, name=name or "campaign")
    if not store.declared_keys():
        detail = (" (its manifest was written by an older schema/version "
                  "and reads as empty)" if store.stale_manifest else "")
        raise ExecutionError(
            f"no campaign manifest at {directory}{detail}"
        )
    return Campaign(store.points(), store=store)
