"""Batch experiment execution: parallel fan-out + content-addressed caching.

The paper's evaluation is a grid of independent full-pipeline simulations.
This package runs such grids as fast as the host allows:

* :class:`SimPoint` — one simulation as a frozen, hashable, picklable value;
* :func:`run_points` — the executor: deterministic input-order results,
  per-point error capture, progress callbacks, a ``jobs`` knob fanning
  cache misses over a process pool;
* :class:`ResultCache` / :func:`cache_key` — the content-addressed result
  store (in-process LRU + optional on-disk layer) keyed on everything the
  simulation depends on;
* :class:`CampaignStore` / :class:`Campaign` / :func:`load_campaign` —
  the durable campaign subsystem (:mod:`repro.exec.campaign`): a shared
  on-disk store with a versioned manifest of declared points plus the
  pull-based pending/complete work queue, so multi-hour sweeps resume
  across processes and runs (``repro-stap campaign run/status/resume``);
* :data:`repro.perf.exec_counters` — always-on counters proving, e.g.,
  that a repeated sweep performed zero new simulations.

Quick start::

    from repro import CASE3, STAPParams
    from repro.exec import SimPoint, run_points

    points = [SimPoint(STAPParams.paper(), CASE3.with_counts(cfar=n))
              for n in (4, 8, 16)]
    outcomes = run_points(points, jobs=4)
    for o in outcomes:
        print(o.point.display_label, o.unwrap().metrics.measured_throughput)

Used by :mod:`repro.experiments.sweeps`, ``benchmarks/common.py`` (and
through it every ``bench_table*`` script), the ``repro-stap sweep`` CLI,
and the ``run_measured`` probe phase.
"""

from repro.exec.cache import (
    CACHE_SCHEMA,
    MANIFEST_SCHEMA,
    USE_DEFAULT_CACHE,
    ResultCache,
    cache_key,
    get_default_cache,
    machine_fingerprint,
    point_fingerprint,
    resolve_cache,
    set_default_cache,
)
from repro.exec.executor import (
    PointOutcome,
    execute_point,
    raise_on_failures,
    run_points,
)
from repro.exec.point import PointResult, SimPoint, probe_throughput
from repro.exec.campaign import (
    Campaign,
    CampaignProgress,
    CampaignStore,
    load_campaign,
    point_from_spec,
    point_spec,
)

__all__ = [
    "CACHE_SCHEMA",
    "MANIFEST_SCHEMA",
    "USE_DEFAULT_CACHE",
    "ResultCache",
    "cache_key",
    "get_default_cache",
    "set_default_cache",
    "resolve_cache",
    "machine_fingerprint",
    "point_fingerprint",
    "PointOutcome",
    "PointResult",
    "SimPoint",
    "probe_throughput",
    "execute_point",
    "raise_on_failures",
    "run_points",
    "Campaign",
    "CampaignProgress",
    "CampaignStore",
    "load_campaign",
    "point_spec",
    "point_from_spec",
]
