"""One batch-executable simulation point and its (cacheable) result.

A :class:`SimPoint` is the *description* of one full-pipeline simulation —
everything :class:`~repro.core.pipeline.STAPPipeline` needs, as a frozen,
picklable value object, so points can be content-hashed for the result
cache and shipped to worker processes.  A :class:`PointResult` is the part
of a run worth keeping: the metrics and run-level counters, without the
raw per-rank collector or trace sink (which would dominate IPC and disk
cost without being used by any sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.assignment import Assignment
from repro.core.metrics import PipelineMetrics, TaskMetrics
from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.radar.parameters import STAPParams
from repro.radar.scenario import RadarScenario


@dataclass(frozen=True)
class SimPoint:
    """One independent experiment point of a sweep.

    ``machine=None`` means the default AFRL Paragon, resolved inside
    :meth:`run` so the point itself stays light to pickle.  ``measured``
    selects the two-phase :meth:`~repro.core.pipeline.STAPPipeline.run_measured`
    measurement instead of a plain run.

    Two modes run through the executor:

    * ``modeled`` — the discrete-event simulator.  Deterministic and
      content-addressable, so results go through the cache.
    * ``rt`` — the real process-parallel runtime (:mod:`repro.rt`) on the
      point's ``scenario`` (default: the standard evaluation scenario)
      with ``rt_workers`` worker processes.  Wall-clock measurements are
      machine- and load-dependent, so rt points are **never cached**
      (:attr:`cacheable` is false).
    """

    #: Modes the executor accepts.
    MODES = ("modeled", "rt")

    params: STAPParams
    assignment: Assignment
    machine: Optional[Machine] = None
    num_cpis: int = 25
    mode: str = "modeled"
    input_rate: Optional[float] = None
    contention: str = "endpoint"
    azimuth_cycle: int = 1
    double_buffering: bool = True
    collect_training: bool = True
    measured: bool = False
    #: Simulator backend (``None`` = reference engine, or one of
    #: ``python`` / ``lowered`` / ``compiled`` / ``auto``).  The *resolved*
    #: identity goes into the cache key, so an ``auto`` point hashes to
    #: whichever core it actually runs on.
    backend: Optional[str] = None
    #: Display name for progress output; defaults to the assignment's name.
    label: str = ""
    #: Radar environment for ``rt`` points (``None`` = the standard
    #: scenario).  Ignored by modeled points.
    scenario: Optional[RadarScenario] = None
    #: Worker-process budget for ``rt`` points (``None`` = one per stage).
    rt_workers: Optional[int] = None

    def __post_init__(self):
        if self.mode not in self.MODES:
            raise ConfigurationError(
                f"the executor supports modes {self.MODES}, got {self.mode!r}"
            )
        if self.backend not in (None, "auto", "python", "lowered", "compiled"):
            raise ConfigurationError(
                f"unknown simulator backend {self.backend!r}; expected one of "
                "('python', 'lowered', 'compiled', 'auto')"
            )
        if self.mode == "rt" and self.measured:
            raise ConfigurationError(
                "rt points are always measured for real; drop measured=True"
            )

    @property
    def cacheable(self) -> bool:
        """Whether the result is a pure function of the point's content.

        Modeled points are; rt points time real processes on whatever
        machine runs them, so their results must never be replayed from
        the cache."""
        return self.mode == "modeled"

    @property
    def display_label(self) -> str:
        return self.label or self.assignment.name or f"{self.assignment.counts()}"

    # -- execution ---------------------------------------------------------------
    def build_pipeline(self, trace: bool = False):
        from repro.core.pipeline import STAPPipeline

        return STAPPipeline(
            self.params,
            self.assignment,
            machine=self.machine,
            mode=self.mode,
            num_cpis=self.num_cpis,
            contention=self.contention,
            azimuth_cycle=self.azimuth_cycle,
            input_rate=self.input_rate,
            double_buffering=self.double_buffering,
            collect_training=self.collect_training,
            trace=trace,
            backend=self.backend,
        )

    def run(self) -> "PointResult":
        """Simulate (or really execute) this point; see the executor for
        caching."""
        if self.mode == "rt":
            return self._run_rt()
        pipeline = self.build_pipeline()
        result = pipeline.run_measured() if self.measured else pipeline.run()
        return PointResult.from_pipeline_result(result)

    def _run_rt(self) -> "PointResult":
        from repro.radar.datacube import CPIStream
        from repro.rt import ParallelSTAP

        stream = CPIStream(
            self.params, self.scenario, azimuth_cycle=self.azimuth_cycle
        )
        rt = ParallelSTAP(
            self.params,
            stream,
            num_cpis=self.num_cpis,
            azimuth_cycle=self.azimuth_cycle,
            assignment=self.assignment,
            workers=self.rt_workers,
        )
        return PointResult.from_rt_result(rt.run(), self.assignment)


@dataclass
class PointResult:
    """The cacheable outcome of one simulated point."""

    metrics: PipelineMetrics
    makespan: float
    network_messages: int
    network_bytes: int
    num_cpis: int
    assignment: Assignment

    @classmethod
    def from_pipeline_result(cls, result) -> "PointResult":
        return cls(
            metrics=result.metrics,
            makespan=result.makespan,
            network_messages=result.network_messages,
            network_bytes=result.network_bytes,
            num_cpis=result.num_cpis,
            assignment=result.assignment,
        )

    @classmethod
    def from_rt_result(cls, rt_result, assignment: Assignment) -> "PointResult":
        """Wrap an :class:`repro.rt.RtResult` as a point result.

        Only the *measured* fields are meaningful: the runtime times real
        processes, so there are no modeled per-phase timings.  The task
        table records each stage's replica count with zero phase times —
        enough for occupancy accounting, but the equation properties
        (which divide by task totals) are not defined for rt results.
        """
        tasks = {
            stage: TaskMetrics(
                task=stage, num_nodes=replicas, recv=0.0, comp=0.0, send=0.0
            )
            for stage, replicas in rt_result.plan.as_dict().items()
        }
        metrics = PipelineMetrics(
            tasks=tasks,
            measured_throughput=rt_result.steady_throughput,
            measured_latency=rt_result.latency,
        )
        return cls(
            metrics=metrics,
            makespan=rt_result.elapsed_seconds,
            network_messages=0,
            network_bytes=0,
            num_cpis=rt_result.num_cpis,
            assignment=assignment,
        )


def probe_throughput(pipeline) -> Optional[float]:
    """Cached throughput for ``run_measured``'s probe phase, if cacheable.

    The probe is an ordinary unpaced run of the pipeline's own
    configuration; identical configurations probe to identical
    throughputs, so the probe routes through the result cache.  Returns
    ``None`` when the configuration is not content-addressable (functional
    mode, or a non-default steering matrix) and the caller must run the
    probe itself.
    """
    from repro.exec.cache import cache_key, get_default_cache
    from repro.perf import exec_counters

    if pipeline.mode != "modeled" or not getattr(
        pipeline, "_default_steering", False
    ):
        return None
    point = SimPoint(
        pipeline.params,
        pipeline.assignment,
        machine=pipeline.machine,
        num_cpis=pipeline.num_cpis,
        input_rate=pipeline.input_rate,
        contention=str(pipeline.contention),
        azimuth_cycle=pipeline.azimuth_cycle,
        double_buffering=pipeline.double_buffering,
        collect_training=pipeline.collect_training,
        measured=False,
        backend=pipeline.requested_backend,
    )
    cache = get_default_cache()
    key = cache_key(point)
    hit = cache.get(key)
    if hit is not None:
        exec_counters.inc("probe_cache_hits")
        return hit.metrics.measured_throughput
    result = point.run()
    exec_counters.inc("simulations_run")
    cache.put(key, result)
    return result.metrics.measured_throughput
