"""One batch-executable simulation point and its (cacheable) result.

A :class:`SimPoint` is the *description* of one full-pipeline simulation —
everything :class:`~repro.core.pipeline.STAPPipeline` needs, as a frozen,
picklable value object, so points can be content-hashed for the result
cache and shipped to worker processes.  A :class:`PointResult` is the part
of a run worth keeping: the metrics and run-level counters, without the
raw per-rank collector or trace sink (which would dominate IPC and disk
cost without being used by any sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.assignment import Assignment
from repro.core.metrics import PipelineMetrics
from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.radar.parameters import STAPParams


@dataclass(frozen=True)
class SimPoint:
    """One independent experiment point of a sweep.

    ``machine=None`` means the default AFRL Paragon, resolved inside
    :meth:`run` so the point itself stays light to pickle.  ``measured``
    selects the two-phase :meth:`~repro.core.pipeline.STAPPipeline.run_measured`
    measurement instead of a plain run.  Only ``modeled`` mode is
    supported: functional runs need a CPI stream, which is neither
    picklable nor coverable by the content key.
    """

    params: STAPParams
    assignment: Assignment
    machine: Optional[Machine] = None
    num_cpis: int = 25
    mode: str = "modeled"
    input_rate: Optional[float] = None
    contention: str = "endpoint"
    azimuth_cycle: int = 1
    double_buffering: bool = True
    collect_training: bool = True
    measured: bool = False
    #: Simulator backend (``None`` = reference engine, or one of
    #: ``python`` / ``lowered`` / ``compiled`` / ``auto``).  The *resolved*
    #: identity goes into the cache key, so an ``auto`` point hashes to
    #: whichever core it actually runs on.
    backend: Optional[str] = None
    #: Display name for progress output; defaults to the assignment's name.
    label: str = ""

    def __post_init__(self):
        if self.mode != "modeled":
            raise ConfigurationError(
                f"the executor supports modeled-mode points only, got {self.mode!r}"
            )
        if self.backend not in (None, "auto", "python", "lowered", "compiled"):
            raise ConfigurationError(
                f"unknown simulator backend {self.backend!r}; expected one of "
                "('python', 'lowered', 'compiled', 'auto')"
            )

    @property
    def display_label(self) -> str:
        return self.label or self.assignment.name or f"{self.assignment.counts()}"

    # -- execution ---------------------------------------------------------------
    def build_pipeline(self, trace: bool = False):
        from repro.core.pipeline import STAPPipeline

        return STAPPipeline(
            self.params,
            self.assignment,
            machine=self.machine,
            mode=self.mode,
            num_cpis=self.num_cpis,
            contention=self.contention,
            azimuth_cycle=self.azimuth_cycle,
            input_rate=self.input_rate,
            double_buffering=self.double_buffering,
            collect_training=self.collect_training,
            trace=trace,
            backend=self.backend,
        )

    def run(self) -> "PointResult":
        """Simulate this point (no caching here; see the executor)."""
        pipeline = self.build_pipeline()
        result = pipeline.run_measured() if self.measured else pipeline.run()
        return PointResult.from_pipeline_result(result)


@dataclass
class PointResult:
    """The cacheable outcome of one simulated point."""

    metrics: PipelineMetrics
    makespan: float
    network_messages: int
    network_bytes: int
    num_cpis: int
    assignment: Assignment

    @classmethod
    def from_pipeline_result(cls, result) -> "PointResult":
        return cls(
            metrics=result.metrics,
            makespan=result.makespan,
            network_messages=result.network_messages,
            network_bytes=result.network_bytes,
            num_cpis=result.num_cpis,
            assignment=result.assignment,
        )


def probe_throughput(pipeline) -> Optional[float]:
    """Cached throughput for ``run_measured``'s probe phase, if cacheable.

    The probe is an ordinary unpaced run of the pipeline's own
    configuration; identical configurations probe to identical
    throughputs, so the probe routes through the result cache.  Returns
    ``None`` when the configuration is not content-addressable (functional
    mode, or a non-default steering matrix) and the caller must run the
    probe itself.
    """
    from repro.exec.cache import cache_key, get_default_cache
    from repro.perf import exec_counters

    if pipeline.mode != "modeled" or not getattr(
        pipeline, "_default_steering", False
    ):
        return None
    point = SimPoint(
        pipeline.params,
        pipeline.assignment,
        machine=pipeline.machine,
        num_cpis=pipeline.num_cpis,
        input_rate=pipeline.input_rate,
        contention=str(pipeline.contention),
        azimuth_cycle=pipeline.azimuth_cycle,
        double_buffering=pipeline.double_buffering,
        collect_training=pipeline.collect_training,
        measured=False,
        backend=pipeline.requested_backend,
    )
    cache = get_default_cache()
    key = cache_key(point)
    hit = cache.get(key)
    if hit is not None:
        exec_counters.inc("probe_cache_hits")
        return hit.metrics.measured_throughput
    result = point.run()
    exec_counters.inc("simulations_run")
    cache.put(key, result)
    return result.metrics.measured_throughput
