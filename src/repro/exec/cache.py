"""Content-addressed result cache for pipeline simulations.

Simulations are deterministic: one configuration always produces the same
``PipelineMetrics``, float for float.  That makes results content-addressable
— a stable key derived from *everything the simulation depends on* (STAP
parameters, processor assignment, machine calibration, CPI count, mode,
input rate, the pipeline switches) maps to the result, and any repeat of an
already-simulated point is a lookup instead of a run.

Key composition
---------------
The key is the SHA-256 of a canonical JSON document containing:

* a cache schema number (:data:`CACHE_SCHEMA`) and the package version —
  bumping either invalidates every entry, the backstop for behaviour
  changes the fingerprint cannot see;
* the resolved simulator-backend identity and its
  :data:`~repro.des.backends.ENGINE_SCHEMA`, so results from different
  engine cores are never conflated even though they are bit-identical by
  contract;
* every declared field of :class:`~repro.radar.parameters.STAPParams`
  (floats rendered with ``float.hex`` so distinct bit patterns never
  collide);
* the assignment's node counts (the cosmetic ``name`` is excluded — two
  differently-named assignments with equal counts simulate identically);
* the machine calibration: mesh dimensions, per-kernel compute rates,
  node model, network and packing cost models — plus the heterogeneous
  speed regions when the machine has any (the key component is omitted
  entirely for homogeneous machines, so their keys predate heterogeneity
  unchanged);
* ``num_cpis``, ``mode``, ``input_rate``, ``contention``,
  ``azimuth_cycle``, ``double_buffering``, ``collect_training``, and
  whether the run is the two-phase ``run_measured`` measurement.

Invalidation rules
------------------
Entries never expire by time; they are invalidated by *content*: change
any fingerprinted input and the key changes.  What the fingerprint cannot
observe — edits to the simulation code itself — is covered by the package
version baked into every key, so a release bump flushes the store.  The
in-process layer additionally evicts least-recently-used entries beyond
``maxsize``; the disk store only grows (delete the directory to reclaim
space).  A corrupt or unreadable disk entry is treated as a miss.

Only ``modeled``-mode points are cacheable: functional runs hash real CPI
cubes, which the fingerprint does not cover.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from copy import deepcopy
from pathlib import Path
from typing import Mapping, Optional

from repro.machine import Machine, Mesh2D, afrl_paragon
from repro.perf import exec_counters
from repro.version import __version__

#: Bump to invalidate every cached result (schema or semantics change).
#: 2: cache keys gained the resolved engine-backend identity.
#: 3: campaign-store era — key documents carry the manifest schema, so
#:    results published before campaign manifests existed read as clean
#:    misses (their keys differ) rather than half-compatible entries.
CACHE_SCHEMA = 3

#: Version of the campaign manifest document (``manifest.json`` in a
#: :class:`~repro.exec.campaign.CampaignStore` directory).  A manifest
#: written under a different schema — or a different :data:`CACHE_SCHEMA`,
#: which changes every result key it references — loads as an *empty*
#: manifest (a clean miss for every point), never as an error.  Defined
#: here rather than in :mod:`repro.exec.campaign` because the result-key
#: fingerprint includes it.
MANIFEST_SCHEMA = 1

_metrics_registry = None


def _metrics():
    """The process metrics registry, imported lazily (repro.obs pulls in
    repro.core; a module-level import here would risk a cycle)."""
    global _metrics_registry
    if _metrics_registry is None:
        from repro.obs.metrics import metrics_registry

        _metrics_registry = metrics_registry
    return _metrics_registry


def _count(name: str, help: str, **labels) -> None:
    """Record one cache event into the metrics registry when it is on."""
    reg = _metrics()
    if reg.enabled:
        reg.counter(name, help, labels=labels or None).inc()


# -- fingerprinting ------------------------------------------------------------------
def _canon(value):
    """Canonical JSON-ready form of a fingerprint component.

    Floats are rendered with ``float.hex`` so the key distinguishes every
    bit pattern (two floats that print the same but differ in the last ulp
    simulate differently).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canon(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, int):
        return value
    if isinstance(value, Mapping):
        return {str(k): _canon(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, Mesh2D):
        return [value.width, value.height]
    raise TypeError(f"cannot fingerprint {type(value).__name__}: {value!r}")


def machine_fingerprint(machine: Optional[Machine]) -> dict:
    """Everything about a machine the simulation's numbers depend on.

    The machine's display ``name`` is excluded; ``None`` fingerprints the
    default AFRL Paragon (what the pipeline builds when no machine is
    given).
    """
    machine = machine or afrl_paragon()
    fingerprint = {
        "mesh": _canon(machine.mesh),
        "node": _canon(machine.node),
        "network_cost": _canon(machine.network_cost),
        "packing_cost": _canon(machine.packing_cost),
    }
    # Heterogeneity enters the key only when present, so every
    # homogeneous key (the entire pre-heterogeneity store) is unchanged.
    if machine.speed_regions:
        fingerprint["speed_regions"] = _canon(machine.speed_regions)
    return fingerprint


def engine_fingerprint(backend) -> dict:
    """The simulator-core identity a result depends on.

    The *resolved* backend goes into the key (``auto`` hashes to whatever
    core actually runs), together with :data:`~repro.des.backends.ENGINE_SCHEMA`
    so a scheduling-semantics change in any backend flushes its entries.
    All backends are bit-identical by contract, but the cache must never
    *assume* that — conflating cores would make a backend bug silently
    contaminate reference results.
    """
    from repro.des.backends import ENGINE_SCHEMA, resolve_backend

    return {
        "backend": resolve_backend(backend),
        "engine_schema": ENGINE_SCHEMA,
    }


def point_fingerprint(point) -> dict:
    """The full key document of a :class:`~repro.exec.point.SimPoint`."""
    return {
        "schema": CACHE_SCHEMA,
        "manifest": MANIFEST_SCHEMA,
        "version": __version__,
        "engine": engine_fingerprint(getattr(point, "backend", None)),
        "params": _canon(point.params),
        "assignment": list(point.assignment.counts()),
        "machine": machine_fingerprint(point.machine),
        "num_cpis": point.num_cpis,
        "mode": point.mode,
        "input_rate": _canon(point.input_rate),
        "contention": str(point.contention),
        "azimuth_cycle": point.azimuth_cycle,
        "double_buffering": point.double_buffering,
        "collect_training": point.collect_training,
        "measured": point.measured,
    }


def cache_key(point) -> str:
    """Stable content hash of one simulation point."""
    document = json.dumps(
        point_fingerprint(point), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


# -- the cache -----------------------------------------------------------------------
class ResultCache:
    """Two-layer result store: in-process LRU over an optional disk store.

    ``get``/``put`` deep-copy results across the boundary, so a caller
    mutating a returned object (``run_measured`` patches throughput into
    its metrics, for example) can never poison the cached copy.
    """

    def __init__(self, maxsize: int = 256, directory=None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` (counts a miss)."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            exec_counters.inc("cache_hits_memory")
            _count("exec_cache_hits_total", "result-cache hits", layer="memory")
            return deepcopy(cached)
        if self.directory is not None:
            path = self._disk_path(key)
            try:
                with open(path, "rb") as handle:
                    result = pickle.load(handle)
            except FileNotFoundError:
                result = None
            except Exception:
                # Truncated or corrupt entry: a (counted) miss, not a crash.
                exec_counters.inc("cache_corrupt")
                _count("exec_cache_corrupt_total",
                       "disk entries that existed but failed to load")
                result = None
            if result is not None:
                exec_counters.inc("cache_hits_disk")
                _count("exec_cache_hits_total", "result-cache hits", layer="disk")
                self._remember(key, result)
                return deepcopy(result)
        exec_counters.inc("cache_misses")
        _count("exec_cache_misses_total", "result-cache lookups that missed")
        return None

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (memory or published disk).

        A pure existence probe — no counters, no load, no LRU promotion.
        This is the campaign queue's two-state test: atomic publishing
        means an existing file is never half-written, so presence means
        *complete* (a corrupt entry still degrades to a miss at ``get``
        time and the point simply reruns).
        """
        if key in self._memory:
            return True
        return self.directory is not None and self._disk_path(key).exists()

    def peek(self, key: str):
        """Load a result without touching counters or LRU order.

        For status probes (:meth:`~repro.exec.campaign.CampaignStore.progress`)
        that must observe a store without perturbing the hit/miss
        accounting the executor's tests assert on.  Corrupt or missing
        entries read as ``None``.
        """
        cached = self._memory.get(key)
        if cached is not None:
            return deepcopy(cached)
        if self.directory is None:
            return None
        try:
            with open(self._disk_path(key), "rb") as handle:
                return pickle.load(handle)
        except Exception:
            return None

    def put(self, key: str, result) -> None:
        """Store one result under its content key (memory, then disk)."""
        self._remember(key, deepcopy(result))
        exec_counters.inc("cache_stores")
        _count("exec_cache_stores_total", "results written into the cache")
        if self.directory is None:
            return
        # Atomic publish: each writer fills a private temp file and
        # ``os.replace``\ s it over the entry, so a reader never sees a
        # half-written result and two processes completing the same key
        # concurrently resolve last-writer-wins (both replacements are
        # complete, valid entries — deterministic points make them
        # byte-equal anyway).  The directory (created in the constructor)
        # may have been removed since — a sweep cleaning its results tree,
        # a fresh nested ``--cache-dir`` — so it is (re)created here.
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._disk_path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException as error:
            # Never leave a stray temp file behind; disk trouble (a full
            # or vanished store) degrades to memory-only, but a result
            # that cannot even be pickled is the caller's bug to see.
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if not isinstance(error, OSError):
                raise

    def _remember(self, key: str, result) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._memory.clear()


#: Sentinel distinguishing "use the process default" from "no cache".
USE_DEFAULT_CACHE = object()

_default_cache = ResultCache()


def get_default_cache() -> ResultCache:
    """The process-wide cache used when callers pass no cache of their own."""
    return _default_cache


def set_default_cache(cache: ResultCache) -> ResultCache:
    """Swap the process-wide cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def resolve_cache(cache) -> Optional[ResultCache]:
    """Map the public ``cache=`` argument onto an actual cache (or None)."""
    if cache is USE_DEFAULT_CACHE:
        return _default_cache
    return cache
