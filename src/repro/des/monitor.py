"""Structured tracing for simulations.

A :class:`Tracer` records one :class:`TraceRecord` per processed event.
Traces are optional (off by default — they roughly double event cost) and
are used by tests that assert causal ordering and by debugging utilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One processed event: when it fired and what it was."""

    time: float
    kind: str
    name: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.kind:<10} {self.name}"


class Tracer:
    """Accumulates :class:`TraceRecord` entries as the simulation runs."""

    def __init__(self, max_records: int | None = None):
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0

    def record(self, time: float, event) -> None:
        """Called by the engine for each processed event."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(
            TraceRecord(time=time, kind=type(event).__name__, name=event.name or "")
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, substring: str) -> list[TraceRecord]:
        """Records whose name contains ``substring``."""
        return [r for r in self.records if substring in r.name]

    def times_are_monotone(self) -> bool:
        """True iff record times never decrease (a core engine invariant)."""
        return all(b.time >= a.time for a, b in zip(self.records, self.records[1:]))
