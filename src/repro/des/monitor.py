"""Structured tracing for simulations.

A :class:`Tracer` records one :class:`TraceRecord` per processed event.
Traces are optional (off by default — they roughly double event cost) and
are used by tests that assert causal ordering and by debugging utilities.

Paper-scale runs process ~10^6 events, so an unbounded trace can exhaust
memory.  Two bounded modes cap it:

``mode="drop"`` (default with ``max_records``)
    Keep the *first* ``max_records`` events, count the rest in
    ``dropped`` — right for inspecting a run's startup.
``mode="ring"``
    Keep the *last* ``max_records`` events (a ring buffer), counting
    overwritten ones — right for post-mortem debugging, where the events
    just before a deadlock or crash are the interesting ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One processed event: when it fired and what it was."""

    time: float
    kind: str
    name: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.kind:<10} {self.name}"


class Tracer:
    """Accumulates :class:`TraceRecord` entries as the simulation runs."""

    def __init__(self, max_records: int | None = None, mode: str = "drop"):
        if mode not in ("drop", "ring"):
            raise ValueError(f"mode must be 'drop' or 'ring', got {mode!r}")
        self.mode = mode
        self.max_records = max_records
        if mode == "ring" and max_records is not None:
            self.records: "deque[TraceRecord] | list[TraceRecord]" = deque(
                maxlen=max_records
            )
        else:
            self.records = []
        #: Records not retained: overflow past ``max_records`` in drop
        #: mode; overwritten oldest entries in ring mode.
        self.dropped = 0

    def record(self, time: float, event) -> None:
        """Called by the engine for each processed event."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            if self.mode == "drop":
                return
            # Ring mode: deque(maxlen) evicts the oldest on append.
        self.records.append(
            TraceRecord(time=time, kind=type(event).__name__, name=event.name or "")
        )

    def clear(self) -> None:
        """Forget all retained records (the drop counter is kept)."""
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, substring: str) -> list[TraceRecord]:
        """Records whose name contains ``substring``."""
        return [r for r in self.records if substring in r.name]

    def times_are_monotone(self) -> bool:
        """True iff record times never decrease (a core engine invariant)."""
        pairs = zip(self.records, list(self.records)[1:])
        return all(b.time >= a.time for a, b in pairs)
