"""Events: the unit of synchronization in the DES engine.

An :class:`Event` moves through three states:

``PENDING``
    created but not yet triggered; processes may add themselves as waiters.
``TRIGGERED``
    given a value (or an exception) and placed on the simulator's queue.
``PROCESSED``
    the simulator has popped it and run its callbacks (resuming waiters).

Composite events (:class:`AllOf`, :class:`AnyOf`) let a process wait on
several events at once; they are what make "wait for all outstanding
receives" a one-liner in the MPI layer.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

#: Scheduling priority for ordinary events.
NORMAL = 1
#: Scheduling priority for bookkeeping events that must run before ordinary
#: ones at the same timestamp (e.g. resource releases).
URGENT = 0


class Event:
    """A one-shot occurrence at a point in virtual time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.des.engine.Simulator`.
    name:
        Optional label used in traces and deadlock reports.
    """

    __slots__ = ("sim", "name", "callbacks", "_state", "_ok", "_value", "defused")

    #: Overridden per-instance on pool-recycled Timeouts (see
    #: :meth:`repro.des.engine.Simulator.pooled_timeout`); plain events are
    #: never recycled.
    _pooled = False

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it is processed.
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = PENDING
        self._ok: Optional[bool] = None
        self._value: Any = None
        #: Set to True once some waiter has consumed a failure, suppressing
        #: the "unhandled failed event" error at simulation end.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has no outcome yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception.  Only valid once triggered."""
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule(self, delay=delay, priority=NORMAL)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.sim._schedule(self, delay=delay, priority=NORMAL)
        return self

    # -- engine hooks -------------------------------------------------------
    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or hex(id(self))
        return f"<{type(self).__name__} {label} [{self._state}]>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units after creation."""

    __slots__ = ("delay", "_pooled")

    def __init__(self, sim, delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or f"timeout({delay:g})")
        self.delay = delay
        self._pooled = False
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim._schedule(self, delay=delay, priority=NORMAL)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim, events: Iterable[Event], name: str = ""):
        super().__init__(sim, name=name)
        self.events = tuple(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        # Register on the child events; already-processed children count
        # immediately (so conditions over completed events work).
        child_fired = self._child_fired
        for ev in self.events:
            if ev._state == PROCESSED:
                child_fired(ev)
            else:
                ev.callbacks.append(child_fired)
        self._check_if_created_satisfied()

    def _check_if_created_satisfied(self) -> None:
        if self._state == PENDING and self._satisfied():
            self.succeed(self._collect())

    def _child_fired(self, ev: Event) -> None:
        if self._state != PENDING:
            return
        if not ev._ok:
            ev.defused = True
            self.fail(ev._value)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    # Subclass API ---------------------------------------------------------
    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self):
        """Value delivered on success: dict of fired events -> values.

        Only *processed* children count: a Timeout is born triggered (it
        has a value from creation) but has not yet occurred.
        """
        return {
            ev: ev._value
            for ev in self.events
            if ev._state == PROCESSED and ev._ok
        }


class AllOf(_Condition):
    """Fires when every child event has fired (fails fast on any failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= len(self.events)


class AnyOf(_Condition):
    """Fires as soon as any one child event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self.events) == 0 or self._n_fired >= 1
