/* _despeed: the optional C core behind the "compiled" simulator backend.
 *
 * The module operates on the *existing* engine state — the heap is still
 * ``sim._queue`` (a Python list of ``(time, priority, seq, event)`` tuples),
 * so every Python-side ``heappush`` call site keeps working and pure-Python
 * code can inspect or drive the same queue mid-run.  What moves to C:
 *
 *   - the heap sift/pop/push operations (same comparison predicate as the
 *     tuple ``__lt__`` Python heapq uses: time, then priority, then the
 *     unique sequence number — the event object is never compared);
 *   - the network slot-record state machine (CTransfer + NetState), a
 *     native twin of ``repro.des.backends.lowered``;
 *   - the generic-event dispatch (callbacks list swap, PROCESSED mark,
 *     failure propagation, timeout-pool recycle).
 *
 * Bit-identity contract: every push made here consumes exactly the
 * sequence numbers the reference engine would, in the same order, at the
 * same times and priorities.  ``sim._seq`` and ``sim._now`` are synced out
 * before control re-enters Python (event callbacks, ``done.succeed()``,
 * matched delivery) and reloaded after, mirroring the lowered backend's
 * ``_run_inlined``.  On an exception raised *by Python code*, the attribute
 * value is authoritative and is reloaded before finalizing; on an internal
 * C failure the local counter is authoritative and is written back.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Slot-record stages; values mirror repro.des.backends.lowered. */
#define STAGE_START 0
#define STAGE_ACQ1 1
#define STAGE_ACQ2 2
#define STAGE_RELEASE 3
#define STAGE_DELAY 4
#define STAGE_DELAY_DONE 5
#define STAGE_DELIVER 6

#define RECORD_POOL_MAX 1024
#define TIMEOUT_POOL_MAX 1024

/* ---- cached names and runtime objects ---------------------------------- */

static PyObject *s__seq, *s__now, *s__queue, *s__timeout_pool;
static PyObject *s_events_processed, *s_callbacks, *s__state, *s__ok;
static PyObject *s__value, *s_defused, *s__pooled, *s_step, *s_succeed;
static PyObject *long_one;        /* cached int 1: the NORMAL priority   */
static PyObject *str_processed;   /* repro.des.event.PROCESSED (lazy)    */
static PyObject *py_transfer_cls; /* lowered._Transfer class (lazy)      */

static int
ensure_runtime(void)
{
    PyObject *mod;
    if (str_processed != NULL && py_transfer_cls != NULL)
        return 0;
    if (str_processed == NULL) {
        mod = PyImport_ImportModule("repro.des.event");
        if (mod == NULL)
            return -1;
        str_processed = PyObject_GetAttrString(mod, "PROCESSED");
        Py_DECREF(mod);
        if (str_processed == NULL)
            return -1;
    }
    if (py_transfer_cls == NULL) {
        mod = PyImport_ImportModule("repro.des.backends.lowered");
        if (mod == NULL)
            return -1;
        py_transfer_cls = PyObject_GetAttrString(mod, "_Transfer");
        Py_DECREF(mod);
        if (py_transfer_cls == NULL)
            return -1;
    }
    return 0;
}

/* ---- small attribute helpers ------------------------------------------- */

static int
set_long_attr(PyObject *obj, PyObject *name, long value)
{
    PyObject *num = PyLong_FromLong(value);
    int rc;
    if (num == NULL)
        return -1;
    rc = PyObject_SetAttr(obj, name, num);
    Py_DECREF(num);
    return rc;
}

static int
set_double_attr(PyObject *obj, PyObject *name, double value)
{
    PyObject *num = PyFloat_FromDouble(value);
    int rc;
    if (num == NULL)
        return -1;
    rc = PyObject_SetAttr(obj, name, num);
    Py_DECREF(num);
    return rc;
}

static int
get_long_attr(PyObject *obj, PyObject *name, long *out)
{
    PyObject *val = PyObject_GetAttr(obj, name);
    if (val == NULL)
        return -1;
    *out = PyLong_AsLong(val);
    Py_DECREF(val);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
get_double_attr(PyObject *obj, PyObject *name, double *out)
{
    PyObject *val = PyObject_GetAttr(obj, name);
    if (val == NULL)
        return -1;
    *out = PyFloat_AsDouble(val);
    Py_DECREF(val);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

/* ---- heap operations on the engine's list of tuples -------------------- */

static double
item_time(PyObject *tup, int *err)
{
    PyObject *t = PyTuple_GET_ITEM(tup, 0);
    double v;
    if (PyFloat_CheckExact(t))
        return PyFloat_AS_DOUBLE(t);
    v = PyFloat_AsDouble(t);
    if (v == -1.0 && PyErr_Occurred())
        *err = 1;
    return v;
}

/* a < b under the engine's (time, priority, seq) key.  Returns 1/0, or -1
 * on error.  Never calls back into Python: all fields are floats/ints, so
 * the heap cannot mutate mid-comparison. */
static int
tup_lt(PyObject *a, PyObject *b)
{
    double ta, tb;
    long pa, pb, sa, sb;
    int err = 0;
    if (!PyTuple_CheckExact(a) || PyTuple_GET_SIZE(a) < 4 ||
        !PyTuple_CheckExact(b) || PyTuple_GET_SIZE(b) < 4) {
        PyErr_SetString(PyExc_TypeError,
                        "heap items must be (time, priority, seq, event) tuples");
        return -1;
    }
    ta = item_time(a, &err);
    tb = item_time(b, &err);
    if (err)
        return -1;
    if (ta < tb)
        return 1;
    if (ta > tb)
        return 0;
    pa = PyLong_AsLong(PyTuple_GET_ITEM(a, 1));
    pb = PyLong_AsLong(PyTuple_GET_ITEM(b, 1));
    if ((pa == -1 || pb == -1) && PyErr_Occurred())
        return -1;
    if (pa < pb)
        return 1;
    if (pa > pb)
        return 0;
    sa = PyLong_AsLong(PyTuple_GET_ITEM(a, 2));
    sb = PyLong_AsLong(PyTuple_GET_ITEM(b, 2));
    if ((sa == -1 || sb == -1) && PyErr_Occurred())
        return -1;
    return sa < sb;
}

/* The sift loops move references between slots without touching refcounts;
 * tup_lt cannot run Python code, so the transiently-inconsistent list is
 * never observable. */
static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = tup_lt(newitem, parent);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        PyList_SET_ITEM(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SET_ITEM(heap, pos, newitem);
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = tup_lt(PyList_GET_ITEM(heap, childpos),
                            PyList_GET_ITEM(heap, rightpos));
            if (lt < 0)
                return -1;
            if (!lt)
                childpos = rightpos;
        }
        PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, childpos));
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SET_ITEM(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

/* Pop the smallest item; returns a new reference, NULL on error. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap) - 1;
    PyObject *last = PyList_GET_ITEM(heap, n);
    PyObject *ret;
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n, n + 1, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 0)
        return last;
    ret = PyList_GET_ITEM(heap, 0); /* ref transfers to us via SET_ITEM */
    PyList_SET_ITEM(heap, 0, last);
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(ret);
        return NULL;
    }
    return ret;
}

/* Push (t, 1, seq, event); borrows event. */
static int
heap_push_event(PyObject *heap, double t, long seq, PyObject *event)
{
    PyObject *tup = PyTuple_New(4);
    PyObject *tf, *ts;
    if (tup == NULL)
        return -1;
    tf = PyFloat_FromDouble(t);
    ts = PyLong_FromLong(seq);
    if (tf == NULL || ts == NULL) {
        Py_XDECREF(tf);
        Py_XDECREF(ts);
        Py_DECREF(tup);
        return -1;
    }
    PyTuple_SET_ITEM(tup, 0, tf);
    Py_INCREF(long_one);
    PyTuple_SET_ITEM(tup, 1, long_one);
    PyTuple_SET_ITEM(tup, 2, ts);
    Py_INCREF(event);
    PyTuple_SET_ITEM(tup, 3, event);
    if (PyList_Append(heap, tup) < 0) {
        Py_DECREF(tup);
        return -1;
    }
    Py_DECREF(tup);
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* ---- CTransfer: the native slot record --------------------------------- */

typedef struct {
    PyObject_HEAD
    int stage;
    int port1;
    int port2;
    double hold;
    double wait_since;
    PyObject *owner;   /* the NetState that scheduled this record */
    PyObject *pending; /* matched fast path: PendingSend */
    PyObject *recv;    /* matched fast path: RecvRequest */
    PyObject *done;    /* generic path: completion Event */
} CTransfer;

static PyTypeObject CTransferType;

static void
CTransfer_dealloc(CTransfer *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->owner);
    Py_XDECREF(self->pending);
    Py_XDECREF(self->recv);
    Py_XDECREF(self->done);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
CTransfer_traverse(CTransfer *self, visitproc visit, void *arg)
{
    Py_VISIT(self->owner);
    Py_VISIT(self->pending);
    Py_VISIT(self->recv);
    Py_VISIT(self->done);
    return 0;
}

static int
CTransfer_clear(CTransfer *self)
{
    Py_CLEAR(self->owner);
    Py_CLEAR(self->pending);
    Py_CLEAR(self->recv);
    Py_CLEAR(self->done);
    return 0;
}

/* name/callbacks keep defensively-attached tracers and diagnostics from
 * crashing on a record, mirroring the Python _Transfer class attrs. */
static PyObject *
CTransfer_get_name(CTransfer *self, void *closure)
{
    return PyUnicode_FromString("xfer[slot]");
}

static PyObject *
CTransfer_get_callbacks(CTransfer *self, void *closure)
{
    return PyTuple_New(0);
}

static PyObject *
CTransfer_repr(CTransfer *self)
{
    return PyUnicode_FromFormat("<CTransfer stage=%d ports=(%d,%d)>",
                                self->stage, self->port1, self->port2);
}

static PyMemberDef CTransfer_members[] = {
    {"stage", T_INT, offsetof(CTransfer, stage), READONLY,
     "current state-machine stage"},
    {"port1", T_INT, offsetof(CTransfer, port1), READONLY, NULL},
    {"port2", T_INT, offsetof(CTransfer, port2), READONLY, NULL},
    {"hold", T_DOUBLE, offsetof(CTransfer, hold), READONLY, NULL},
    {"wait_since", T_DOUBLE, offsetof(CTransfer, wait_since), READONLY, NULL},
    {NULL},
};

static PyGetSetDef CTransfer_getset[] = {
    {"name", (getter)CTransfer_get_name, NULL, NULL, NULL},
    {"callbacks", (getter)CTransfer_get_callbacks, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject CTransferType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.des._despeed.CTransfer",
    .tp_basicsize = sizeof(CTransfer),
    .tp_dealloc = (destructor)CTransfer_dealloc,
    .tp_repr = (reprfunc)CTransfer_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native in-flight transfer slot record (created only in C).",
    .tp_traverse = (traverseproc)CTransfer_traverse,
    .tp_clear = (inquiry)CTransfer_clear,
    .tp_members = CTransfer_members,
    .tp_getset = CTransfer_getset,
};

/* ---- NetState: native port tables + record pool ------------------------ */

typedef struct {
    PyObject_HEAD
    Py_ssize_t nports;
    char *in_use;
    long *grants;
    double *wait_time;
    PyObject **waiters; /* per-port PyList of waiting CTransfers, or NULL */
    PyObject *deliver;  /* matched-delivery callable bound by the World */
    PyObject *pool[RECORD_POOL_MAX];
    int pool_len;
} NetState;

static PyTypeObject NetStateType;

static PyObject *
NetState_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    Py_ssize_t nports;
    Py_ssize_t alloc;
    NetState *self;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError, "NetState() takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "n:NetState", &nports))
        return NULL;
    if (nports < 0) {
        PyErr_SetString(PyExc_ValueError, "NetState: negative port count");
        return NULL;
    }
    self = (NetState *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->nports = nports;
    alloc = nports > 0 ? nports : 1;
    self->in_use = PyMem_Calloc((size_t)alloc, 1);
    self->grants = PyMem_Calloc((size_t)alloc, sizeof(long));
    self->wait_time = PyMem_Calloc((size_t)alloc, sizeof(double));
    self->waiters = PyMem_Calloc((size_t)alloc, sizeof(PyObject *));
    if (self->in_use == NULL || self->grants == NULL ||
        self->wait_time == NULL || self->waiters == NULL) {
        Py_DECREF(self);
        PyErr_NoMemory();
        return NULL;
    }
    self->deliver = NULL;
    self->pool_len = 0;
    return (PyObject *)self;
}

static int
NetState_traverse(NetState *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    int k;
    Py_VISIT(self->deliver);
    if (self->waiters != NULL)
        for (i = 0; i < self->nports; i++)
            Py_VISIT(self->waiters[i]);
    for (k = 0; k < self->pool_len; k++)
        Py_VISIT(self->pool[k]);
    return 0;
}

static int
NetState_clear(NetState *self)
{
    Py_ssize_t i;
    Py_CLEAR(self->deliver);
    if (self->waiters != NULL)
        for (i = 0; i < self->nports; i++)
            Py_CLEAR(self->waiters[i]);
    while (self->pool_len > 0)
        Py_CLEAR(self->pool[--self->pool_len]);
    return 0;
}

static void
NetState_dealloc(NetState *self)
{
    PyObject_GC_UnTrack(self);
    NetState_clear(self);
    PyMem_Free(self->in_use);
    PyMem_Free(self->grants);
    PyMem_Free(self->wait_time);
    PyMem_Free(self->waiters);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static CTransfer *
pool_get_or_new(NetState *ns)
{
    CTransfer *rec;
    if (ns->pool_len > 0)
        return (CTransfer *)ns->pool[--ns->pool_len]; /* ref moves to caller */
    rec = PyObject_GC_New(CTransfer, &CTransferType);
    if (rec == NULL)
        return NULL;
    rec->stage = 0;
    rec->port1 = 0;
    rec->port2 = 0;
    rec->hold = 0.0;
    rec->wait_since = 0.0;
    Py_INCREF(ns);
    rec->owner = (PyObject *)ns;
    rec->pending = NULL;
    rec->recv = NULL;
    rec->done = NULL;
    PyObject_GC_Track(rec);
    return rec;
}

static void
pool_put(NetState *ns, CTransfer *rec)
{
    if (ns->pool_len < RECORD_POOL_MAX) {
        Py_INCREF(rec);
        ns->pool[ns->pool_len++] = (PyObject *)rec;
    }
}

/* push_transfer(sim, stage, port1, port2, hold, pending, recv, done):
 * the deferral push — one sequence number at (now, NORMAL), exactly the
 * reference path's pooled_timeout(0.0). */
static PyObject *
NetState_push_transfer(NetState *ns, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *sim, *queue;
    CTransfer *rec;
    long stage, port1, port2, seq;
    double hold, now;
    int rc;
    if (nargs != 8) {
        PyErr_SetString(PyExc_TypeError,
                        "push_transfer(sim, stage, port1, port2, hold, "
                        "pending, recv, done)");
        return NULL;
    }
    sim = args[0];
    stage = PyLong_AsLong(args[1]);
    port1 = PyLong_AsLong(args[2]);
    port2 = PyLong_AsLong(args[3]);
    if ((stage == -1 || port1 == -1 || port2 == -1) && PyErr_Occurred())
        return NULL;
    hold = PyFloat_AsDouble(args[4]);
    if (hold == -1.0 && PyErr_Occurred())
        return NULL;
    if (port1 < 0 || port1 >= (ns->nports > 0 ? ns->nports : 1) ||
        port2 < 0 || port2 >= (ns->nports > 0 ? ns->nports : 1)) {
        if (stage <= STAGE_ACQ2) { /* port stages actually use the ports */
            PyErr_Format(PyExc_ValueError, "port out of range: (%ld, %ld)",
                         port1, port2);
            return NULL;
        }
    }
    rec = pool_get_or_new(ns);
    if (rec == NULL)
        return NULL;
    rec->stage = (int)stage;
    rec->port1 = (int)port1;
    rec->port2 = (int)port2;
    rec->hold = hold;
    rec->wait_since = 0.0;
    if (args[5] != Py_None) {
        Py_INCREF(args[5]);
        rec->pending = args[5];
    }
    if (args[6] != Py_None) {
        Py_INCREF(args[6]);
        rec->recv = args[6];
    }
    if (args[7] != Py_None) {
        Py_INCREF(args[7]);
        rec->done = args[7];
    }
    if (get_long_attr(sim, s__seq, &seq) < 0 ||
        get_double_attr(sim, s__now, &now) < 0) {
        Py_DECREF(rec);
        return NULL;
    }
    seq += 1;
    if (set_long_attr(sim, s__seq, seq) < 0) {
        Py_DECREF(rec);
        return NULL;
    }
    queue = PyObject_GetAttr(sim, s__queue);
    if (queue == NULL || !PyList_CheckExact(queue)) {
        Py_XDECREF(queue);
        Py_DECREF(rec);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "sim._queue must be a list");
        return NULL;
    }
    rc = heap_push_event(queue, now, seq, (PyObject *)rec);
    Py_DECREF(queue);
    Py_DECREF(rec);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
NetState_bind_deliver(NetState *ns, PyObject *fn)
{
    PyObject *old = ns->deliver;
    Py_INCREF(fn);
    ns->deliver = fn;
    Py_XDECREF(old);
    Py_RETURN_NONE;
}

static PyObject *
NetState_wait_time(NetState *ns, PyObject *arg)
{
    Py_ssize_t port = PyNumber_AsSsize_t(arg, PyExc_IndexError);
    if (port == -1 && PyErr_Occurred())
        return NULL;
    if (port < 0 || port >= ns->nports) {
        PyErr_SetString(PyExc_IndexError, "port out of range");
        return NULL;
    }
    return PyFloat_FromDouble(ns->wait_time[port]);
}

static PyObject *
NetState_grants(NetState *ns, PyObject *arg)
{
    Py_ssize_t port = PyNumber_AsSsize_t(arg, PyExc_IndexError);
    if (port == -1 && PyErr_Occurred())
        return NULL;
    if (port < 0 || port >= ns->nports) {
        PyErr_SetString(PyExc_IndexError, "port out of range");
        return NULL;
    }
    return PyLong_FromLong(ns->grants[port]);
}

static PyObject *
NetState_pool_size(NetState *ns, PyObject *noarg)
{
    return PyLong_FromLong(ns->pool_len);
}

static PyMethodDef NetState_methods[] = {
    {"push_transfer", (PyCFunction)(void (*)(void))NetState_push_transfer,
     METH_FASTCALL, "Schedule one transfer record (the deferral push)."},
    {"bind_deliver", (PyCFunction)NetState_bind_deliver, METH_O,
     "Install the matched-delivery callable."},
    {"wait_time", (PyCFunction)NetState_wait_time, METH_O,
     "Cumulative queueing seconds at one port."},
    {"grants", (PyCFunction)NetState_grants, METH_O,
     "Grants made at one port."},
    {"pool_size", (PyCFunction)NetState_pool_size, METH_NOARGS,
     "Recycled records currently pooled (diagnostics)."},
    {NULL},
};

static PyMemberDef NetState_members[] = {
    {"nports", T_PYSSIZET, offsetof(NetState, nports), READONLY, NULL},
    {NULL},
};

static PyTypeObject NetStateType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.des._despeed.NetState",
    .tp_basicsize = sizeof(NetState),
    .tp_dealloc = (destructor)NetState_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native port tables, waiter FIFOs and record pool for one "
              "lowered network.",
    .tp_traverse = (traverseproc)NetState_traverse,
    .tp_clear = (inquiry)NetState_clear,
    .tp_methods = NetState_methods,
    .tp_members = NetState_members,
    .tp_new = NetState_new,
};

/* ---- the drain loop ----------------------------------------------------- */

typedef struct {
    PyObject *sim;
    PyObject *queue;
    long seq;
} DrainCtx;

static int
ctx_sync_out(DrainCtx *ctx, double now)
{
    if (set_long_attr(ctx->sim, s__seq, ctx->seq) < 0)
        return -1;
    return set_double_attr(ctx->sim, s__now, now);
}

static int
ctx_sync_in(DrainCtx *ctx)
{
    return get_long_attr(ctx->sim, s__seq, &ctx->seq);
}

/* After an exception raised by Python code the sim._seq attribute is
 * authoritative (it was synced out just before the call); reload it so the
 * uniform finalizer can write it back unchanged. */
static void
ctx_resync_after_error(DrainCtx *ctx)
{
    PyObject *type, *value, *tb;
    long seq;
    PyErr_Fetch(&type, &value, &tb);
    if (get_long_attr(ctx->sim, s__seq, &seq) == 0)
        ctx->seq = seq;
    else
        PyErr_Clear();
    PyErr_Restore(type, value, tb);
}

/* Complete a record: succeed its done Event, or re-push for the inline
 * delivery stage (one seq, standing in for done.succeed()). */
static int
record_complete(DrainCtx *ctx, CTransfer *rec, NetState *ns, double now)
{
    PyObject *done = rec->done;
    PyObject *res;
    if (done == NULL) {
        rec->stage = STAGE_DELIVER;
        ctx->seq += 1;
        return heap_push_event(ctx->queue, now, ctx->seq, (PyObject *)rec);
    }
    rec->done = NULL;
    pool_put(ns, rec);
    if (ctx_sync_out(ctx, now) < 0) {
        Py_DECREF(done);
        return -1;
    }
    res = PyObject_CallMethodNoArgs(done, s_succeed);
    Py_DECREF(done);
    if (res == NULL) {
        ctx_resync_after_error(ctx);
        return -1;
    }
    Py_DECREF(res);
    return ctx_sync_in(ctx);
}

/* Advance one popped record through its next stage.  Mirrors the lowered
 * backend's _run_inlined record branch statement for statement. */
static int
advance_record(DrainCtx *ctx, CTransfer *rec, double now)
{
    NetState *ns;
    int stage = rec->stage;
    if (rec->owner == NULL || Py_TYPE(rec->owner) != &NetStateType) {
        PyErr_SetString(PyExc_RuntimeError, "transfer record has no NetState");
        return -1;
    }
    ns = (NetState *)rec->owner;
    if (stage <= STAGE_ACQ1) { /* acquire a port, or queue behind it */
        int port = (stage == STAGE_START) ? rec->port1 : rec->port2;
        rec->stage = stage + 1;
        if (ns->in_use[port]) {
            PyObject *wl = ns->waiters[port];
            rec->wait_since = now;
            if (wl == NULL) {
                wl = PyList_New(0);
                if (wl == NULL)
                    return -1;
                ns->waiters[port] = wl;
            }
            return PyList_Append(wl, (PyObject *)rec);
        }
        ns->in_use[port] = 1;
        ns->grants[port] += 1;
        ctx->seq += 1;
        return heap_push_event(ctx->queue, now, ctx->seq, (PyObject *)rec);
    }
    if (stage == STAGE_ACQ2) { /* both ports held: serialize */
        rec->stage = STAGE_RELEASE;
        ctx->seq += 1;
        return heap_push_event(ctx->queue, now + rec->hold, ctx->seq,
                               (PyObject *)rec);
    }
    if (stage == STAGE_RELEASE) {
        /* Release in reference order (injection, then ejection); each
         * release hands the port straight to the oldest waiter. */
        int ports[2];
        int i;
        ports[0] = rec->port2;
        ports[1] = rec->port1;
        for (i = 0; i < 2; i++) {
            int port = ports[i];
            PyObject *wl = ns->waiters[port];
            if (wl != NULL && PyList_GET_SIZE(wl) > 0) {
                CTransfer *waiter = (CTransfer *)PyList_GET_ITEM(wl, 0);
                int rc;
                Py_INCREF(waiter);
                if (PyList_SetSlice(wl, 0, 1, NULL) < 0) {
                    Py_DECREF(waiter);
                    return -1;
                }
                ns->grants[port] += 1;
                ns->wait_time[port] += now - waiter->wait_since;
                ctx->seq += 1;
                rc = heap_push_event(ctx->queue, now, ctx->seq,
                                     (PyObject *)waiter);
                Py_DECREF(waiter);
                if (rc < 0)
                    return -1;
            }
            else {
                ns->in_use[port] = 0;
            }
        }
        return record_complete(ctx, rec, ns, now);
    }
    if (stage == STAGE_DELIVER) {
        PyObject *pending = rec->pending;
        PyObject *recvq = rec->recv;
        PyObject *argv[2];
        PyObject *res;
        rec->pending = NULL;
        rec->recv = NULL;
        pool_put(ns, rec);
        if (ns->deliver == NULL || ns->deliver == Py_None) {
            Py_XDECREF(pending);
            Py_XDECREF(recvq);
            PyErr_SetString(PyExc_RuntimeError,
                            "matched transfer with no bound deliver callable");
            return -1;
        }
        if (ctx_sync_out(ctx, now) < 0) {
            Py_XDECREF(pending);
            Py_XDECREF(recvq);
            return -1;
        }
        argv[0] = pending != NULL ? pending : Py_None;
        argv[1] = recvq != NULL ? recvq : Py_None;
        res = PyObject_Vectorcall(ns->deliver, argv, 2, NULL);
        Py_XDECREF(pending);
        Py_XDECREF(recvq);
        if (res == NULL) {
            ctx_resync_after_error(ctx);
            return -1;
        }
        Py_DECREF(res);
        return ctx_sync_in(ctx);
    }
    if (stage == STAGE_DELAY) { /* contention-free: one analytic delay */
        rec->stage = STAGE_DELAY_DONE;
        ctx->seq += 1;
        return heap_push_event(ctx->queue, now + rec->hold, ctx->seq,
                               (PyObject *)rec);
    }
    if (stage == STAGE_DELAY_DONE)
        return record_complete(ctx, rec, ns, now);
    PyErr_Format(PyExc_RuntimeError, "corrupt transfer record stage %d", stage);
    return -1;
}

/* Run one generic event: the reference loop's body, with seq handed back
 * to Python for the callback window.  Returns 0, or -1 with an exception
 * set (including the event's own failure propagation). */
static int
run_generic_event(DrainCtx *ctx, PyObject *tpool, PyObject *event, double now)
{
    PyObject *callbacks, *fresh, *ok, *pooled;
    Py_ssize_t i, ncb;
    int truthy;
    if (ctx_sync_out(ctx, now) < 0)
        return -1;
    callbacks = PyObject_GetAttr(event, s_callbacks);
    if (callbacks == NULL)
        return -1;
    fresh = PyList_New(0);
    if (fresh == NULL) {
        Py_DECREF(callbacks);
        return -1;
    }
    if (PyObject_SetAttr(event, s_callbacks, fresh) < 0) {
        Py_DECREF(fresh);
        Py_DECREF(callbacks);
        return -1;
    }
    Py_DECREF(fresh);
    if (PyObject_SetAttr(event, s__state, str_processed) < 0) {
        Py_DECREF(callbacks);
        return -1;
    }
    if (PyList_CheckExact(callbacks)) {
        ncb = PyList_GET_SIZE(callbacks);
        for (i = 0; i < ncb; i++) {
            PyObject *cb = PyList_GET_ITEM(callbacks, i);
            PyObject *res;
            Py_INCREF(cb);
            res = PyObject_CallOneArg(cb, event);
            Py_DECREF(cb);
            if (res == NULL) {
                Py_DECREF(callbacks);
                ctx_resync_after_error(ctx);
                return -1;
            }
            Py_DECREF(res);
        }
    }
    else {
        /* e.g. the () class attr on slot records reached defensively */
        PyObject *seq_fast =
            PySequence_Fast(callbacks, "event.callbacks must be a sequence");
        if (seq_fast == NULL) {
            Py_DECREF(callbacks);
            return -1;
        }
        ncb = PySequence_Fast_GET_SIZE(seq_fast);
        for (i = 0; i < ncb; i++) {
            PyObject *cb = PySequence_Fast_GET_ITEM(seq_fast, i);
            PyObject *res;
            Py_INCREF(cb);
            res = PyObject_CallOneArg(cb, event);
            Py_DECREF(cb);
            if (res == NULL) {
                Py_DECREF(seq_fast);
                Py_DECREF(callbacks);
                ctx_resync_after_error(ctx);
                return -1;
            }
            Py_DECREF(res);
        }
        Py_DECREF(seq_fast);
    }
    Py_DECREF(callbacks);
    if (ctx_sync_in(ctx) < 0)
        return -1;
    /* failure propagation: raise event._value unless defused */
    ok = PyObject_GetAttr(event, s__ok);
    if (ok == NULL)
        return -1;
    truthy = (ok == Py_False);
    Py_DECREF(ok);
    if (truthy) {
        PyObject *defused = PyObject_GetAttr(event, s_defused);
        int is_defused;
        if (defused == NULL)
            return -1;
        is_defused = PyObject_IsTrue(defused);
        Py_DECREF(defused);
        if (is_defused < 0)
            return -1;
        if (!is_defused) {
            PyObject *value = PyObject_GetAttr(event, s__value);
            if (value == NULL)
                return -1;
            if (PyExceptionInstance_Check(value))
                PyErr_SetObject(PyExceptionInstance_Class(value), value);
            else
                PyErr_Format(PyExc_TypeError,
                             "failed event value %R is not an exception",
                             value);
            Py_DECREF(value);
            return -1;
        }
    }
    /* pooled-timeout recycle */
    pooled = PyObject_GetAttr(event, s__pooled);
    if (pooled == NULL)
        return -1;
    truthy = PyObject_IsTrue(pooled);
    Py_DECREF(pooled);
    if (truthy < 0)
        return -1;
    if (truthy && PyList_GET_SIZE(tpool) < TIMEOUT_POOL_MAX)
        return PyList_Append(tpool, event);
    return 0;
}

/* Write seq/now/events_processed back, preserving any pending exception. */
static void
drain_finalize(DrainCtx *ctx, double now, long processed)
{
    PyObject *type, *value, *tb;
    long ep;
    PyErr_Fetch(&type, &value, &tb);
    if (set_long_attr(ctx->sim, s__seq, ctx->seq) < 0)
        PyErr_Clear();
    if (set_double_attr(ctx->sim, s__now, now) < 0)
        PyErr_Clear();
    if (get_long_attr(ctx->sim, s_events_processed, &ep) == 0) {
        if (set_long_attr(ctx->sim, s_events_processed, ep + processed) < 0)
            PyErr_Clear();
    }
    else {
        PyErr_Clear();
    }
    PyErr_Restore(type, value, tb);
}

/* drain(sim, stop_event_or_None, stop_time_or_None) -> bool
 * The tracer-off event loop; returns False on a stop_time horizon stop,
 * True otherwise (matching Simulator._run_fast). */
static PyObject *
despeed_drain(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *sim, *stop_event, *queue, *tpool;
    DrainCtx ctx;
    double stop_time = 0.0, cur_now;
    int has_stop_time = 0, result = 1, failed = 0;
    long processed = 0;

    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "drain(sim, stop_event, stop_time)");
        return NULL;
    }
    sim = args[0];
    stop_event = (args[1] == Py_None) ? NULL : args[1];
    if (args[2] != Py_None) {
        stop_time = PyFloat_AsDouble(args[2]);
        if (stop_time == -1.0 && PyErr_Occurred())
            return NULL;
        has_stop_time = 1;
    }
    if (ensure_runtime() < 0)
        return NULL;
    queue = PyObject_GetAttr(sim, s__queue);
    if (queue == NULL)
        return NULL;
    if (!PyList_CheckExact(queue)) {
        Py_DECREF(queue);
        PyErr_SetString(PyExc_TypeError, "sim._queue must be a list");
        return NULL;
    }
    tpool = PyObject_GetAttr(sim, s__timeout_pool);
    if (tpool == NULL || !PyList_CheckExact(tpool)) {
        Py_XDECREF(tpool);
        Py_DECREF(queue);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "sim._timeout_pool must be a list");
        return NULL;
    }
    ctx.sim = sim;
    ctx.queue = queue;
    if (get_long_attr(sim, s__seq, &ctx.seq) < 0 ||
        get_double_attr(sim, s__now, &cur_now) < 0) {
        Py_DECREF(tpool);
        Py_DECREF(queue);
        return NULL;
    }

    while (PyList_GET_SIZE(queue) > 0) {
        PyObject *item, *event;
        double t;
        int err = 0;

        if (stop_event != NULL) {
            PyObject *state = PyObject_GetAttr(stop_event, s__state);
            int eq;
            if (state == NULL) {
                failed = 1;
                break;
            }
            eq = PyObject_RichCompareBool(state, str_processed, Py_EQ);
            Py_DECREF(state);
            if (eq < 0) {
                failed = 1;
                break;
            }
            if (eq)
                break; /* finished: the awaited event has been processed */
        }
        if (has_stop_time) {
            PyObject *head = PyList_GET_ITEM(queue, 0);
            double t0;
            if (!PyTuple_CheckExact(head) || PyTuple_GET_SIZE(head) < 4) {
                PyErr_SetString(PyExc_TypeError,
                                "heap items must be (time, priority, seq, "
                                "event) tuples");
                failed = 1;
                break;
            }
            t0 = item_time(head, &err);
            if (err) {
                failed = 1;
                break;
            }
            if (t0 > stop_time) {
                cur_now = stop_time;
                result = 0; /* horizon stop with events still queued */
                break;
            }
        }

        item = heap_pop(queue);
        if (item == NULL) {
            failed = 1;
            break;
        }
        if (!PyTuple_CheckExact(item) || PyTuple_GET_SIZE(item) < 4) {
            PyErr_SetString(PyExc_TypeError,
                            "heap items must be (time, priority, seq, event) "
                            "tuples");
            Py_DECREF(item);
            failed = 1;
            break;
        }
        t = item_time(item, &err);
        if (err) {
            Py_DECREF(item);
            failed = 1;
            break;
        }
        event = PyTuple_GET_ITEM(item, 3); /* borrowed from item */
        cur_now = t;

        if (Py_TYPE(event) == &CTransferType) {
            processed += 1;
            if (advance_record(&ctx, (CTransfer *)event, t) < 0) {
                Py_DECREF(item);
                failed = 1;
                break;
            }
        }
        else if ((PyObject *)Py_TYPE(event) == py_transfer_cls) {
            /* A Python slot record (mixed-network setups): bound-method
             * dispatch with seq/now synced around it. */
            PyObject *step, *res;
            processed += 1;
            if (ctx_sync_out(&ctx, t) < 0) {
                Py_DECREF(item);
                failed = 1;
                break;
            }
            step = PyObject_GetAttr(event, s_step);
            if (step == NULL) {
                Py_DECREF(item);
                failed = 1;
                break;
            }
            res = PyObject_CallOneArg(step, event);
            Py_DECREF(step);
            if (res == NULL) {
                ctx_resync_after_error(&ctx);
                Py_DECREF(item);
                failed = 1;
                break;
            }
            Py_DECREF(res);
            if (ctx_sync_in(&ctx) < 0) {
                Py_DECREF(item);
                failed = 1;
                break;
            }
        }
        else {
            processed += 1;
            if (run_generic_event(&ctx, tpool, event, t) < 0) {
                Py_DECREF(item);
                failed = 1;
                break;
            }
        }
        Py_DECREF(item);
    }

    drain_finalize(&ctx, cur_now, processed);
    Py_DECREF(tpool);
    Py_DECREF(queue);
    if (failed)
        return NULL;
    return PyBool_FromLong(result);
}

/* step_record(sim, record): advance one already-popped record (used by the
 * compiled simulator's step() and traced loop).  The caller has set
 * sim._now to the record's pop time. */
static PyObject *
despeed_step_record(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *sim, *queue;
    DrainCtx ctx;
    double now;
    int rc;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "step_record(sim, record)");
        return NULL;
    }
    sim = args[0];
    if (Py_TYPE(args[1]) != &CTransferType) {
        PyErr_SetString(PyExc_TypeError, "step_record: not a CTransfer");
        return NULL;
    }
    if (ensure_runtime() < 0)
        return NULL;
    queue = PyObject_GetAttr(sim, s__queue);
    if (queue == NULL)
        return NULL;
    if (!PyList_CheckExact(queue)) {
        Py_DECREF(queue);
        PyErr_SetString(PyExc_TypeError, "sim._queue must be a list");
        return NULL;
    }
    ctx.sim = sim;
    ctx.queue = queue;
    if (get_long_attr(sim, s__seq, &ctx.seq) < 0 ||
        get_double_attr(sim, s__now, &now) < 0) {
        Py_DECREF(queue);
        return NULL;
    }
    rc = advance_record(&ctx, (CTransfer *)args[1], now);
    /* Write the (possibly advanced) counter back even on failure: for
     * Python-raised errors advance_record already resynced ctx.seq. */
    {
        PyObject *type, *value, *tb;
        PyErr_Fetch(&type, &value, &tb);
        if (set_long_attr(sim, s__seq, ctx.seq) < 0)
            PyErr_Clear();
        PyErr_Restore(type, value, tb);
    }
    Py_DECREF(queue);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef despeed_methods[] = {
    {"drain", (PyCFunction)(void (*)(void))despeed_drain, METH_FASTCALL,
     "Tracer-off event loop over sim._queue; returns False on a horizon "
     "stop."},
    {"step_record", (PyCFunction)(void (*)(void))despeed_step_record,
     METH_FASTCALL, "Advance one popped CTransfer record."},
    {NULL},
};

static struct PyModuleDef despeed_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.des._despeed",
    .m_doc = "Native event loop, slot records and network scheduling for "
             "the compiled simulator backend.",
    .m_size = -1,
    .m_methods = despeed_methods,
};

PyMODINIT_FUNC
PyInit__despeed(void)
{
    PyObject *mod;
    if (PyType_Ready(&CTransferType) < 0 || PyType_Ready(&NetStateType) < 0)
        return NULL;
    s__seq = PyUnicode_InternFromString("_seq");
    s__now = PyUnicode_InternFromString("_now");
    s__queue = PyUnicode_InternFromString("_queue");
    s__timeout_pool = PyUnicode_InternFromString("_timeout_pool");
    s_events_processed = PyUnicode_InternFromString("events_processed");
    s_callbacks = PyUnicode_InternFromString("callbacks");
    s__state = PyUnicode_InternFromString("_state");
    s__ok = PyUnicode_InternFromString("_ok");
    s__value = PyUnicode_InternFromString("_value");
    s_defused = PyUnicode_InternFromString("defused");
    s__pooled = PyUnicode_InternFromString("_pooled");
    s_step = PyUnicode_InternFromString("step");
    s_succeed = PyUnicode_InternFromString("succeed");
    long_one = PyLong_FromLong(1);
    if (s__seq == NULL || s__now == NULL || s__queue == NULL ||
        s__timeout_pool == NULL || s_events_processed == NULL ||
        s_callbacks == NULL || s__state == NULL || s__ok == NULL ||
        s__value == NULL || s_defused == NULL || s__pooled == NULL ||
        s_step == NULL || s_succeed == NULL || long_one == NULL)
        return NULL;
    mod = PyModule_Create(&despeed_module);
    if (mod == NULL)
        return NULL;
    Py_INCREF(&CTransferType);
    if (PyModule_AddObject(mod, "CTransfer", (PyObject *)&CTransferType) < 0) {
        Py_DECREF(&CTransferType);
        Py_DECREF(mod);
        return NULL;
    }
    Py_INCREF(&NetStateType);
    if (PyModule_AddObject(mod, "NetState", (PyObject *)&NetStateType) < 0) {
        Py_DECREF(&NetStateType);
        Py_DECREF(mod);
        return NULL;
    }
    if (PyModule_AddIntConstant(mod, "RECORD_POOL_MAX", RECORD_POOL_MAX) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
