"""The simulator core: a virtual clock and an event queue.

The engine is deliberately minimal — a binary heap keyed on
``(time, priority, sequence)`` — because the parallel-machine simulation
above it generates hundreds of thousands of events per run and queue
throughput dominates.  Determinism is guaranteed by the monotonically
increasing sequence number: two events at the same time and priority are
processed in creation order, so repeated runs are bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.des.event import Event, Timeout, AllOf, AnyOf
from repro.des.process import Process
from repro.errors import DeadlockError, SimulationError


class Simulator:
    """Discrete-event simulator with a floating-point virtual clock (seconds)."""

    def __init__(self, trace: bool = False):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._processes: list[Process] = []
        #: Optional structured tracer (installed by :class:`repro.des.Tracer`).
        self.tracer = None
        if trace:
            from repro.des.monitor import Tracer

            self.tracer = Tracer()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def all_of(self, events) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn ``generator`` as a process; returns the (joinable) process."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # -- running -----------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = time
        if self.tracer is not None:
            self.tracer.record(time, event)
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, ``until`` seconds, or an event fires.

        Returns the value of ``until`` when it is an event.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while
        processes are still alive and no ``until`` time was given.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(f"run(until={stop_time}) is in the past")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            next_time = self._queue[0][0]
            if stop_time is not None and next_time > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            self._raise_deadlock("the awaited event never fired")
        if stop_time is None:
            alive = [p for p in self._processes if p.is_alive]
            if alive:
                self._raise_deadlock(f"{len(alive)} process(es) still blocked")
        return None

    def _raise_deadlock(self, reason: str) -> None:
        waiting = []
        for proc in self._processes:
            if proc.is_alive:
                target = proc.waiting_on
                waiting.append(f"{proc.name} waiting on {getattr(target, 'name', target)!r}")
        raise DeadlockError(
            f"simulation deadlocked at t={self._now:.6f}: {reason}", waiting=waiting
        )
