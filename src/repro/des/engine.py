"""The simulator core: a virtual clock and an event queue.

The engine is deliberately minimal — a binary heap keyed on
``(time, priority, sequence)`` — because the parallel-machine simulation
above it generates hundreds of thousands of events per run and queue
throughput dominates.  Determinism is guaranteed by the monotonically
increasing sequence number: two events at the same time and priority are
processed in creation order, so repeated runs are bit-identical.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Generator, Optional

from repro.des.event import Event, Timeout, AllOf, AnyOf, PROCESSED, TRIGGERED
from repro.des.process import Process
from repro.errors import DeadlockError, SimulationError

#: Upper bound on recycled Timeout objects kept alive between uses.
_POOL_MAX = 1024


class Simulator:
    """Discrete-event simulator with a floating-point virtual clock (seconds)."""

    #: Backend identity; subclasses in :mod:`repro.des.backends` override.
    backend = "python"

    def __init__(self, trace: bool = False):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._processes: list[Process] = []
        self._timeout_pool: list[Timeout] = []
        #: Events popped and processed so far (perf instrumentation; the
        #: counter is maintained with one local increment per event, which
        #: is not measurable against the cost of processing the event).
        self.events_processed: int = 0
        #: Peak event-heap depth observed at :meth:`_schedule` time (one
        #: ``len`` + compare per scheduled event, same always-on budget as
        #: ``events_processed``).  Fast paths that push onto the heap
        #: directly — eager-send completions, lowered slot records — are
        #: not sampled, so this is a tight lower bound on the true peak;
        #: it feeds the ``des_heap_depth_peak`` metrics gauge.
        self.heap_peak: int = 0
        #: Optional structured tracer (installed by :class:`repro.des.Tracer`).
        self.tracer = None
        if trace:
            from repro.des.monitor import Tracer

            self.tracer = Tracer()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def pooled_timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """A :class:`Timeout` from the recycle pool (pure-delay fast path).

        Pooled timeouts are returned to the pool by the event loop right
        after their callbacks run, so the caller must yield them immediately
        and never keep a reference past the wait (the machine-cost helpers
        on :class:`~repro.mpi.context.RankContext` are the intended users).
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout.name = name
            timeout.delay = delay
            timeout._ok = True
            timeout._value = value
            timeout._state = TRIGGERED
            timeout.defused = False
            self._schedule(timeout, delay=delay)
            return timeout
        timeout = Timeout(self, delay, value=value, name=name)
        timeout._pooled = True
        return timeout

    def all_of(self, events) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn ``generator`` as a process; returns the (joinable) process."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        if len(self._queue) > self.heap_peak:
            self.heap_peak = len(self._queue)

    # -- running -----------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = time
        if self.tracer is not None:
            self.tracer.record(time, event)
        callbacks, event.callbacks = event.callbacks, []
        event._state = PROCESSED
        for callback in callbacks:
            callback(event)
        self.events_processed += 1
        if event._ok is False and not event.defused:
            raise event._value
        if event._pooled and len(self._timeout_pool) < _POOL_MAX:
            self._timeout_pool.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, ``until`` seconds, or an event fires.

        Returns the value of ``until`` when it is an event.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while
        processes are still alive and no ``until`` time was given.

        The event loop is the simulation's hottest code: paper-scale runs
        process ~10^6 events, so the tracer-off path below is a tight loop
        with everything bound locally and no per-event tracer check.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(f"run(until={stop_time}) is in the past")

        # The event loop allocates many small reference cycles (events <->
        # callbacks <-> processes); the cyclic collector's periodic scans
        # over the live heap cost ~10% of a paper-scale run.  Refcounting
        # still frees the acyclic majority immediately; cycles are swept
        # when collection resumes after the loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.tracer is None:
                finished = self._run_fast(stop_event, stop_time)
            else:
                finished = self._run_traced(stop_event, stop_time)
        finally:
            if gc_was_enabled:
                gc.enable()
        if not finished:
            # Stopped at the stop_time horizon with events still queued.
            return None

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            self._raise_deadlock("the awaited event never fired")
        if stop_time is None:
            alive = [p for p in self._processes if p.is_alive]
            if alive:
                self._raise_deadlock(f"{len(alive)} process(es) still blocked")
        return None

    def _run_fast(self, stop_event: Optional[Event], stop_time: Optional[float]) -> bool:
        """Tracer-off event loop.  Returns False on a stop_time horizon stop."""
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        processed = 0
        no_stops = stop_event is None and stop_time is None
        try:
            while queue:
                if not no_stops:
                    if stop_event is not None and stop_event._state == PROCESSED:
                        return True
                    if stop_time is not None and queue[0][0] > stop_time:
                        self._now = stop_time
                        return False
                time, _priority, _seq, event = pop(queue)
                self._now = time
                callbacks = event.callbacks
                event.callbacks = []
                event._state = PROCESSED
                for callback in callbacks:
                    callback(event)
                processed += 1
                if event._ok is False and not event.defused:
                    raise event._value
                if event._pooled and len(pool) < _POOL_MAX:
                    pool.append(event)
        finally:
            self.events_processed += processed
        return True

    def _run_traced(self, stop_event: Optional[Event], stop_time: Optional[float]) -> bool:
        """Event loop with the structured tracer attached.

        Pooled timeouts are *not* recycled here: the tracer may hold on to
        the event objects it records.
        """
        while self._queue:
            if stop_event is not None and stop_event.processed:
                return True
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return False
            time, _priority, _seq, event = heapq.heappop(self._queue)
            self._now = time
            self.tracer.record(time, event)
            callbacks, event.callbacks = event.callbacks, []
            event._state = PROCESSED
            for callback in callbacks:
                callback(event)
            self.events_processed += 1
            if event._ok is False and not event.defused:
                raise event._value
        return True

    def _raise_deadlock(self, reason: str) -> None:
        waiting = []
        for proc in self._processes:
            if proc.is_alive:
                target = proc.waiting_on
                waiting.append(f"{proc.name} waiting on {getattr(target, 'name', target)!r}")
        raise DeadlockError(
            f"simulation deadlocked at t={self._now:.6f}: {reason}", waiting=waiting
        )
