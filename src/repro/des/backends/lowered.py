"""The lowered-plan Python backend.

Same simulation, flattened hot path.  The reference engine drives every
network transfer through generic machinery: a pooled deferral timeout, two
:class:`~repro.des.resource.Resource` requests (an Event allocation, a
grant Event, and two closures each), a hold timeout, and a completion
Event — five heap entries and roughly a dozen object allocations per
message.  The lowered backend replaces all of that with **one pooled slot
record** per in-flight transfer that the event loop advances through an
integer state machine, reading precomputed :class:`EnginePlan` tables.

Schedule parity
---------------
Determinism in this engine is the ``(time, priority, sequence)`` heap key,
so bit-identity across backends demands *sequence-for-sequence* parity:
every ``_schedule`` call the reference path makes has exactly one
counterpart here, in the same order, at the same time and priority —

====================================  =====================================
reference event                       lowered slot state
====================================  =====================================
``pooled_timeout(0)`` deferral        record pushed at ``now`` (START)
eject-port grant Event                record re-pushed at ``now`` (ACQ1)
inject-port grant Event               record re-pushed at ``now`` (ACQ2)
hold-time ``pooled_timeout``          record pushed at ``now+hold`` (RELEASE)
``done.succeed()``                    ``done.succeed()`` (unchanged)
====================================  =====================================

A transfer that finds a port busy enqueues without consuming a sequence
number, and is re-pushed by the releasing transfer — exactly when the
reference ``Resource`` would have scheduled the grant.  Timestamps,
event order, and every counter therefore match the reference bit for bit;
the golden and hypothesis backend tests enforce this.

Fallbacks: the LINKS contention mode, attached observability sinks, and an
engine-level tracer all use the inherited reference transfer path (on the
lowered engine the two paths schedule identically, so mixing modes across
runs stays bit-identical).
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush

from repro.des.engine import Simulator
from repro.des.event import Event, PROCESSED
from repro.errors import MachineError
from repro.machine.network import ContentionMode, Network
from repro.des.backends.plan import EnginePlan

#: Slot-record states; the value is the *next* action the loop performs.
_START = 0  # acquire the ejection port (or branch to the delay path)
_ACQ1 = 1  # ejection port held; acquire the injection port
_ACQ2 = 2  # both ports held; serialize for the hold time
_RELEASE = 3  # release ports, wake waiters, deliver
_DELAY = 4  # contention-free path: single analytic delay
_DELAY_DONE = 5  # analytic delay elapsed; deliver
_DELIVER = 6  # matched-transfer fast path: hand the message to the receiver

#: Recycled slot records kept per network (matches the engine's timeout pool
#: bound; in-flight transfers beyond this simply allocate).
_RECORD_POOL_MAX = 1024


class _Transfer:
    """One in-flight transfer: a pooled array-of-struct slot record.

    Instances are heap payloads; the loop recognizes them by exact class
    and calls ``step`` instead of running Event callbacks.  ``name`` and
    ``callbacks`` exist only so a defensively-attached tracer or diagnostic
    does not crash on one.
    """

    __slots__ = (
        "step",
        "stage",
        "port1",
        "port2",
        "hold",
        "done",
        "wait_since",
        "pending",
        "recv",
    )

    name = "xfer[slot]"
    callbacks = ()

    def __init__(self, step):
        self.step = step
        self.stage = _START
        self.port1 = 0
        self.port2 = 0
        self.hold = 0.0
        self.done = None
        self.wait_since = 0.0
        #: Matched-transfer fast path: the pending send and receive request
        #: to deliver directly at the _DELIVER stage (None on the generic
        #: Event-completion path).
        self.pending = None
        self.recv = None


class LoweredSimulator(Simulator):
    """Reference :class:`Simulator` with slotted-event dispatch."""

    backend = "lowered"
    #: Slot records may only be scheduled on engines that advertise this
    #: (the reference loop would crash trying to run Event callbacks on one).
    handles_slot_records = True

    def __init__(self, trace: bool = False):
        super().__init__(trace=trace)
        #: Lowered networks bound to this engine.  With exactly one, the
        #: fast loop inlines its transfer state machine; with several (or
        #: none) records go through bound-method dispatch.
        self._slot_networks: list = []

    def step(self) -> None:
        if self._queue and self._queue[0][3].__class__ is _Transfer:
            _time, _priority, _seq, record = heapq.heappop(self._queue)
            self._now = _time
            record.step(record)
            self.events_processed += 1
            return
        super().step()

    def _run_fast(self, stop_event, stop_time) -> bool:
        if (
            stop_event is None
            and stop_time is None
            and len(self._slot_networks) == 1
        ):
            return self._run_inlined(self._slot_networks[0])
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        processed = 0
        no_stops = stop_event is None and stop_time is None
        try:
            while queue:
                if not no_stops:
                    if stop_event is not None and stop_event._state == PROCESSED:
                        return True
                    if stop_time is not None and queue[0][0] > stop_time:
                        self._now = stop_time
                        return False
                time, _priority, _seq, event = pop(queue)
                self._now = time
                if event.__class__ is _Transfer:
                    event.step(event)
                    processed += 1
                    continue
                callbacks = event.callbacks
                event.callbacks = []
                event._state = PROCESSED
                for callback in callbacks:
                    callback(event)
                processed += 1
                if event._ok is False and not event.defused:
                    raise event._value
                if event._pooled and len(pool) < 1024:
                    pool.append(event)
        finally:
            self.events_processed += processed
        return True

    def _run_inlined(self, net: "LoweredNetwork") -> bool:
        """Drain the queue with ``net``'s transfer state machine inlined.

        Record events are ~2/3 of a modeled run, so this loop keeps their
        whole lifecycle in local variables — port tables, record pool, the
        heap, and crucially the sequence counter.  ``self._seq`` is synced
        to the local counter before control leaves the loop (Event
        callbacks, ``done.succeed()``, delivery) and reloaded after, so
        externally-scheduled events still get exactly the sequence numbers
        the reference engine would hand out.
        """
        queue = self._queue
        pool = self._timeout_pool
        transfer_cls = _Transfer
        pop = heappop
        push = heappush
        in_use = net._port_in_use
        waiter_tbl = net._port_waiters
        grants = net._port_grants
        wait_time = net._port_wait_time
        record_pool = net._record_pool
        deliver = net._deliver
        processed = 0
        seq = self._seq
        try:
            while queue:
                time, _priority, _seq_, event = pop(queue)
                self._now = time
                if event.__class__ is transfer_cls:
                    processed += 1
                    stage = event.stage
                    if stage <= _ACQ1:  # _START or _ACQ1: acquire a port
                        port = event.port1 if stage == _START else event.port2
                        event.stage = stage + 1
                        if in_use[port]:
                            event.wait_since = time
                            waiters = waiter_tbl[port]
                            if waiters is None:
                                waiters = waiter_tbl[port] = []
                            waiters.append(event)
                        else:
                            in_use[port] = 1
                            grants[port] += 1
                            seq += 1
                            push(queue, (time, 1, seq, event))
                    elif stage == _ACQ2:
                        event.stage = _RELEASE
                        seq += 1
                        push(queue, (time + event.hold, 1, seq, event))
                    elif stage == _RELEASE:
                        for port in (event.port2, event.port1):
                            waiters = waiter_tbl[port]
                            if waiters:
                                waiter = waiters.pop(0)
                                grants[port] += 1
                                wait_time[port] += time - waiter.wait_since
                                seq += 1
                                push(queue, (time, 1, seq, waiter))
                            else:
                                in_use[port] = 0
                        done = event.done
                        if done is None:
                            event.stage = _DELIVER
                            seq += 1
                            push(queue, (time, 1, seq, event))
                        else:
                            event.done = None
                            if len(record_pool) < _RECORD_POOL_MAX:
                                record_pool.append(event)
                            self._seq = seq
                            done.succeed()
                            seq = self._seq
                    elif stage == _DELIVER:
                        pending, recv = event.pending, event.recv
                        event.pending = event.recv = None
                        if len(record_pool) < _RECORD_POOL_MAX:
                            record_pool.append(event)
                        self._seq = seq
                        deliver(pending, recv)
                        seq = self._seq
                    elif stage == _DELAY:
                        event.stage = _DELAY_DONE
                        seq += 1
                        push(queue, (time + event.hold, 1, seq, event))
                    else:  # _DELAY_DONE
                        done = event.done
                        if done is None:
                            event.stage = _DELIVER
                            seq += 1
                            push(queue, (time, 1, seq, event))
                        else:
                            event.done = None
                            if len(record_pool) < _RECORD_POOL_MAX:
                                record_pool.append(event)
                            self._seq = seq
                            done.succeed()
                            seq = self._seq
                    continue
                # Generic event: identical to the reference loop, with the
                # sequence counter handed back for the callback window.
                self._seq = seq
                callbacks = event.callbacks
                event.callbacks = []
                event._state = PROCESSED
                for callback in callbacks:
                    callback(event)
                seq = self._seq
                processed += 1
                if event._ok is False and not event.defused:
                    raise event._value
                if event._pooled and len(pool) < 1024:
                    pool.append(event)
            self._seq = seq
        except BaseException:
            # self._seq was synced before any call that can raise; the
            # local counter may be stale here, so do not write it back.
            self.events_processed += processed
            raise
        self.events_processed += processed
        return True

    def _run_traced(self, stop_event, stop_time) -> bool:
        # A tracer-on run never sees slot records (the network lowers only
        # tracerless runs), but handle them defensively so a tracer
        # attached mid-run degrades to recorded slots, not a crash.
        while self._queue:
            if stop_event is not None and stop_event.processed:
                return True
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return False
            time, _priority, _seq, event = heapq.heappop(self._queue)
            self._now = time
            self.tracer.record(time, event)
            if event.__class__ is _Transfer:
                event.step(event)
                self.events_processed += 1
                continue
            callbacks, event.callbacks = event.callbacks, []
            event._state = PROCESSED
            for callback in callbacks:
                callback(event)
            self.events_processed += 1
            if event._ok is False and not event.defused:
                raise event._value
        return True


class LoweredNetwork(Network):
    """Plan-driven network scheduler (NONE and ENDPOINT contention).

    Transfers run as slot records off :class:`EnginePlan` tables; the LINKS
    mode, observability, and traced runs inherit the reference path.
    """

    def __init__(self, sim, mesh, cost_model=None, contention=ContentionMode.ENDPOINT,
                 plan: EnginePlan | None = None):
        super().__init__(sim, mesh, cost_model, contention=contention)
        self.plan = plan
        self._lowered_on = (
            plan is not None
            and self.contention in (ContentionMode.NONE, ContentionMode.ENDPOINT)
            and sim.tracer is None
            and getattr(sim, "handles_slot_records", False)
        )
        if self._lowered_on:
            nports = plan.num_ports
            #: Port state, struct-of-arrays: held flag, waiter FIFOs, and
            #: the reference Resource's wait/grant accounting.
            self._port_in_use = bytearray(nports)
            self._port_waiters: list = [None] * nports
            self._port_wait_time = [0.0] * nports
            self._port_grants = [0] * nports
            #: (src*N + dst) -> {nbytes -> precomputed total delay/hold}.
            self._edge_memo: dict[int, dict] = {}
            self._record_pool: list[_Transfer] = []
            self._matched_fast = True
            #: Delivery callable bound by :class:`~repro.mpi.communicator.World`
            #: (``bind_deliver``); invoked as ``deliver(pending, recv_req)``.
            self._deliver = None
            #: Fast-path flags precomputed off the contention mode.
            self._endpoint = self.contention is ContentionMode.ENDPOINT
            self._n = plan.num_nodes
            sim._slot_networks.append(self)

    def bind_deliver(self, deliver) -> None:
        """Install the matcher's delivery function for the fast path."""
        self._deliver = deliver

    # -- lowered transfer path -------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int) -> Event:
        if not self._lowered_on or self.obs is not None:
            return super().transfer(src, dst, nbytes)
        if nbytes < 0:
            raise MachineError(f"negative message size: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        sim = self.sim
        done = Event(sim, name="xfer")
        pool = self._record_pool
        record = pool.pop() if pool else _Transfer(self._step)
        record.done = done

        if src != dst and self._endpoint:
            record.stage = _START
            record.port1 = 2 * dst  # ejection port (acquired first)
            record.port2 = 2 * src + 1  # injection port
            record.hold = self._edge_hold(src, dst, nbytes)
        elif src == dst:
            # On-node copy: same two-event shape as the reference
            # (deferral, then the copy delay), no ports.
            record.stage = _DELAY
            record.hold = self.plan.per_byte_s * nbytes
        else:
            record.stage = _DELAY
            record.hold = self._edge_delay_none(src, dst, nbytes)
        # The deferral: one sequence number, exactly like the reference's
        # pooled_timeout(0.0) — same-timestamp operations posted earlier
        # keep their place in the schedule.
        sim._seq += 1
        heappush(sim._queue, (sim._now, 1, sim._seq, record))
        return done

    def transfer_matched(self, src: int, dst: int, pending, recv_req) -> None:
        """Matched-transfer fast path: deliver from the slot record.

        Same schedule as ``transfer()`` + a completion-Event pop — the
        final record push stands in for ``done.succeed()`` (one sequence
        number, same time and priority) and the ``_DELIVER`` stage runs
        what the done-event's delivery callback would have — but with no
        Event, no closure, and no callback-list churn per message.  Only
        called by the matcher when the lowered path is on and no
        observability sink is attached.
        """
        nbytes = pending.message.nbytes
        if nbytes < 0:
            raise MachineError(f"negative message size: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        sim = self.sim
        pool = self._record_pool
        record = pool.pop() if pool else _Transfer(self._step)
        record.pending = pending
        record.recv = recv_req

        if src != dst and self._endpoint:
            record.stage = _START
            record.port1 = 2 * dst  # ejection port (acquired first)
            record.port2 = 2 * src + 1  # injection port
            # Memo hit inline (the overwhelmingly common case in steady
            # state); misses fill the memo through _edge_hold.
            by_size = self._edge_memo.get(src * self._n + dst)
            hold = by_size.get(nbytes) if by_size is not None else None
            record.hold = (
                hold if hold is not None else self._edge_hold(src, dst, nbytes)
            )
        elif src == dst:
            record.stage = _DELAY
            record.hold = self.plan.per_byte_s * nbytes
        else:
            record.stage = _DELAY
            record.hold = self._edge_delay_none(src, dst, nbytes)
        sim._seq += 1
        heappush(sim._queue, (sim._now, 1, sim._seq, record))

    def _edge_hold(self, src: int, dst: int, nbytes: int) -> float:
        """Header + occupancy for one (src, dst, nbytes) edge, memoized."""
        edge = src * self.plan.num_nodes + dst
        by_size = self._edge_memo.get(edge)
        if by_size is None:
            by_size = self._edge_memo[edge] = {}
        hold = by_size.get(nbytes)
        if hold is None:
            plan = self.plan
            occupancy = plan.occupancy_memo.get(nbytes)
            if occupancy is None:
                occupancy = plan.occupancy_memo[nbytes] = self.cost.occupancy(nbytes)
            # Same association order as the reference: header + occupancy.
            hold = by_size[nbytes] = float(plan.header_s[src, dst]) + occupancy
        return hold

    def _edge_delay_none(self, src: int, dst: int, nbytes: int) -> float:
        """Analytic point-to-point time (NONE contention), memoized."""
        edge = src * self.plan.num_nodes + dst
        by_size = self._edge_memo.get(edge)
        if by_size is None:
            by_size = self._edge_memo[edge] = {}
        delay = by_size.get(nbytes)
        if delay is None:
            delay = by_size[nbytes] = self.cost.point_to_point(
                nbytes, int(self.plan.hops[src, dst])
            )
        return delay

    def _step(self, record: _Transfer) -> None:
        """Advance one slot record; called by the engine loop on pop."""
        stage = record.stage
        sim = self.sim
        if stage <= _ACQ1:  # _START or _ACQ1: acquire a port
            port = record.port1 if stage == _START else record.port2
            record.stage = stage + 1
            if self._port_in_use[port]:
                record.wait_since = sim._now
                waiters = self._port_waiters[port]
                if waiters is None:
                    waiters = self._port_waiters[port] = []
                waiters.append(record)
            else:
                self._port_in_use[port] = 1
                self._port_grants[port] += 1
                sim._seq += 1
                heappush(sim._queue, (sim._now, 1, sim._seq, record))
        elif stage == _ACQ2:
            # Both ports held: serialize (header + occupancy), then release.
            record.stage = _RELEASE
            sim._seq += 1
            heappush(sim._queue, (sim._now + record.hold, 1, sim._seq, record))
        elif stage == _RELEASE:
            # Release in reference order (injection, then ejection); each
            # release hands the port straight to the oldest waiter.
            for port in (record.port2, record.port1):
                waiters = self._port_waiters[port]
                if waiters:
                    waiter = waiters.pop(0)
                    self._port_grants[port] += 1
                    self._port_wait_time[port] += sim._now - waiter.wait_since
                    sim._seq += 1
                    heappush(sim._queue, (sim._now, 1, sim._seq, waiter))
                else:
                    self._port_in_use[port] = 0
            self._complete(record, sim)
        elif stage == _DELIVER:
            pending, recv = record.pending, record.recv
            record.pending = record.recv = None
            if len(self._record_pool) < _RECORD_POOL_MAX:
                self._record_pool.append(record)
            self._deliver(pending, recv)
        elif stage == _DELAY:
            record.stage = _DELAY_DONE
            sim._seq += 1
            heappush(sim._queue, (sim._now + record.hold, 1, sim._seq, record))
        else:  # _DELAY_DONE
            self._complete(record, sim)

    def _complete(self, record: _Transfer, sim) -> None:
        """Transfer finished: complete the done Event, or re-push for the
        inline delivery stage (one seq, standing in for ``done.succeed()``)."""
        done = record.done
        if done is None:
            record.stage = _DELIVER
            sim._seq += 1
            heappush(sim._queue, (sim._now, 1, sim._seq, record))
            return
        record.done = None
        if len(self._record_pool) < _RECORD_POOL_MAX:
            self._record_pool.append(record)
        done.succeed()

    # -- diagnostics -----------------------------------------------------------
    def endpoint_wait_time(self, node: int) -> float:
        total = super().endpoint_wait_time(node)
        if self._lowered_on:
            total += self._port_wait_time[2 * node] + self._port_wait_time[2 * node + 1]
        return total

    def port_grants(self, node: int) -> int:
        """Grants made at a node's two ports (lowered path only)."""
        if not self._lowered_on:
            return 0
        return self._port_grants[2 * node] + self._port_grants[2 * node + 1]
