"""The compiled backend: the lowered plan run by the C core ``_despeed``.

Same schedule as the lowered backend — sequence-for-sequence — but the
event loop, the heap sifts, the slot-record state machine, and the port
tables all run natively.  Python is re-entered only for generic-event
callbacks and matched delivery, with ``sim._seq`` / ``sim._now`` synced
around each re-entry exactly as the lowered loop does, so timestamps and
event order stay bit-identical with both Python backends.

This module imports only when :func:`repro.des.backends.compiled_available`
is true; everything else gates on that check, so a build without a C
compiler simply never lands here.
"""

from __future__ import annotations

import heapq

from repro.des import _despeed
from repro.des.backends.lowered import (
    _DELAY,
    _START,
    LoweredNetwork,
    LoweredSimulator,
    _Transfer,
)
from repro.des.backends.plan import EnginePlan
from repro.des.event import Event, PROCESSED
from repro.errors import MachineError
from repro.machine.network import ContentionMode


class CompiledSimulator(LoweredSimulator):
    """Reference semantics, native event loop."""

    backend = "compiled"

    def _run_fast(self, stop_event, stop_time) -> bool:
        # The C drain handles generic events, native records, and (for
        # mixed-network setups) Python slot records; stops included.
        return _despeed.drain(self, stop_event, stop_time)

    def step(self) -> None:
        queue = self._queue
        if queue and type(queue[0][3]) is _despeed.CTransfer:
            time, _priority, _seq, record = heapq.heappop(queue)
            self._now = time
            _despeed.step_record(self, record)
            self.events_processed += 1
            return
        super().step()

    def _run_traced(self, stop_event, stop_time) -> bool:
        # Mirror of LoweredSimulator._run_traced with the native-record
        # branch added (tracer attached mid-run degrades gracefully).
        ctransfer = _despeed.CTransfer
        while self._queue:
            if stop_event is not None and stop_event.processed:
                return True
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return False
            time, _priority, _seq, event = heapq.heappop(self._queue)
            self._now = time
            self.tracer.record(time, event)
            if type(event) is ctransfer:
                _despeed.step_record(self, event)
                self.events_processed += 1
                continue
            if event.__class__ is _Transfer:
                event.step(event)
                self.events_processed += 1
                continue
            callbacks, event.callbacks = event.callbacks, []
            event._state = PROCESSED
            for callback in callbacks:
                callback(event)
            self.events_processed += 1
            if event._ok is False and not event.defused:
                raise event._value
        return True


class CompiledNetwork(LoweredNetwork):
    """Plan-driven network scheduler backed by a native :class:`NetState`.

    Hold times are still memoized in Python (one dict hit per message in
    steady state); everything after the push — port acquisition, waiter
    FIFOs, release/grant accounting, delivery staging — runs in C.
    """

    def __init__(self, sim, mesh, cost_model=None, contention=ContentionMode.ENDPOINT,
                 plan: EnginePlan | None = None):
        super().__init__(sim, mesh, cost_model, contention=contention, plan=plan)
        if self._lowered_on:
            self._cstate = _despeed.NetState(plan.num_ports)

    def bind_deliver(self, deliver) -> None:
        self._deliver = deliver
        if self._lowered_on:
            self._cstate.bind_deliver(deliver)

    # -- native transfer path --------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int) -> Event:
        if not self._lowered_on or self.obs is not None:
            return super(LoweredNetwork, self).transfer(src, dst, nbytes)
        if nbytes < 0:
            raise MachineError(f"negative message size: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        sim = self.sim
        done = Event(sim, name="xfer")
        if src != dst and self._endpoint:
            self._cstate.push_transfer(
                sim, _START, 2 * dst, 2 * src + 1,
                self._edge_hold(src, dst, nbytes), None, None, done,
            )
        elif src == dst:
            self._cstate.push_transfer(
                sim, _DELAY, 0, 0, self.plan.per_byte_s * nbytes,
                None, None, done,
            )
        else:
            self._cstate.push_transfer(
                sim, _DELAY, 0, 0, self._edge_delay_none(src, dst, nbytes),
                None, None, done,
            )
        return done

    def transfer_matched(self, src: int, dst: int, pending, recv_req) -> None:
        nbytes = pending.message.nbytes
        if nbytes < 0:
            raise MachineError(f"negative message size: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        sim = self.sim
        if src != dst and self._endpoint:
            by_size = self._edge_memo.get(src * self._n + dst)
            hold = by_size.get(nbytes) if by_size is not None else None
            if hold is None:
                hold = self._edge_hold(src, dst, nbytes)
            self._cstate.push_transfer(
                sim, _START, 2 * dst, 2 * src + 1, hold, pending, recv_req, None,
            )
        elif src == dst:
            self._cstate.push_transfer(
                sim, _DELAY, 0, 0, self.plan.per_byte_s * nbytes,
                pending, recv_req, None,
            )
        else:
            self._cstate.push_transfer(
                sim, _DELAY, 0, 0, self._edge_delay_none(src, dst, nbytes),
                pending, recv_req, None,
            )

    # -- diagnostics -----------------------------------------------------------
    def endpoint_wait_time(self, node: int) -> float:
        total = super(LoweredNetwork, self).endpoint_wait_time(node)
        if self._lowered_on:
            cstate = self._cstate
            total += cstate.wait_time(2 * node) + cstate.wait_time(2 * node + 1)
        return total

    def port_grants(self, node: int) -> int:
        if not self._lowered_on:
            return 0
        cstate = self._cstate
        return cstate.grants(2 * node) + cstate.grants(2 * node + 1)
