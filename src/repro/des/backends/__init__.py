"""Runtime-selectable simulator cores.

Three backends run the same simulation with the same bit-exact results:

``python``
    The reference engine (:class:`~repro.des.engine.Simulator` plus
    :class:`~repro.machine.network.Network`) — always available, the
    semantics oracle every other backend is pinned against.
``lowered``
    Pure-Python, plan-lowered hot path: transfers become pooled slot
    records driven by :class:`EnginePlan` tables, the matcher packs its
    keys into integers.  Always available.
``compiled``
    The same plan run natively by the optional C extension
    ``repro.des._despeed`` (built via ``setup.py build_ext``; gracefully
    absent when no compiler was around at install time).

``auto`` resolves to the fastest available backend (compiled, else
lowered).  Selection flows down from :class:`~repro.core.pipeline.STAPPipeline`
and :class:`~repro.exec.SimPoint`; result-cache keys include the resolved
backend identity and :data:`ENGINE_SCHEMA` so results from different cores
are never conflated.
"""

from __future__ import annotations

import time as _time

from repro.des.engine import Simulator
from repro.des.backends.lowered import LoweredNetwork, LoweredSimulator
from repro.des.backends.plan import EnginePlan, TAG_BITS, TAG_LIMIT
from repro.errors import ConfigurationError

#: Engine implementation schema: bump when any backend's scheduling
#: semantics change, to invalidate cached results keyed on it.
ENGINE_SCHEMA = 1

#: Names accepted by ``resolve_backend`` (besides ``auto`` and None).
BACKEND_NAMES = ("python", "lowered", "compiled")

_COMPILED_CORE = None
_COMPILED_CHECKED = False


def _compiled_core():
    """The C extension module, or None when it is not built/importable."""
    global _COMPILED_CORE, _COMPILED_CHECKED
    if not _COMPILED_CHECKED:
        _COMPILED_CHECKED = True
        try:
            from repro.des import _despeed  # noqa: F401 - optional extension

            _COMPILED_CORE = _despeed
        except ImportError:
            _COMPILED_CORE = None
    return _COMPILED_CORE


def compiled_available() -> bool:
    """True when the optional C extension imported successfully."""
    return _compiled_core() is not None


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, reference first."""
    names = ["python", "lowered"]
    if compiled_available():
        names.append("compiled")
    return tuple(names)


def resolve_backend(name: str | None) -> str:
    """Map a requested backend name onto a concrete, available one.

    ``None`` keeps the reference engine (full backward compatibility);
    ``auto`` picks the fastest available core, silently falling back from
    compiled to lowered when the extension is absent.  Asking for
    ``compiled`` explicitly when it is unavailable is an error — an
    explicit request must not silently run 3x slower.
    """
    if name is None:
        return "python"
    if name == "auto":
        return "compiled" if compiled_available() else "lowered"
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown simulator backend {name!r}; "
            f"expected one of {BACKEND_NAMES + ('auto',)}"
        )
    if name == "compiled" and not compiled_available():
        raise ConfigurationError(
            "the compiled simulator backend is not available "
            "(repro.des._despeed failed to import; build it with "
            "'python setup.py build_ext --inplace' or use backend='auto' "
            "to fall back automatically)"
        )
    return name


class EngineBackend:
    """The reference (pure Python) backend; base class for the others."""

    name = "python"

    def create_simulator(self, trace: bool = False) -> Simulator:
        return Simulator(trace=trace)

    def build_plan(self, mesh, cost, contention) -> EnginePlan | None:
        """Per-run lowered tables; the reference backend needs none."""
        return None

    def create_network(self, sim, mesh, cost, contention, plan):
        from repro.machine.network import Network

        return Network(sim, mesh, cost, contention=contention)


class LoweredBackend(EngineBackend):
    name = "lowered"

    def create_simulator(self, trace: bool = False) -> Simulator:
        return LoweredSimulator(trace=trace)

    def build_plan(self, mesh, cost, contention) -> EnginePlan:
        return EnginePlan.build(mesh, cost, contention, backend=self.name)

    def create_network(self, sim, mesh, cost, contention, plan):
        return LoweredNetwork(sim, mesh, cost, contention=contention, plan=plan)


class CompiledBackend(LoweredBackend):
    """Native core: same plan, same schedule, C event loop and records."""

    name = "compiled"

    def create_simulator(self, trace: bool = False) -> Simulator:
        from repro.des.backends.compiled import CompiledSimulator

        return CompiledSimulator(trace=trace)

    def create_network(self, sim, mesh, cost, contention, plan):
        from repro.des.backends.compiled import CompiledNetwork

        return CompiledNetwork(sim, mesh, cost, contention=contention, plan=plan)


_BACKENDS = {
    "python": EngineBackend,
    "lowered": LoweredBackend,
    "compiled": CompiledBackend,
}


def get_backend(name: str | None) -> EngineBackend:
    """Resolve ``name`` and instantiate its backend."""
    return _BACKENDS[resolve_backend(name)]()


def timed_plan(backend: EngineBackend, mesh, cost, contention):
    """Build the backend's plan, stamping wall-clock build time onto it."""
    t0 = _time.perf_counter()
    plan = backend.build_plan(mesh, cost, contention)
    if plan is not None:
        plan.build_seconds = _time.perf_counter() - t0
    return plan


__all__ = [
    "ENGINE_SCHEMA",
    "BACKEND_NAMES",
    "EnginePlan",
    "EngineBackend",
    "LoweredBackend",
    "CompiledBackend",
    "LoweredSimulator",
    "LoweredNetwork",
    "TAG_BITS",
    "TAG_LIMIT",
    "available_backends",
    "compiled_available",
    "resolve_backend",
    "get_backend",
    "timed_plan",
]
