"""EnginePlan: per-run lowered tables for the simulator hot path.

The lowered and compiled backends follow the PyOP2 pattern: everything the
hot loop would otherwise recompute per event — mesh hop distances, wormhole
header latencies, port identities, match-key encodings — is computed *once*
per run into preallocated numpy tables, and the event loop then runs off
plain array indexing (Python backend) or raw buffer reads (C backend).

The plan mirrors :class:`repro.stap.plan.KernelPlan` one layer down: where
the kernel plan captures CPI-invariant numeric factors, the engine plan
captures run-invariant *simulation* factors.

Bit-identity contract
---------------------
Every float in these tables is produced by exactly the IEEE-754 operations
the reference code performs (``startup + per_hop * hops`` elementwise, no
reassociation), so a lowered transfer computes the same timestamps to the
last ulp.  The golden and hypothesis backend tests pin this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.machine.cost_model import NetworkCostModel
from repro.machine.mesh import Mesh2D
from repro.machine.network import ContentionMode

#: Match keys pack ``tag`` into the low bits of one integer; tags must stay
#: below this bound for the packed matcher (the pipeline's tags are small
#: CPI/edge indices, far below it).  Larger tags are rejected with a clear
#: error pointing at the ``python`` backend.
TAG_BITS = 22
TAG_LIMIT = 1 << TAG_BITS


@dataclass
class EnginePlan:
    """Run-invariant tables driving the lowered simulator core.

    Built once per :class:`~repro.mpi.communicator.World` by the selected
    backend; shared read-only by the network scheduler and the matcher.
    """

    backend: str
    contention: ContentionMode
    num_nodes: int
    #: Ports are numbered ``eject(node) = 2*node``, ``inject(node) = 2*node+1``
    #: (two per node, ENDPOINT contention).
    num_ports: int
    #: (N, N) int32 Manhattan hop counts between node pairs.
    hops: np.ndarray
    #: (N, N) float64 wormhole header latency ``startup + per_hop * hops``.
    header_s: np.ndarray
    #: Cost-model scalars (Python floats, for exact scalar arithmetic).
    startup_s: float
    per_byte_s: float
    per_hop_s: float
    #: Wall-clock seconds spent building the tables (reported by perf).
    build_seconds: float = 0.0
    #: Whether the matcher should pack (context, dst, src, tag) into ints.
    pack_match_keys: bool = True
    #: Memo of per-size port occupancy times (nbytes -> seconds), shared by
    #: the network so repeated message sizes cost one dict probe.
    occupancy_memo: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        mesh: Mesh2D,
        cost: NetworkCostModel,
        contention: ContentionMode | str = ContentionMode.ENDPOINT,
        backend: str = "lowered",
    ) -> "EnginePlan":
        """Flatten mesh topology and cost model into dense tables.

        The tables are O(N^2) in mesh nodes (a 32x32 hypothetical machine
        costs ~12 MiB); they are built vectorized in a few milliseconds.
        """
        t0 = time.perf_counter()
        contention = ContentionMode(contention)
        n = mesh.num_nodes
        ids = np.arange(n)
        x = ids % mesh.width
        y = ids // mesh.width
        # Manhattan distance, exactly Mesh2D.hop_distance elementwise.
        hops = (np.abs(x[:, None] - x[None, :]) + np.abs(y[:, None] - y[None, :])).astype(
            np.int32
        )
        # Exactly Network._begin_transfer's ``startup_s + per_hop_s * hops``:
        # one float64 multiply and one add per element, no reassociation.
        header = cost.startup_s + cost.per_hop_s * hops.astype(np.float64)
        return cls(
            backend=backend,
            contention=contention,
            num_nodes=n,
            num_ports=2 * n,
            hops=np.ascontiguousarray(hops),
            header_s=np.ascontiguousarray(header),
            startup_s=cost.startup_s,
            per_byte_s=cost.per_byte_s,
            per_hop_s=cost.per_hop_s,
            build_seconds=time.perf_counter() - t0,
        )

    # -- port numbering (shared by Python and C state machines) ----------------
    @staticmethod
    def eject_port(node: int) -> int:
        return 2 * node

    @staticmethod
    def inject_port(node: int) -> int:
        return 2 * node + 1
