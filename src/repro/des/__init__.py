"""A small discrete-event simulation (DES) engine.

This is the substrate on which the simulated parallel machine and the
simulated MPI layer are built.  The design follows the classic
process-interaction style (as popularized by SimPy, but implemented from
scratch here): user code is written as Python generators that ``yield``
events; the :class:`~repro.des.engine.Simulator` advances virtual time from
event to event and resumes the waiting generators.

Public surface:

* :class:`Simulator` — the event loop and virtual clock.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` — waitables.
* :class:`Process` — a running generator; itself an event that fires when
  the generator returns.
* :class:`Resource` — counted semaphore with FIFO queueing (used for NIC
  injection/ejection ports and mesh links).
* :class:`Store` — FIFO buffer of Python objects with blocking get/put
  (used for MPI unexpected-message queues).
* :class:`Tracer` — optional structured event log.
"""

from repro.des.event import Event, Timeout, AllOf, AnyOf, PENDING, TRIGGERED, PROCESSED
from repro.des.process import Process
from repro.des.engine import Simulator
from repro.des.resource import Resource, Store
from repro.des.monitor import Tracer, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Store",
    "Tracer",
    "TraceRecord",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]
