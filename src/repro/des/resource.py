"""Queued resources and stores.

:class:`Resource`
    A counted semaphore with FIFO service order.  The machine model uses one
    per NIC injection port, ejection port and (optionally) mesh link, which
    is how communication *contention* — the effect the paper highlights in
    Section 7.2 — enters the simulation.

:class:`Store`
    An unbounded FIFO of Python objects with blocking ``get``.  The MPI layer
    uses stores for unexpected-message queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.des.event import Event
from repro.errors import SimulationError


class Request(Event):
    """Event that fires when the resource grants this request."""

    __slots__ = ("resource", "requested_at")

    def __init__(self, sim, resource: "Resource"):
        # The label is precomputed by the resource: requests are made on
        # the simulation hot path (hundreds of thousands per run).
        super().__init__(sim, name=resource._request_name)
        self.resource = resource
        self.requested_at = 0.0


class Resource:
    """A counted, FIFO-ordered resource (capacity >= 1).

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(holding_time)
        finally:
            resource.release()
    """

    def __init__(self, sim, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._request_name = f"request:{name}"
        self._in_use = 0
        self._waiters: deque[Request] = deque()
        #: Total number of grants ever made (for utilization accounting).
        self.total_grants = 0
        #: Cumulative (grant_time - request_time) over all grants.
        self.total_wait_time = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        req.requested_at = self.sim.now
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiters.append(req)
        return req

    def release(self) -> None:
        """Return one slot; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def cancel(self, req: Request) -> bool:
        """Withdraw a not-yet-granted request.  Returns True if removed."""
        try:
            self._waiters.remove(req)
        except ValueError:
            return False
        return True

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        self.total_grants += 1
        self.total_wait_time += self.sim.now - req.requested_at
        req.succeed(self)


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (the machine model bounds memory elsewhere);
    ``get`` returns an event that fires with the next item, optionally the
    first item matching a ``filter`` predicate (used for MPI tag matching).
    """

    def __init__(self, sim, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; immediately satisfies a matching waiter if any."""
        for idx, (event, predicate) in enumerate(self._getters):
            if predicate is None or predicate(item):
                del self._getters[idx]
                event.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event firing with the next (matching) item."""
        for idx, item in enumerate(self._items):
            if predicate is None or predicate(item):
                del self._items[idx]
                event = Event(self.sim, name=f"get:{self.name}")
                event.succeed(item)
                return event
        event = Event(self.sim, name=f"get:{self.name}")
        self._getters.append((event, predicate))
        return event

    def peek_all(self) -> list:
        """Snapshot of queued items (diagnostics only)."""
        return list(self._items)
