"""Processes: generators driven by the event loop.

A process wraps a Python generator.  Each ``yield``ed object must be an
:class:`~repro.des.event.Event`; the process suspends until the event is
processed and then resumes with the event's value (``ev.value`` is sent into
the generator; failures are thrown in as exceptions, so ordinary
``try/except`` works inside simulation code).

A :class:`Process` is itself an event: it fires with the generator's return
value when the generator finishes, which makes "join" simply ``yield proc``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.des.event import Event, PENDING
from repro.errors import InterruptError, SimulationError


class Process(Event):
    """A running generator inside a :class:`~repro.des.engine.Simulator`."""

    __slots__ = ("generator", "_target", "_interrupting")

    def __init__(self, sim, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget a 'yield' in the process function?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: The event this process is currently waiting on (None if runnable).
        self._target: Optional[Event] = None
        self._interrupting = False
        # Kick-start the process via an immediately-triggered event so that
        # the generator body runs inside the event loop, not at spawn time.
        start = Event(sim, name=f"start:{self.name}")
        start.callbacks.append(self._resume)
        start._ok = True
        start._value = None
        start._state = "triggered"
        sim._schedule(start, delay=0.0, priority=1)

    # -- public -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event the process is currently blocked on (for diagnostics)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.InterruptError` into the process.

        The process stops waiting on its current target (the target event is
        left to fire on its own; its value is discarded for this process).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._interrupting:
            return
        self._interrupting = True
        interrupt_ev = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_ev._ok = False
        interrupt_ev._value = InterruptError(cause)
        interrupt_ev._state = "triggered"
        interrupt_ev.defused = True
        interrupt_ev.callbacks.append(self._resume_interrupt)
        self.sim._schedule(interrupt_ev, delay=0.0, priority=0)

    # -- engine hooks ---------------------------------------------------------
    def _resume_interrupt(self, ev: Event) -> None:
        self._interrupting = False
        if not self.is_alive:
            return
        # Detach from the current target so its later firing does not resume
        # us a second time.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self._step(ev)

    def _resume(self, ev: Event) -> None:
        self._target = None
        self._step(ev)

    def _step(self, ev: Event) -> None:
        self.sim._active_process = self
        try:
            if ev._ok:
                target = self.generator.send(ev._value)
            else:
                ev.defused = True
                target = self.generator.throw(ev._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc)
            return
        self.sim._active_process = None

        if not isinstance(target, Event):
            message = (
                f"process {self.name!r} yielded {target!r}; processes may only "
                "yield Event instances (Timeout, Request, Process, ...)"
            )
            try:
                self.generator.throw(SimulationError(message))
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return
        if target.sim is not self.sim:
            raise SimulationError("yielded an event from a different simulator")
        self._target = target
        if target.processed:
            # Already-completed event: resume on the next scheduling round so
            # that a tight loop of completed events cannot starve the queue.
            bounce = Event(self.sim, name=f"bounce:{self.name}")
            bounce._ok = target._ok
            bounce._value = target._value
            bounce._state = "triggered"
            if not target._ok:
                target.defused = True
                bounce.defused = True
            bounce.callbacks.append(self._resume)
            self.sim._schedule(bounce, delay=0.0, priority=1)
            self._target = None
        else:
            target.callbacks.append(self._resume)
