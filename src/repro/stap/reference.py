"""Sequential reference implementation of the full STAP chain.

This is the "golden" single-process version against which the parallel
pipeline is verified.  It reproduces the pipeline's *temporal* semantics
exactly (Section 5): the weights applied to CPI *i* are computed from the
Doppler-filtered data of CPI *i-1* and earlier looks in the same azimuth —
"the filtered CPI data sent to the beamforming tasks do not wait for the
completion of its weight computation but rather for the completion of the
weight computation of the previous CPI."

Per-CPI flow::

    raw cube --Doppler filter--> staggered cube
        --beamform with *pending* weights--> beams
        --pulse compression--> power
        --CFAR--> detection report
    then: train easy/hard weight computers on THIS CPI's staggered data,
    producing the pending weights for the next visit to this azimuth.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.radar.datacube import CPIDataCube
from repro.radar.geometry import beam_angles, steering_matrix
from repro.radar.parameters import STAPParams
from repro.stap.beamform import assemble_beamformed, beamform_easy, beamform_hard
from repro.stap.cfar import cfar_detect
from repro.stap.detection import DetectionReport
from repro.stap.doppler import doppler_filter
from repro.stap.easy_weights import EasyWeightComputer, extract_easy_training
from repro.stap.hard_weights import HardWeightComputer, extract_hard_training
from repro.stap.pulse_compression import pulse_compress


def default_steering(params: STAPParams) -> np.ndarray:
    """(J, M) steering matrix: beams spread across the transmit region."""
    return steering_matrix(params.num_channels, beam_angles(params.num_beams))


class SequentialSTAP:
    """Process a CPI stream sequentially, maintaining weight state."""

    def __init__(
        self,
        params: STAPParams,
        steering: Optional[np.ndarray] = None,
        plan=None,
    ):
        """``plan``: optional prebuilt :class:`~repro.stap.plan.KernelPlan`
        (for sharing with a pipeline under verification); built here when
        absent.  Its steering matrix wins over the ``steering`` argument."""
        from repro.stap.plan import KernelPlan

        self.params = params
        if plan is None:
            steering = (
                default_steering(params) if steering is None else np.asarray(steering)
            )
            plan = KernelPlan.build(params, steering)
        self.plan = plan
        self.steering = plan.steering
        self.easy = EasyWeightComputer(params, self.steering)
        self.hard = HardWeightComputer(params, self.steering)
        # Pending weights per azimuth (computed after the previous visit).
        self._easy_weights: Dict[int, np.ndarray] = {}
        self._hard_weights: Dict[int, np.ndarray] = {}
        self._replica = plan.replica_freq

    # -- per-CPI processing -----------------------------------------------------
    def process(self, cube: CPIDataCube) -> DetectionReport:
        """Process one CPI; updates weight state for the next visit."""
        params = self.params
        azimuth = cube.azimuth
        staggered = doppler_filter(cube, window=self.plan.doppler_window)

        easy_w = self._easy_weights.get(azimuth)
        if easy_w is None:
            easy_w = self.easy.compute_weights(azimuth)  # quiescent
        hard_w = self._hard_weights.get(azimuth)
        if hard_w is None:
            hard_w = self.hard.compute_weights(azimuth)  # quiescent

        easy_in = staggered[params.easy_bins][:, : params.num_channels, :]
        hard_in = staggered[params.hard_bins]
        easy_y = beamform_easy(easy_in, easy_w, params)
        hard_y = beamform_hard(hard_in, hard_w, params)
        beams = assemble_beamformed(easy_y, hard_y, params)

        power = pulse_compress(beams, params, self._replica)
        detections = cfar_detect(power, params, factor=self.plan.cfar_factor)

        # Train on this CPI for the *next* visit to this azimuth.
        self.easy.push_training(extract_easy_training(staggered, params), azimuth)
        self.hard.update(extract_hard_training(staggered, params), azimuth)
        self._easy_weights[azimuth] = self.easy.compute_weights(azimuth)
        self._hard_weights[azimuth] = self.hard.compute_weights(azimuth)

        return DetectionReport(cpi_index=cube.cpi_index, detections=tuple(detections))

    def process_stream(self, cubes: Iterable[CPIDataCube]) -> list[DetectionReport]:
        """Process CPIs in order; returns one report per CPI."""
        return [self.process(cube) for cube in cubes]

    # -- introspection (used by the pipeline's weight tasks and by tests) -------
    def pending_easy_weights(self, azimuth: int = 0) -> Optional[np.ndarray]:
        return self._easy_weights.get(azimuth)

    def pending_hard_weights(self, azimuth: int = 0) -> Optional[np.ndarray]:
        return self._hard_weights.get(azimuth)
