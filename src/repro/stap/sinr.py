"""SINR and clutter-cancellation metrics.

Quantifies what the adaptive weights buy — the signal-to-interference-
plus-noise ratio improvement over quiescent beamforming — the figure of
merit behind the paper's algorithm-level claims (Appendix A: "preservation
of main beam shape requires only a slight reduction of clutter rejection
performance, and is often offset by an increase in array gain on the
desired target").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def output_power(weights: np.ndarray, snapshots: np.ndarray) -> float:
    """Mean beamformer output power ``E|w^H x|^2`` over snapshots.

    ``weights``: (C,) or (C, M); ``snapshots``: (n, C) rows of data.
    """
    weights = np.atleast_2d(np.asarray(weights, dtype=complex).T).T  # (C, M)
    snapshots = np.asarray(snapshots)
    if snapshots.ndim != 2 or snapshots.shape[1] != weights.shape[0]:
        raise ConfigurationError(
            f"snapshots {snapshots.shape} incompatible with weights "
            f"{weights.shape}"
        )
    y = snapshots @ np.conj(weights)  # (n, M)
    return float(np.mean(np.abs(y) ** 2))


def signal_gain(weights: np.ndarray, target_signature: np.ndarray) -> float:
    """Power response ``|w^H s|^2`` to a target space(-time) signature."""
    weights = np.asarray(weights, dtype=complex)
    target_signature = np.asarray(target_signature, dtype=complex)
    if weights.shape[0] != target_signature.shape[0]:
        raise ConfigurationError("weight / signature length mismatch")
    return float(np.abs(np.vdot(weights, target_signature)) ** 2)


def sinr(
    weights: np.ndarray,
    target_signature: np.ndarray,
    interference_snapshots: np.ndarray,
    noise_power: float = 1.0,
) -> float:
    """Output SINR of a beamformer against measured interference.

    ``interference_snapshots``: (n, C) clutter+jammer data (no target);
    noise is added analytically as ``noise_power * ||w||^2``.
    """
    if noise_power <= 0:
        raise ConfigurationError(f"noise_power must be positive, got {noise_power}")
    signal = signal_gain(weights, target_signature)
    w = np.asarray(weights, dtype=complex)
    interference = output_power(w, interference_snapshots)
    noise = noise_power * float(np.vdot(w, w).real)
    return signal / (interference + noise)


def sinr_improvement_db(
    adaptive_weights: np.ndarray,
    quiescent_weights: np.ndarray,
    target_signature: np.ndarray,
    interference_snapshots: np.ndarray,
    noise_power: float = 1.0,
) -> float:
    """SINR gain of the adaptive weights over the quiescent ones, in dB."""
    adapted = sinr(
        adaptive_weights, target_signature, interference_snapshots, noise_power
    )
    quiescent = sinr(
        quiescent_weights, target_signature, interference_snapshots, noise_power
    )
    return 10.0 * np.log10(adapted / quiescent)


def cancellation_ratio_db(
    adaptive_weights: np.ndarray,
    quiescent_weights: np.ndarray,
    interference_snapshots: np.ndarray,
) -> float:
    """Clutter-cancellation ratio: interference power cut, in dB.

    Both weight sets are norm-equalized first so the ratio measures null
    placement, not scaling.
    """
    a = np.asarray(adaptive_weights, dtype=complex)
    q = np.asarray(quiescent_weights, dtype=complex)
    a = a / np.linalg.norm(a)
    q = q / np.linalg.norm(q)
    before = output_power(q, interference_snapshots)
    after = output_power(a, interference_snapshots)
    if after <= 0:
        return float("inf")
    return 10.0 * np.log10(before / after)
