"""Detection reports: the pipeline's output product.

"The output of the pipeline is a report on the detection of possible
targets" (Section 5) — "a list of targets at specified ranges, Doppler
frequencies, and look directions" (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stap.cfar import Detection


@dataclass
class DetectionReport:
    """All CFAR detections for one CPI."""

    cpi_index: int
    detections: tuple[Detection, ...] = ()
    #: Virtual time at which the report became available (filled in by the
    #: pipeline; NaN for the sequential reference).
    completed_at: float = float("nan")

    def __len__(self) -> int:
        return len(self.detections)

    def index_set(self) -> set[tuple[int, int, int]]:
        """(doppler_bin, beam, range_cell) triples, for set comparison."""
        return {(d.doppler_bin, d.beam, d.range_cell) for d in self.detections}

    def same_detections(self, other: "DetectionReport", rtol: float = 1e-5) -> bool:
        """True if both reports contain the same cells with matching powers.

        Used to assert that the parallel pipeline and the sequential
        reference produce identical products (up to floating-point
        reassociation across partition boundaries).
        """
        if self.index_set() != other.index_set():
            return False
        mine = {(d.doppler_bin, d.beam, d.range_cell): d for d in self.detections}
        for d in other.detections:
            ref = mine[(d.doppler_bin, d.beam, d.range_cell)]
            if not np.isclose(ref.power, d.power, rtol=rtol):
                return False
        return True

    def ranges_detected(self) -> set[int]:
        """Distinct range cells with at least one crossing."""
        return {d.range_cell for d in self.detections}

    def strongest(self, count: int = 5) -> list[Detection]:
        """The ``count`` largest-margin detections."""
        return sorted(self.detections, key=lambda d: -d.margin_db)[:count]
