"""Doppler filter processing with PRI stagger (pipeline task 0).

Implements Appendix B's ``rawToFFT``: two windowed Doppler FFTs are taken
per (range cell, channel) — one over pulses ``[0, N-s)`` and one over pulses
``[s, N)``, where ``s`` is the PRI stagger (3 at paper scale).  The two
spectra are stacked along the channel axis, producing the *staggered CPI*
cube of K x 2J x N the rest of the chain consumes.  A target at Doppler bin
``n`` appears in both halves with a known inter-half phase shift
``exp(-2*pi*i*n*s/N)``, which is the temporal degree of freedom the hard-bin
adaptive weights exploit.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import kernel_counters
from repro.radar.datacube import CPIDataCube
from repro.radar.parameters import STAPParams
from repro.radar.windows import window_by_name


def stagger_phase(params: STAPParams, doppler_bins) -> np.ndarray:
    """Phase rotation of the late Doppler window relative to the early one.

    A tone at bin ``n`` appears in the late (stagger-delayed) window rotated
    by ``exp(+2*pi*i * n * stagger / N)``: the late window sees the same
    samples ``stagger`` pulses later.  Its conjugate is the factor in
    Appendix B's frequency-constraint rows.
    """
    bins = np.asarray(doppler_bins)
    return np.exp(2j * np.pi * bins * params.stagger / params.num_doppler)


def doppler_filter(
    cube: CPIDataCube | np.ndarray,
    params: STAPParams | None = None,
    window: np.ndarray | None = None,
) -> np.ndarray:
    """Doppler-filter one CPI into the staggered cube.

    Parameters
    ----------
    cube:
        Raw CPI cube (K x J x N), or a :class:`CPIDataCube`.
    params:
        Required when ``cube`` is a bare array.
    window:
        Optional precomputed filter-bank window (see
        :func:`doppler_filter_block`).

    Returns
    -------
    numpy.ndarray
        Staggered Doppler data of shape (N, 2J, K): Doppler bin x staggered
        channel x range cell.  Channels ``[:J]`` hold the first (early)
        window, ``[J:]`` the second (late, staggered) window.  The
        bin-major layout makes the downstream per-Doppler-bin tasks
        unit-stride in range — the reorganization the paper performs during
        inter-task redistribution (Figure 8).
    """
    if isinstance(cube, CPIDataCube):
        params = cube.params
        data = cube.data
    else:
        if params is None:
            raise ConfigurationError("params required when passing a bare array")
        data = np.asarray(cube)
    K, J, N = params.num_ranges, params.num_channels, params.num_pulses
    if data.shape != (K, J, N):
        raise ConfigurationError(f"cube shape {data.shape} != ({K},{J},{N})")
    return doppler_filter_block(data, params, window=window)


def range_correction_factors(params: STAPParams, k_start: int, count: int) -> np.ndarray:
    """R^2 sensitivity-time-control gains for range cells [k_start, +count).

    Echo power falls as R^4; correcting amplitude by (R / R_max)^2 levels
    the noise-relative sensitivity across range.  Normalized so the far
    cell has unit gain.
    """
    if not (0 <= k_start and k_start + count <= params.num_ranges):
        raise ConfigurationError(
            f"range cells [{k_start}, {k_start + count}) outside "
            f"[0, {params.num_ranges})"
        )
    cells = np.arange(k_start, k_start + count, dtype=float)
    return ((cells + 1.0) / params.num_ranges) ** 2


def doppler_filter_block(
    data: np.ndarray,
    params: STAPParams,
    k_start: int = 0,
    window: np.ndarray | None = None,
) -> np.ndarray:
    """Doppler-filter a K-slice of a CPI cube: (k, J, N) -> (N, 2J, k).

    This is the per-processor kernel of the parallel Doppler task, which
    owns ``K / P_0`` range cells (Figure 5); :func:`doppler_filter` is the
    full-cube wrapper.  ``k_start`` is the slice's absolute first range
    cell — needed when range correction is enabled, since the correction
    gain depends on absolute range.

    ``window``: optional precomputed filter-bank window (a
    :class:`~repro.stap.plan.KernelPlan` holds it); default recomputes it
    from the params — identical values either way.
    """
    J, N = params.num_channels, params.num_pulses
    data = np.asarray(data)
    if data.ndim != 3 or data.shape[1] != J or data.shape[2] != N:
        raise ConfigurationError(
            f"block shape {data.shape} must be (k, {J}, {N})"
        )
    if params.range_correction:
        gains = range_correction_factors(params, k_start, data.shape[0])
        data = data * gains[:, None, None]
    s = params.stagger
    win_len = N - s
    if window is None:
        window = window_by_name(params.window, win_len).astype(params.real_dtype)
    elif window.shape != (win_len,):
        raise ConfigurationError(
            f"window length {window.shape} != ({win_len},)"
        )

    start = perf_counter() if kernel_counters.enabled else None
    out = np.empty((N, 2 * J, data.shape[0]), dtype=np.complex128)
    # Early window: pulses [0, N-s), zero-padded to N before the FFT.
    early = data[:, :, :win_len] * window
    # Late window: pulses [s, N).
    late = data[:, :, s:] * window
    # FFT along the pulse axis (unit stride in the corner-turned cube — the
    # whole point of partitioning this task along K, Section 5.1).
    spec_early = np.fft.fft(early, n=N, axis=2)
    spec_late = np.fft.fft(late, n=N, axis=2)
    # (k, J, N) -> (N, J, k)
    out[:, :J, :] = np.transpose(spec_early, (2, 1, 0))
    out[:, J:, :] = np.transpose(spec_late, (2, 1, 0))
    if start is not None:
        from repro.stap.flops import doppler_flops

        share = data.shape[0] / params.num_ranges
        kernel_counters.record(
            "doppler", perf_counter() - start, doppler_flops(params) * share
        )
    return out


def doppler_bin_frequencies(params: STAPParams) -> np.ndarray:
    """Normalized Doppler frequency (cycles/PRI) at each FFT bin centre."""
    N = params.num_doppler
    freqs = np.fft.fftfreq(N)
    return freqs


def nearest_bin(params: STAPParams, normalized_doppler: float) -> int:
    """FFT bin whose centre frequency is nearest ``normalized_doppler``."""
    N = params.num_doppler
    return int(np.round(normalized_doppler * N)) % N
