"""Easy-bin weight computation (pipeline tasks 1: "easy weight").

Easy Doppler bins are well separated from mainbeam clutter, so a single
Doppler window (the first J staggered channels) and a spatial-only null
suffice — "Post Doppler Adaptive Beamforming ... quite effective at a
fraction of the computational cost" (Section 3).

Training: "the entire training set was drawn from three preceding CPIs for
application to the next CPI in this azimuth beam position" — a sliding
window of the last three visits, ``easy_train_per_cpi`` range samples each,
followed by "a regular (non-recursive) QR decomposition ... followed by
block update to add in the beam shape constraints" (Section 3).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import kernel_counters
from repro.radar.parameters import STAPParams
from repro.stap.lsq import (
    qr_factor,
    qr_factor_stacked,
    quiescent_weights,
    solve_constrained,
    solve_constrained_stacked,
)

#: Number of preceding CPIs whose samples form the easy training set.
HISTORY_LENGTH = 3


def select_range_samples(num_ranges: int, count: int) -> np.ndarray:
    """Indices of ``count`` range cells spaced evenly over ``[0, num_ranges)``.

    Used both here and by the Doppler task's *data collection* step — the
    sender gathers exactly these cells so no redundant data crosses the
    network (Figure 6b).
    """
    if count > num_ranges:
        raise ConfigurationError(
            f"cannot draw {count} training samples from {num_ranges} range cells"
        )
    return np.linspace(0, num_ranges, count, endpoint=False).astype(int)


def extract_easy_training(staggered: np.ndarray, params: STAPParams) -> np.ndarray:
    """Training block for every easy bin from one staggered CPI.

    Parameters
    ----------
    staggered:
        Doppler-filtered cube (N, 2J, K).

    Returns
    -------
    numpy.ndarray
        (N_easy, easy_train_per_cpi, J): per easy bin, the selected range
        samples of the *first* Doppler window ("only range samples in the
        first half of the staggered CPI data are used", Section 5.2).

        Rows are **conjugated** snapshots: with beamforming defined as
        ``y = w^H x``, the residual of the least-squares system ``X w = 0``
        then equals the beamformer's clutter output, so minimizing it
        places the nulls where the output needs them.
    """
    J = params.num_channels
    sel = select_range_samples(params.num_ranges, params.easy_train_per_cpi)
    # (N_easy, J, count) -> (N_easy, count, J)
    block = staggered[params.easy_bins][:, :J, :][:, :, sel]
    return np.conj(np.transpose(block, (0, 2, 1)))


def compute_easy_weights(
    stacked: np.ndarray, steering: np.ndarray, kappa: float
) -> np.ndarray:
    """Easy weights from stacked training: (B, n, J) -> (B, J, M).

    ``stacked`` holds, per Doppler bin, the concatenated (conjugated)
    training rows of up to three CPIs.  This is the shared per-bin kernel:
    the sequential reference calls it over all easy bins, the parallel easy
    weight task over just the bins its processor owns — guaranteeing
    identical numerics.

    All bins dispatch through one stacked QR and one stacked constrained
    solve (:func:`repro.stap.lsq.qr_factor_stacked` /
    :func:`repro.stap.lsq.solve_constrained_stacked`); the results are bit
    identical to the retained per-bin reference
    :func:`compute_easy_weights_loop`.
    """
    stacked = np.asarray(stacked)
    if stacked.ndim != 3:
        raise ConfigurationError(
            f"training stack must be (bins, rows, J), got shape {stacked.shape}"
        )
    num_bins, rows, J = stacked.shape
    if num_bins == 0:
        return np.empty((0, J, steering.shape[1]), dtype=complex)
    start = perf_counter() if kernel_counters.enabled else None
    # Vectorized per-bin data level; the diagonal constraint is the only
    # per-bin part of the constraint block, so it is built by index
    # assignment instead of B dense J x J materializations.
    scales = np.mean(np.abs(stacked), axis=(1, 2))
    scales[scales <= 0.0] = 1.0
    # Regular QR of the training data, then the constraint block is
    # appended (the "block update to add in the beam shape constraints").
    r_data = qr_factor_stacked(stacked)
    constraints = np.zeros((num_bins, J, J), dtype=complex)
    diag = np.arange(J)
    constraints[:, diag, diag] = (kappa * scales)[:, None]
    weights = solve_constrained_stacked(r_data, constraints, steering)
    if start is not None:
        from repro.stap.flops import qr_flops

        M = steering.shape[1]
        per_bin = qr_flops(rows, J) + M * (4.0 * J * J + 6.0 * J)
        kernel_counters.record(
            "easy_weight", perf_counter() - start, num_bins * per_bin
        )
    return weights


def compute_easy_weights_loop(
    stacked: np.ndarray, steering: np.ndarray, kappa: float
) -> np.ndarray:
    """Per-bin loop reference for :func:`compute_easy_weights`.

    Retained as the ground truth the batched kernel is tested against
    (and for profiling the batching win); one QR + constrained solve per
    Doppler bin, exactly the pre-batching implementation.
    """
    stacked = np.asarray(stacked)
    if stacked.ndim != 3:
        raise ConfigurationError(
            f"training stack must be (bins, rows, J), got shape {stacked.shape}"
        )
    num_bins, _rows, J = stacked.shape
    identity = np.eye(J, dtype=complex)
    weights = np.empty((num_bins, J, steering.shape[1]), dtype=complex)
    for idx in range(num_bins):
        data = stacked[idx]
        scale = float(np.mean(np.abs(data)))
        if scale <= 0.0:
            scale = 1.0
        r_data = qr_factor(data)
        constraint = kappa * scale * identity
        weights[idx] = solve_constrained(r_data, constraint, steering)
    return weights


class EasyWeightComputer:
    """Stateful easy-bin weight computation with per-azimuth history."""

    def __init__(self, params: STAPParams, steering: np.ndarray):
        """``steering``: (J, M) matrix of receive-beam steering vectors."""
        steering = np.asarray(steering, dtype=complex)
        if steering.shape != (params.num_channels, params.num_beams):
            raise ConfigurationError(
                f"steering shape {steering.shape} != "
                f"({params.num_channels}, {params.num_beams})"
            )
        self.params = params
        self.steering = steering
        self._history: Dict[int, Deque[np.ndarray]] = {}

    # -- state -----------------------------------------------------------------
    def push_training(self, training: np.ndarray, azimuth: int = 0) -> None:
        """Record one CPI's training block (output of extract_easy_training)."""
        params = self.params
        expected = (
            params.num_easy_doppler,
            params.easy_train_per_cpi,
            params.num_channels,
        )
        training = np.asarray(training)
        if training.shape != expected:
            raise ConfigurationError(
                f"easy training shape {training.shape} != {expected}"
            )
        history = self._history.setdefault(azimuth, deque(maxlen=HISTORY_LENGTH))
        history.append(training)

    def history_depth(self, azimuth: int = 0) -> int:
        """Number of CPIs of training currently held for ``azimuth``."""
        return len(self._history.get(azimuth, ()))

    # -- weights -------------------------------------------------------------
    def compute_weights(self, azimuth: int = 0) -> np.ndarray:
        """Weights for the *next* CPI in this azimuth: (N_easy, J, M).

        Before any training exists, returns quiescent (steering-only)
        weights so the chain degrades to conventional beamforming.
        """
        params = self.params
        history = self._history.get(azimuth)
        n_easy, J, M = (
            params.num_easy_doppler,
            params.num_channels,
            params.num_beams,
        )
        if not history:
            weights = np.empty((n_easy, J, M), dtype=complex)
            weights[:] = quiescent_weights(self.steering)[None, :, :]
            return weights
        stacked = np.concatenate(list(history), axis=1)  # (N_easy, <=3c, J)
        return compute_easy_weights(
            stacked, self.steering, params.beam_constraint_weight
        )
