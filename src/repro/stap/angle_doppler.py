"""Angle-Doppler analysis: spectra and adapted patterns.

The diagnostic views STAP engineers live in: where the clutter ridge sits
in the angle-Doppler plane, and where the adaptive weights place their
nulls.  Used by the analysis examples and by tests that verify the physics
of the synthetic data (the ridge slope equals the platform's
``clutter_velocity_ratio``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.radar.datacube import CPIDataCube
from repro.radar.geometry import spatial_steering
from repro.radar.parameters import STAPParams


def angle_doppler_spectrum(
    cube: CPIDataCube,
    angles_deg=None,
    spacing_wavelengths: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Conventional (Fourier) angle-Doppler power spectrum of a CPI.

    Averages over range cells the power of the 2-D matched filter
    ``|s(theta)^H X f(doppler)|^2``.

    Returns ``(spectrum, angles_deg, normalized_dopplers)`` with
    ``spectrum`` of shape (num_angles, N) — rows are angles, columns the
    FFT Doppler bins shifted to [-1/2, 1/2).
    """
    params = cube.params
    if angles_deg is None:
        angles_deg = np.linspace(-60.0, 60.0, 61)
    angles_deg = np.asarray(angles_deg, dtype=float)
    if angles_deg.ndim != 1 or angles_deg.size == 0:
        raise ConfigurationError("angles_deg must be a non-empty 1-D sequence")

    J = params.num_channels
    # Doppler transform along pulses: (K, J, N) -> (K, J, N bins).
    doppler = np.fft.fft(cube.data, axis=2) / np.sqrt(params.num_pulses)
    steering = np.stack(
        [
            spatial_steering(J, angle, spacing_wavelengths)
            for angle in angles_deg
        ]
    )  # (A, J)
    # (A, J) x (K, J, N) -> (A, K, N): beamform every range cell and bin.
    beamformed = np.einsum("aj,kjn->akn", np.conj(steering), doppler)
    spectrum = np.mean(np.abs(beamformed) ** 2, axis=1)  # (A, N)
    spectrum = np.fft.fftshift(spectrum, axes=1)
    dopplers = np.fft.fftshift(np.fft.fftfreq(params.num_doppler))
    return spectrum, angles_deg, dopplers


def ridge_doppler_estimate(
    cube: CPIDataCube, angles_deg=None, spacing_wavelengths: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Per-angle Doppler of the clutter ridge: argmax of the spectrum.

    Returns ``(angles_deg, peak_normalized_doppler_per_angle)`` — on
    clutter-dominated data the peaks trace the line
    ``f = 0.5 * beta * sin(theta)``.
    """
    spectrum, angles, dopplers = angle_doppler_spectrum(
        cube, angles_deg, spacing_wavelengths
    )
    return angles, dopplers[np.argmax(spectrum, axis=1)]


def adapted_pattern(
    weights: np.ndarray,
    params: STAPParams,
    angles_deg=None,
    spacing_wavelengths: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Spatial power pattern ``|w^H s(theta)|^2`` of one weight vector.

    Accepts a J-element (easy) weight; for a 2J staggered weight the two
    windows are evaluated coherently against an identical-phase signal.
    Returns ``(pattern, angles_deg)``, pattern normalized to peak 1.
    """
    weights = np.asarray(weights, dtype=complex).ravel()
    J = params.num_channels
    if weights.size not in (J, 2 * J):
        raise ConfigurationError(
            f"weight length {weights.size} is neither J={J} nor 2J={2 * J}"
        )
    if angles_deg is None:
        angles_deg = np.linspace(-90.0, 90.0, 181)
    angles_deg = np.asarray(angles_deg, dtype=float)
    pattern = np.empty(angles_deg.size)
    for idx, angle in enumerate(angles_deg):
        s = spatial_steering(J, angle, spacing_wavelengths) * np.sqrt(J)
        if weights.size == 2 * J:
            s = np.concatenate([s, s])
        pattern[idx] = np.abs(np.vdot(weights, s)) ** 2
    peak = pattern.max()
    if peak > 0:
        pattern = pattern / peak
    return pattern, angles_deg
