"""Sliding-window cell-averaging CFAR (pipeline task 6).

"The sliding window constant false alarm rate (CFAR) processing compares the
value of a test cell at a given range to the average of a set of reference
cells around it times a probability of false alarm factor" (Section 5.5).

Implementation: per (Doppler bin, beam) row, a window of ``cfar_window``
reference cells on each side of the cell under test, separated by
``cfar_guard`` guard cells.  The noise estimate is the mean of the available
reference cells (windows truncate at the row edges, and the threshold factor
adapts to the actual cell count so the design Pfa holds everywhere).
Vectorized with a cumulative sum along range — one pass, no Python loop over
cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import kernel_counters
from repro.radar.parameters import STAPParams


@dataclass(frozen=True, order=True)
class Detection:
    """One CFAR crossing: where, how strong, and against what threshold."""

    doppler_bin: int
    beam: int
    range_cell: int
    power: float
    threshold: float

    @property
    def margin_db(self) -> float:
        """Detection margin over threshold in dB."""
        return 10.0 * np.log10(self.power / self.threshold)


def cfar_threshold_factor(num_reference: np.ndarray | int, pfa: float) -> np.ndarray:
    """CA-CFAR scale factor ``alpha`` for a given reference-cell count.

    For exponentially-distributed noise power (complex Gaussian voltage)
    averaged over ``n`` cells, ``alpha = n * (pfa**(-1/n) - 1)`` yields the
    design false-alarm probability — the standard cell-averaging CFAR
    result.
    """
    n = np.asarray(num_reference, dtype=float)
    if np.any(n < 1):
        raise ConfigurationError("reference cell count must be >= 1")
    if not (0.0 < pfa < 1.0):
        raise ConfigurationError(f"pfa must be in (0, 1), got {pfa}")
    return n * (pfa ** (-1.0 / n) - 1.0)


def reference_cell_counts(params: STAPParams) -> np.ndarray:
    """Reference cells actually available at each range index (edge-aware)."""
    K, W, G = params.num_ranges, params.cfar_window, params.cfar_guard
    k = np.arange(K)
    lead_lo = np.maximum(k - G - W, 0)
    lead_hi = np.maximum(k - G, 0)
    trail_lo = np.minimum(k + G + 1, K)
    trail_hi = np.minimum(k + G + 1 + W, K)
    counts = (lead_hi - lead_lo) + (trail_hi - trail_lo)
    return np.maximum(counts, 1)


def _window_sums(power: np.ndarray, params: STAPParams) -> np.ndarray:
    """Sum of reference cells around each range index, vectorized via cumsum."""
    K, W, G = params.num_ranges, params.cfar_window, params.cfar_guard
    csum = np.concatenate(
        [np.zeros(power.shape[:-1] + (1,), dtype=np.float64), np.cumsum(power, axis=-1)],
        axis=-1,
    )
    k = np.arange(K)
    lead_lo = np.maximum(k - G - W, 0)
    lead_hi = np.maximum(k - G, 0)
    trail_lo = np.minimum(k + G + 1, K)
    trail_hi = np.minimum(k + G + 1 + W, K)
    lead = csum[..., lead_hi] - csum[..., lead_lo]
    trail = csum[..., trail_hi] - csum[..., trail_lo]
    return lead + trail


def cfar_detect(
    power: np.ndarray,
    params: STAPParams,
    pfa: float | None = None,
    bin_ids=None,
    factor: np.ndarray | None = None,
) -> list[Detection]:
    """Run CA-CFAR over a power cube; returns detections sorted by index.

    Parameters
    ----------
    power:
        (bins, M, K) real power cube from pulse compression — the full cube
        (bins = N) or a block of Doppler bins owned by one parallel CFAR
        processor.
    pfa:
        Override of ``params.cfar_pfa``.
    bin_ids:
        Global Doppler bin number of each row of ``power`` (default:
        ``0..bins-1``).  CFAR is independent per (bin, beam) row, so
        detections from a block labelled this way match the full-cube run
        exactly.
    factor:
        Optional precomputed (K,) ``alpha / counts`` threshold factor (a
        :class:`~repro.stap.plan.KernelPlan` holds it for the design Pfa).
        Mutually exclusive with ``pfa`` — the factor bakes one in.
    """
    M, K = params.num_beams, params.num_ranges
    power = np.asarray(power)
    if power.ndim != 3 or power.shape[1:] != (M, K):
        raise ConfigurationError(
            f"power cube shape {power.shape} must be (bins, {M}, {K})"
        )
    if np.iscomplexobj(power):
        raise ConfigurationError("CFAR expects real power data")
    if bin_ids is None:
        bin_ids = np.arange(power.shape[0])
    else:
        bin_ids = np.asarray(bin_ids)
        if bin_ids.shape != (power.shape[0],):
            raise ConfigurationError(
                f"bin_ids length {bin_ids.shape} != {power.shape[0]} rows"
            )
    if factor is None:
        pfa = params.cfar_pfa if pfa is None else pfa
        counts = reference_cell_counts(params)
        factor = cfar_threshold_factor(counts, pfa) / counts
    elif pfa is not None:
        raise ConfigurationError("pass either a pfa override or a factor, not both")
    elif factor.shape != (K,):
        raise ConfigurationError(f"factor length {factor.shape} != ({K},)")
    start = perf_counter() if kernel_counters.enabled else None
    sums = _window_sums(np.asarray(power, dtype=np.float64), params)
    thresholds = factor[None, None, :] * sums
    mask = power > thresholds
    # Gather the crossing coordinates and values in one indexed pass each;
    # Detection construction is the only remaining per-hit Python work.
    hits = np.argwhere(mask)
    hit_powers = power[mask]
    hit_thresholds = thresholds[mask]
    hit_bins = bin_ids[hits[:, 0]]
    detections = [
        Detection(
            doppler_bin=int(bin_id),
            beam=int(m),
            range_cell=int(k),
            power=float(value),
            threshold=float(threshold),
        )
        for bin_id, (_, m, k), value, threshold in zip(
            hit_bins, hits.tolist(), hit_powers.tolist(), hit_thresholds.tolist()
        )
    ]
    detections.sort()
    if start is not None:
        from repro.stap.flops import cfar_flops

        share = power.shape[0] / params.num_doppler
        kernel_counters.record(
            "cfar", perf_counter() - start, cfar_flops(params) * share
        )
    return detections
