"""Beamforming (pipeline tasks 3 and 4: "easy BF" / "hard BF").

Applies the adaptive weights to the Doppler-filtered data:
``y[n, m, k] = w[n, :, m]^H  x[n, :, k]`` — per Doppler bin, an M x C times
C x K matrix product (C = J for easy bins, 2J for hard bins, the latter per
range segment).  These are exactly the matrix-matrix multiplications whose
counts appear in the paper's Table 1.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import kernel_counters
from repro.radar.parameters import STAPParams


def beamform_easy(
    dop_easy: np.ndarray, weights: np.ndarray, params: STAPParams
) -> np.ndarray:
    """Easy-bin beamforming.

    Parameters
    ----------
    dop_easy:
        (N_easy, J, K) — the easy bins of the staggered cube, first Doppler
        window only.
    weights:
        (N_easy, J, M) easy weights.

    Returns
    -------
    (N_easy, M, K) beamformed data.
    """
    n_easy, J, K = (
        params.num_easy_doppler,
        params.num_channels,
        params.num_ranges,
    )
    if dop_easy.shape != (n_easy, J, K):
        raise ConfigurationError(
            f"easy Doppler data shape {dop_easy.shape} != ({n_easy},{J},{K})"
        )
    if weights.shape != (n_easy, J, params.num_beams):
        raise ConfigurationError(
            f"easy weights shape {weights.shape} != "
            f"({n_easy},{J},{params.num_beams})"
        )
    start = perf_counter() if kernel_counters.enabled else None
    out = np.einsum("njm,njk->nmk", np.conj(weights), dop_easy, optimize=True)
    if start is not None:
        from repro.stap.flops import easy_beamform_flops

        kernel_counters.record(
            "easy_beamform", perf_counter() - start, easy_beamform_flops(params)
        )
    return out


def beamform_hard(
    dop_hard: np.ndarray, weights: np.ndarray, params: STAPParams
) -> np.ndarray:
    """Hard-bin beamforming with per-segment weights.

    Parameters
    ----------
    dop_hard:
        (N_hard, 2J, K) — the hard bins of the staggered cube, both windows.
    weights:
        (num_segments, N_hard, 2J, M) hard weights.

    Returns
    -------
    (N_hard, M, K) beamformed data; range segment ``s`` of the output uses
    segment ``s``'s weights.
    """
    n_hard = params.num_hard_doppler
    n2 = params.num_staggered_channels
    K = params.num_ranges
    if dop_hard.shape != (n_hard, n2, K):
        raise ConfigurationError(
            f"hard Doppler data shape {dop_hard.shape} != ({n_hard},{n2},{K})"
        )
    expected_w = (params.num_segments, n_hard, n2, params.num_beams)
    if weights.shape != expected_w:
        raise ConfigurationError(f"hard weights shape {weights.shape} != {expected_w}")
    start = perf_counter() if kernel_counters.enabled else None
    out = np.empty((n_hard, params.num_beams, K), dtype=complex)
    for seg_idx, seg in enumerate(params.segment_slices):
        out[:, :, seg] = np.einsum(
            "njm,njk->nmk",
            np.conj(weights[seg_idx]),
            dop_hard[:, :, seg],
            optimize=True,
        )
    if start is not None:
        from repro.stap.flops import hard_beamform_flops

        kernel_counters.record(
            "hard_beamform", perf_counter() - start, hard_beamform_flops(params)
        )
    return out


def assemble_beamformed(
    easy: np.ndarray, hard: np.ndarray, params: STAPParams
) -> np.ndarray:
    """Interleave easy- and hard-bin results into the full (N, M, K) cube.

    Bin order follows the FFT bin index, so hard bins land at both spectrum
    edges and easy bins in the centre — the layout pulse compression and
    CFAR consume.
    """
    N, M, K = params.num_doppler, params.num_beams, params.num_ranges
    if easy.shape != (params.num_easy_doppler, M, K):
        raise ConfigurationError(f"easy beamformed shape {easy.shape} unexpected")
    if hard.shape != (params.num_hard_doppler, M, K):
        raise ConfigurationError(f"hard beamformed shape {hard.shape} unexpected")
    out = np.empty((N, M, K), dtype=complex)
    out[params.easy_bins] = easy
    out[params.hard_bins] = hard
    return out
