"""STAP signal processing: the numerical algorithms of Appendix B.

This package implements, in NumPy, every processing step of the
PRI-staggered post-Doppler STAP algorithm the paper parallelizes:

1. Doppler filter processing with PRI stagger (:mod:`repro.stap.doppler`);
2. beam-constrained least-squares weight computation — direct QR for easy
   Doppler bins (:mod:`repro.stap.easy_weights`) and recursive,
   exponentially-forgotten QR updates for hard bins
   (:mod:`repro.stap.hard_weights`), both on the shared linear-algebra
   kernels in :mod:`repro.stap.lsq`;
3. beamforming (:mod:`repro.stap.beamform`);
4. fast-convolution pulse compression (:mod:`repro.stap.pulse_compression`);
5. sliding-window cell-averaging CFAR (:mod:`repro.stap.cfar`).

:mod:`repro.stap.reference` chains them into the sequential golden
reference — same temporal semantics as the parallel pipeline (weights
trained on CPI *i-1* are applied to CPI *i*) — and
:mod:`repro.stap.flops` provides the analytic operation counts behind the
paper's Table 1.
"""

from repro.stap.doppler import doppler_filter
from repro.stap.lsq import qr_factor, qr_append_rows, solve_constrained, quiescent_weights
from repro.stap.easy_weights import EasyWeightComputer
from repro.stap.hard_weights import HardWeightComputer
from repro.stap.beamform import beamform_easy, beamform_hard, assemble_beamformed
from repro.stap.pulse_compression import pulse_compress
from repro.stap.cfar import cfar_threshold_factor, cfar_detect, Detection
from repro.stap.detection import DetectionReport
from repro.stap.plan import KernelPlan, build_kernel_plan
from repro.stap.reference import SequentialSTAP
from repro.stap import flops
from repro.stap import sinr
from repro.stap import angle_doppler

__all__ = [
    "doppler_filter",
    "qr_factor",
    "qr_append_rows",
    "solve_constrained",
    "quiescent_weights",
    "EasyWeightComputer",
    "HardWeightComputer",
    "beamform_easy",
    "beamform_hard",
    "assemble_beamformed",
    "pulse_compress",
    "cfar_threshold_factor",
    "cfar_detect",
    "Detection",
    "DetectionReport",
    "KernelPlan",
    "build_kernel_plan",
    "SequentialSTAP",
    "flops",
    "sinr",
    "angle_doppler",
]
