"""KernelPlan: every CPI-invariant factor of the STAP chain, built once.

The functional pipeline used to rebuild several small constants on every
CPI — the Doppler window, the matched-filter replica spectrum (an
``lfm_chirp`` plus a K-point FFT per call), quiescent fallback weights,
and the CFAR ``alpha / counts`` threshold factors.  None of them depend on
the data; they are pure functions of :class:`~repro.radar.parameters.
STAPParams` and the steering matrix.  A :class:`KernelPlan` computes them
exactly once — at pipeline/task setup — and every kernel call reuses the
arrays.

Numerics are unchanged by construction: the plan stores the *same* arrays
the per-call code used to compute (same functions, same argument order),
so a pipeline run with a plan is bit-identical to one without.  Bins are
precomputed for the full Doppler extent and sliced per task
(``stagger_phases[bins]``, ``hard_quiescent[bins]``); the underlying
kernels are batch-composition independent, so a slice of the full-extent
array equals the per-bin computation.

The plan is shared freely across tasks and with the sequential reference:
all fields are read-only by convention (tasks only ever index into them).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.radar.parameters import STAPParams
from repro.radar.windows import window_by_name
from repro.stap.cfar import cfar_threshold_factor, reference_cell_counts
from repro.stap.doppler import stagger_phase
from repro.stap.lsq import quiescent_weights, quiescent_weights_stacked
from repro.stap.pulse_compression import replica_response


@dataclass(frozen=True)
class KernelPlan:
    """Precomputed per-run constants for the functional STAP kernels."""

    params: STAPParams
    #: (J, M) receive-beam steering matrix.
    steering: np.ndarray
    #: (J, M) steering-only weights — the easy chain's cold-start fallback.
    easy_quiescent: np.ndarray
    #: (N,) late-window stagger phase of every Doppler bin.
    stagger_phases: np.ndarray
    #: (N, 2J, M) coherent staggered quiescent weights of every bin — the
    #: hard chain's cold-start fallback (indexed by absolute bin id).
    hard_quiescent: np.ndarray
    #: (N - stagger,) Doppler filter-bank window, in the params' real dtype.
    doppler_window: np.ndarray
    #: (K,) matched-filter frequency response of the transmit replica.
    replica_freq: np.ndarray
    #: (K,) reference cells available at each range index (edge-aware).
    cfar_counts: np.ndarray
    #: (K,) CA-CFAR alpha for the design Pfa at each range index.
    cfar_alpha: np.ndarray
    #: (K,) ``alpha / counts`` — the factor CFAR multiplies window sums by.
    cfar_factor: np.ndarray

    @classmethod
    def build(cls, params: STAPParams, steering: np.ndarray) -> "KernelPlan":
        """Compute every plan entry from scratch (once per run)."""
        steering = np.asarray(steering, dtype=complex)
        phases = stagger_phase(params, np.arange(params.num_doppler))
        counts = reference_cell_counts(params)
        alpha = cfar_threshold_factor(counts, params.cfar_pfa)
        win_len = params.num_pulses - params.stagger
        return cls(
            params=params,
            steering=steering,
            easy_quiescent=quiescent_weights(steering),
            stagger_phases=phases,
            hard_quiescent=quiescent_weights_stacked(steering, phases),
            doppler_window=window_by_name(params.window, win_len).astype(
                params.real_dtype
            ),
            replica_freq=replica_response(params),
            cfar_counts=counts,
            cfar_alpha=alpha,
            cfar_factor=alpha / counts,
        )


def build_kernel_plan(params: STAPParams, steering: np.ndarray) -> KernelPlan:
    """Functional spelling of :meth:`KernelPlan.build`."""
    return KernelPlan.build(params, steering)


@lru_cache(maxsize=8)
def default_plan(params: STAPParams) -> KernelPlan:
    """The plan for the *default* steering matrix, memoized per params.

    Default-steering plans are pure functions of ``params`` (a frozen,
    hashable dataclass), so repeated pipeline builds — the executor's
    warm-started workers, ``run_parallel``, back-to-back test pipelines —
    share one construction.  Treat the result as read-only, like every
    plan."""
    from repro.stap.reference import default_steering

    return KernelPlan.build(params, default_steering(params))
