"""Pulse compression (pipeline task 5).

"Pulse compression involves convolution of the received signal with a
replica of the transmit pulse waveform.  This is accomplished by first
performing K-point FFTs on the two inputs, point-wise multiplication of the
intermediate result and then computing the inverse FFT" (Section 5.4).

Because the mainbeam constraint preserves target phase across range, pulse
compression runs on the *beamformed* output (M beams) instead of on every
receive channel — the algorithm-level saving Section 3 highlights.  After
filtering, "the square of the magnitude of the complex data is computed to
move to the real power domain", halving the data and avoiding square roots.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import kernel_counters
from repro.radar.parameters import STAPParams
from repro.radar.waveform import lfm_chirp, matched_filter_frequency_response


def replica_response(params: STAPParams) -> np.ndarray:
    """Matched-filter frequency response for the configured waveform."""
    return matched_filter_frequency_response(
        lfm_chirp(params.waveform_length), params.num_ranges
    )


def pulse_compress(
    beamformed: np.ndarray,
    params: STAPParams,
    replica_freq: np.ndarray | None = None,
) -> np.ndarray:
    """Matched-filter along range and square to the power domain.

    Parameters
    ----------
    beamformed:
        (N, M, K) complex beamformed cube.
    replica_freq:
        Optional precomputed :func:`replica_response` (length K).

    Returns
    -------
    (N, M, K) real power cube.  The correlation peak of a target injected at
    range cell ``k0`` lands at index ``k0``.
    """
    N, M, K = params.num_doppler, params.num_beams, params.num_ranges
    if beamformed.shape != (N, M, K):
        raise ConfigurationError(
            f"beamformed shape {beamformed.shape} != ({N},{M},{K})"
        )
    return pulse_compress_block(beamformed, params, replica_freq)


def pulse_compress_block(
    beamformed: np.ndarray,
    params: STAPParams,
    replica_freq: np.ndarray | None = None,
) -> np.ndarray:
    """Matched filter an arbitrary block of Doppler bins: (b, M, K).

    The per-processor kernel of the parallel pulse-compression task, which
    owns ``N / P_5`` Doppler bins (Figure 9); :func:`pulse_compress` is the
    full-cube wrapper.
    """
    M, K = params.num_beams, params.num_ranges
    beamformed = np.asarray(beamformed)
    if beamformed.ndim != 3 or beamformed.shape[1:] != (M, K):
        raise ConfigurationError(
            f"block shape {beamformed.shape} must be (bins, {M}, {K})"
        )
    if replica_freq is None:
        replica_freq = replica_response(params)
    if replica_freq.shape != (K,):
        raise ConfigurationError(
            f"replica response length {replica_freq.shape} != ({K},)"
        )
    start = perf_counter() if kernel_counters.enabled else None
    spectrum = np.fft.fft(beamformed, axis=2)
    spectrum *= replica_freq[None, None, :]
    compressed = np.fft.ifft(spectrum, axis=2)
    power = compressed.real**2 + compressed.imag**2
    # ``power`` is float64 (np.fft computes in double); copy=False returns
    # it as-is for double-precision params instead of cloning the cube.
    power = power.astype(params.real_dtype, copy=False)
    if start is not None:
        from repro.stap.flops import pulse_compression_flops

        share = beamformed.shape[0] / params.num_doppler
        kernel_counters.record(
            "pulse_compression",
            perf_counter() - start,
            pulse_compression_flops(params) * share,
        )
    return power
