"""Analytic floating-point operation counts (the paper's Table 1).

Counting conventions (real flops):

* complex multiply-accumulate: 8 flops (4 mult + 4 add);
* radix-2 complex FFT of length n: ``5 n log2(n)`` flops;
* Householder QR of a complex m x n matrix (m >= n): ``8 (m n^2 - n^3/3)``;
* per-beam constrained solve: fitted constants documented below.

With the defaults (K=512, J=16, N=128, M=6, N_easy=72, N_hard=56, 96 easy /
32 hard training samples) five of the seven task counts match the paper's
Table 1 *exactly* and the two weight tasks match within 0.02 % — the
residue is the paper's unstated flop accounting of its triangular solves.
The paper's exact numbers are kept in :data:`PAPER_TABLE1` for comparison.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.radar.parameters import STAPParams

#: Table 1 of the paper, verbatim.
PAPER_TABLE1: Dict[str, int] = {
    "doppler": 79_691_776,
    "hard_weight": 197_038_464,
    "easy_weight": 13_851_792,
    "easy_beamform": 28_311_552,
    "hard_beamform": 44_040_192,
    "pulse_compression": 38_928_384,
    "cfar": 1_690_368,
    "total": 403_552_528,
}


def fft_flops(length: int) -> float:
    """Complex FFT cost: 5 n log2(n)."""
    if length < 1:
        return 0.0
    return 5.0 * length * math.log2(length)


def qr_flops(rows: int, cols: int) -> float:
    """Complex Householder QR cost: 8 (m n^2 - n^3 / 3)."""
    m, n = float(rows), float(cols)
    return 8.0 * (m * n * n - n**3 / 3.0)


def doppler_flops(params: STAPParams) -> float:
    """Task 0: K*2J FFTs of length N plus windowing/range correction.

    Per (range cell, staggered channel): one N-point FFT (5 N log2 N) plus
    3N for the window multiply and range correction.  Exactly 79,691,776 at
    paper scale.
    """
    K, J, N = params.num_ranges, params.num_channels, params.num_pulses
    per_line = fft_flops(N) + 3.0 * N
    return K * 2 * J * per_line


def easy_weight_flops(params: STAPParams) -> float:
    """Task 1: N_easy QR factorizations + M constrained solves each.

    Per easy bin: QR of the (3 * easy_train_per_cpi) x J training stack,
    then per beam a constraint application and triangular back substitution
    costed at ``4 J^2 + 6 J`` (fitted; reproduces the paper's count to
    0.02 %).
    """
    J, M = params.num_channels, params.num_beams
    per_bin = qr_flops(params.easy_train_total, J) + M * (4.0 * J * J + 6.0 * J)
    return params.num_easy_doppler * per_bin


def hard_weight_flops(params: STAPParams) -> float:
    """Task 2: 6 * N_hard recursive QR updates + M solves each.

    Per (segment, hard bin): block QR of the stacked
    ``[R_old (2J); new samples (hard_train_samples); constraints (J)]``
    rows over 2J columns, then per beam a back substitution costed at
    ``3 (2J)^2`` (fitted; reproduces the paper's count to 0.01 %).
    """
    n2 = params.num_staggered_channels
    M = params.num_beams
    rows = n2 + params.hard_train_samples + params.num_channels
    per_update = qr_flops(rows, n2) + M * (3.0 * n2 * n2)
    return params.num_segments * params.num_hard_doppler * per_update


def easy_beamform_flops(params: STAPParams) -> float:
    """Task 3: N_easy complex matrix products (M x J)(J x K) — 8MJK each."""
    return (
        params.num_easy_doppler
        * 8.0
        * params.num_beams
        * params.num_channels
        * params.num_ranges
    )


def hard_beamform_flops(params: STAPParams) -> float:
    """Task 4: N_hard bins x (M x 2J)(2J x K) products across the segments.

    The segments partition the K range cells, so the total work per hard
    bin equals one full-range product: 8 M (2J) K.
    """
    return (
        params.num_hard_doppler
        * 8.0
        * params.num_beams
        * params.num_staggered_channels
        * params.num_ranges
    )


def pulse_compression_flops(params: STAPParams) -> float:
    """Task 5: per (bin, beam): forward+inverse K-FFT, K complex products,
    magnitude-squares — ``10 K log2 K + 9 K``.  Exact at paper scale."""
    K = params.num_ranges
    per_line = 2.0 * fft_flops(K) + 6.0 * K + 3.0 * K
    return params.num_doppler * params.num_beams * per_line


def cfar_flops(params: STAPParams) -> float:
    """Task 6: sliding-window sums + compare: ``4K + 153`` per (bin, beam).

    4 flops/cell (two window-edge updates, scale, compare) plus a fitted
    153-flop per-row window set-up; exactly 1,690,368 at paper scale.
    """
    K = params.num_ranges
    return params.num_doppler * params.num_beams * (4.0 * K + 153.0)


#: Task name -> flop function, in pipeline order.
TASK_FLOPS = {
    "doppler": doppler_flops,
    "easy_weight": easy_weight_flops,
    "hard_weight": hard_weight_flops,
    "easy_beamform": easy_beamform_flops,
    "hard_beamform": hard_beamform_flops,
    "pulse_compression": pulse_compression_flops,
    "cfar": cfar_flops,
}


def all_task_flops(params: STAPParams) -> Dict[str, float]:
    """Flop count per task plus the total, mirroring Table 1."""
    counts = {name: fn(params) for name, fn in TASK_FLOPS.items()}
    counts["total"] = sum(counts.values())
    return counts


def flops_table(params: STAPParams) -> str:
    """Printable paper-vs-model comparison of Table 1."""
    counts = all_task_flops(params)
    lines = [
        f"{'task':<20} {'model flops':>15} {'paper flops':>15} {'error %':>9}",
        "-" * 62,
    ]
    for name in list(TASK_FLOPS) + ["total"]:
        model = counts[name]
        paper = PAPER_TABLE1.get(name)
        if paper:
            err = 100.0 * (model - paper) / paper
            lines.append(f"{name:<20} {model:>15,.0f} {paper:>15,} {err:>8.3f}%")
        else:
            lines.append(f"{name:<20} {model:>15,.0f} {'-':>15} {'-':>9}")
    return "\n".join(lines)
