"""Shared linear-algebra kernels: QR factorization, block updates, solves.

The weight-computation algorithm (Appendix A) is a *beam-constrained least
squares* problem: find ``w`` minimizing ``|| [X; kI] w - [0; k ws] ||``.
Because the data matrix ``X`` is independent of the steering vector, its QR
factorization is computed once and reused for all receive beams — "the QR
factorization of M needs to be performed only once for a given data set"
— which these kernels make explicit:

* :func:`qr_factor` — R factor of a (possibly tall) complex matrix;
* :func:`qr_append_rows` — block QR update: R factor of ``[R_old; rows]``
  without revisiting old data (the recursion behind the hard-bin weights);
* :func:`solve_constrained` — given the data R factor, apply the constraint
  block and back-substitute for every beam.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import ConfigurationError


def qr_factor(matrix: np.ndarray) -> np.ndarray:
    """Upper-trapezoidal R factor of ``matrix`` (economy QR, n x n output).

    For an m x n input with m >= n, returns the n x n upper-triangular R
    with ``R^H R == matrix^H matrix``.  For m < n the top m rows are the
    R factor and the result is zero-padded to n x n so that callers can
    treat R as a fixed-size recursion state.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ConfigurationError(f"qr_factor expects a matrix, got ndim={matrix.ndim}")
    m, n = matrix.shape
    if m == 0:
        return np.zeros((n, n), dtype=complex)
    r = scipy.linalg.qr(matrix, mode="r")[0]
    if r.shape[0] < n:
        out = np.zeros((n, n), dtype=r.dtype)
        out[: r.shape[0], :] = r
        return out
    return np.ascontiguousarray(r[:n, :])


def qr_append_rows(r_old: np.ndarray, rows: np.ndarray, forget: float = 1.0) -> np.ndarray:
    """Block QR update: R factor of ``[forget * R_old; rows]``.

    This is the "block update form of the QR decomposition" of Section 3.
    With ``forget < 1`` old data is exponentially down-weighted — the
    recursive hard-bin training with forgetting factor 0.6 (Appendix B's
    ``forgettingFactor``).

    The information-matrix identity being maintained::

        R_new^H R_new = forget^2 * R_old^H R_old + rows^H rows
    """
    r_old = np.asarray(r_old)
    rows = np.atleast_2d(np.asarray(rows))
    n = r_old.shape[1]
    if r_old.shape != (n, n):
        raise ConfigurationError(f"R state must be square, got {r_old.shape}")
    if rows.shape[1] != n:
        raise ConfigurationError(
            f"appended rows have {rows.shape[1]} columns, expected {n}"
        )
    if not (0.0 < forget <= 1.0):
        raise ConfigurationError(f"forget factor must be in (0,1], got {forget}")
    stacked = np.vstack([forget * r_old, rows])
    return qr_factor(stacked)


def solve_constrained(
    r_data: np.ndarray,
    constraint: np.ndarray,
    steering_rhs: np.ndarray,
    normalize: bool = True,
) -> np.ndarray:
    """Solve the beam-constrained least-squares problem for every beam.

    Minimizes, independently per beam ``m``::

        || [R_data; C] w_m - [0; rhs[:, m]] ||

    where ``R_data`` (n x n) summarizes the clutter training data and ``C``
    is the constraint block (identity-like rows scaled by the data level —
    Appendix A Figure 13).  Returns weights of shape (n, num_beams),
    optionally normalized to unit length per beam ("we normalize the
    resulting weight vector to unit length").

    The solve costs one QR of the small stacked system plus a triangular
    back substitution per beam; rank deficiency (early CPIs, before the
    recursion has accumulated enough looks) falls back to ``lstsq``.
    """
    r_data = np.asarray(r_data)
    constraint = np.atleast_2d(np.asarray(constraint))
    steering_rhs = np.atleast_2d(np.asarray(steering_rhs))
    n = r_data.shape[1]
    if constraint.shape[1] != n:
        raise ConfigurationError(
            f"constraint has {constraint.shape[1]} columns, expected {n}"
        )
    if steering_rhs.shape[0] != constraint.shape[0]:
        raise ConfigurationError(
            "steering rhs rows must match constraint rows: "
            f"{steering_rhs.shape[0]} vs {constraint.shape[0]}"
        )
    stacked = np.vstack([r_data, constraint])
    rhs = np.vstack(
        [
            np.zeros((r_data.shape[0], steering_rhs.shape[1]), dtype=complex),
            steering_rhs.astype(complex),
        ]
    )
    # One QR of the stacked system, shared across beams.
    q, r = scipy.linalg.qr(stacked, mode="economic")
    qtb = q.conj().T @ rhs
    diag = np.abs(np.diag(r))
    if diag.size < n or np.any(diag < 1e-10 * max(diag.max(initial=0.0), 1.0)):
        weights, *_ = np.linalg.lstsq(stacked, rhs, rcond=None)
    else:
        weights = scipy.linalg.solve_triangular(r, qtb)
    if normalize:
        norms = np.linalg.norm(weights, axis=0)
        norms[norms == 0.0] = 1.0
        weights = weights / norms
    return weights


def quiescent_weights(steering: np.ndarray, copies: int = 1, phases=None) -> np.ndarray:
    """Non-adaptive (steering-only) weights, used before any training exists.

    For the staggered (2J) case pass ``copies=2`` and the per-bin stagger
    phase for the second copy; the result is unit-norm per beam.
    """
    steering = np.atleast_2d(np.asarray(steering, dtype=complex))
    if copies == 1:
        blocks = [steering]
    else:
        if phases is None:
            phases = [1.0] * copies
        blocks = [steering * phases[c] for c in range(copies)]
    weights = np.vstack(blocks)
    norms = np.linalg.norm(weights, axis=0)
    norms[norms == 0.0] = 1.0
    return weights / norms
