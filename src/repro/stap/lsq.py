"""Shared linear-algebra kernels: QR factorization, block updates, solves.

The weight-computation algorithm (Appendix A) is a *beam-constrained least
squares* problem: find ``w`` minimizing ``|| [X; kI] w - [0; k ws] ||``.
Because the data matrix ``X`` is independent of the steering vector, its QR
factorization is computed once and reused for all receive beams — "the QR
factorization of M needs to be performed only once for a given data set"
— which these kernels make explicit:

* :func:`qr_factor` — R factor of a (possibly tall) complex matrix;
* :func:`qr_append_rows` — block QR update: R factor of ``[R_old; rows]``
  without revisiting old data (the recursion behind the hard-bin weights);
* :func:`solve_constrained` — given the data R factor, apply the constraint
  block and back-substitute for every beam.

Each kernel also has a ``*_stacked`` variant operating on a leading batch
axis (one Doppler bin or (segment, bin) unit per slice).  A weight task at
paper scale performs hundreds of these small factorizations per CPI;
dispatching them through one stacked LAPACK call instead of a Python loop
is what moves the functional hot path from interpreter-bound to
LAPACK-bound.  The stacked variants factor each slice independently —
``np.linalg.qr`` loops over the same ``geqrf``/``ungqr`` kernels that the
per-matrix functions call — so their results do not depend on how slices
are grouped into batches, which keeps the parallel tasks (batching their
local bins) bit-identical to the sequential reference (batching all bins).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import ConfigurationError


def qr_factor(matrix: np.ndarray) -> np.ndarray:
    """Upper-trapezoidal R factor of ``matrix`` (economy QR, n x n output).

    For an m x n input with m >= n, returns the n x n upper-triangular R
    with ``R^H R == matrix^H matrix``.  For m < n the top m rows are the
    R factor and the result is zero-padded to n x n so that callers can
    treat R as a fixed-size recursion state.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ConfigurationError(f"qr_factor expects a matrix, got ndim={matrix.ndim}")
    m, n = matrix.shape
    if m == 0:
        return np.zeros((n, n), dtype=complex)
    r = scipy.linalg.qr(matrix, mode="r")[0]
    if r.shape[0] < n:
        out = np.zeros((n, n), dtype=r.dtype)
        out[: r.shape[0], :] = r
        return out
    return np.ascontiguousarray(r[:n, :])


def qr_append_rows(r_old: np.ndarray, rows: np.ndarray, forget: float = 1.0) -> np.ndarray:
    """Block QR update: R factor of ``[forget * R_old; rows]``.

    This is the "block update form of the QR decomposition" of Section 3.
    With ``forget < 1`` old data is exponentially down-weighted — the
    recursive hard-bin training with forgetting factor 0.6 (Appendix B's
    ``forgettingFactor``).

    The information-matrix identity being maintained::

        R_new^H R_new = forget^2 * R_old^H R_old + rows^H rows
    """
    r_old = np.asarray(r_old)
    rows = np.atleast_2d(np.asarray(rows))
    n = r_old.shape[1]
    if r_old.shape != (n, n):
        raise ConfigurationError(f"R state must be square, got {r_old.shape}")
    if rows.shape[1] != n:
        raise ConfigurationError(
            f"appended rows have {rows.shape[1]} columns, expected {n}"
        )
    if not (0.0 < forget <= 1.0):
        raise ConfigurationError(f"forget factor must be in (0,1], got {forget}")
    stacked = np.vstack([forget * r_old, rows])
    return qr_factor(stacked)


def solve_constrained(
    r_data: np.ndarray,
    constraint: np.ndarray,
    steering_rhs: np.ndarray,
    normalize: bool = True,
) -> np.ndarray:
    """Solve the beam-constrained least-squares problem for every beam.

    Minimizes, independently per beam ``m``::

        || [R_data; C] w_m - [0; rhs[:, m]] ||

    where ``R_data`` (n x n) summarizes the clutter training data and ``C``
    is the constraint block (identity-like rows scaled by the data level —
    Appendix A Figure 13).  Returns weights of shape (n, num_beams),
    optionally normalized to unit length per beam ("we normalize the
    resulting weight vector to unit length").

    The solve costs one QR of the small stacked system plus a triangular
    back substitution per beam; rank deficiency (early CPIs, before the
    recursion has accumulated enough looks) falls back to ``lstsq``.
    """
    r_data = np.asarray(r_data)
    constraint = np.atleast_2d(np.asarray(constraint))
    steering_rhs = np.atleast_2d(np.asarray(steering_rhs))
    n = r_data.shape[1]
    if constraint.shape[1] != n:
        raise ConfigurationError(
            f"constraint has {constraint.shape[1]} columns, expected {n}"
        )
    if steering_rhs.shape[0] != constraint.shape[0]:
        raise ConfigurationError(
            "steering rhs rows must match constraint rows: "
            f"{steering_rhs.shape[0]} vs {constraint.shape[0]}"
        )
    stacked = np.vstack([r_data, constraint])
    rhs = np.vstack(
        [
            np.zeros((r_data.shape[0], steering_rhs.shape[1]), dtype=complex),
            steering_rhs.astype(complex),
        ]
    )
    # One QR of the stacked system, shared across beams.
    q, r = scipy.linalg.qr(stacked, mode="economic")
    qtb = q.conj().T @ rhs
    diag = np.abs(np.diag(r))
    if diag.size < n or np.any(diag < 1e-10 * max(diag.max(initial=0.0), 1.0)):
        weights, *_ = np.linalg.lstsq(stacked, rhs, rcond=None)
    else:
        weights = scipy.linalg.solve_triangular(r, qtb)
    if normalize:
        norms = np.linalg.norm(weights, axis=0)
        norms[norms == 0.0] = 1.0
        weights = weights / norms
    return weights


def qr_factor_stacked(matrices: np.ndarray) -> np.ndarray:
    """R factors of a stack of matrices: (B, m, n) -> (B, n, n).

    The batched form of :func:`qr_factor`: one ``np.linalg.qr`` call over
    the stack instead of B Python-level factorizations.  Slices with
    m < n are zero-padded to n x n exactly as in the per-matrix kernel.
    """
    matrices = np.asarray(matrices)
    if matrices.ndim != 3:
        raise ConfigurationError(
            f"qr_factor_stacked expects (batch, m, n), got ndim={matrices.ndim}"
        )
    batch, m, n = matrices.shape
    if batch == 0:
        return np.zeros((0, n, n), dtype=complex)
    if m == 0:
        return np.zeros((batch, n, n), dtype=complex)
    r = np.linalg.qr(matrices, mode="r")
    if r.shape[1] < n:
        out = np.zeros((batch, n, n), dtype=r.dtype)
        out[:, : r.shape[1], :] = r
        return out
    return np.ascontiguousarray(r[:, :n, :])


def qr_append_rows_stacked(
    r_old: np.ndarray, rows: np.ndarray, forget: float = 1.0
) -> np.ndarray:
    """Batched block QR update: R factors of ``[forget * R_old; rows]``.

    ``r_old``: (B, n, n) R factors; ``rows``: (B, m, n) appended rows.
    One stacked factorization replaces B calls to :func:`qr_append_rows`
    while maintaining the same information-matrix identity per slice.
    """
    r_old = np.asarray(r_old)
    rows = np.asarray(rows)
    if r_old.ndim != 3 or r_old.shape[1] != r_old.shape[2]:
        raise ConfigurationError(
            f"stacked R state must be (batch, n, n), got {r_old.shape}"
        )
    n = r_old.shape[2]
    if rows.ndim != 3 or rows.shape[0] != r_old.shape[0] or rows.shape[2] != n:
        raise ConfigurationError(
            f"appended rows shape {rows.shape} incompatible with R state "
            f"{r_old.shape}"
        )
    if not (0.0 < forget <= 1.0):
        raise ConfigurationError(f"forget factor must be in (0,1], got {forget}")
    stacked = np.concatenate([forget * r_old, rows], axis=1)
    return qr_factor_stacked(stacked)


def solve_constrained_stacked(
    r_data: np.ndarray,
    constraints: np.ndarray,
    steering_rhs: np.ndarray,
    normalize: bool = True,
) -> np.ndarray:
    """Batched beam-constrained least squares: one solve per stack slice.

    ``r_data``: (B, n, n) data R factors; ``constraints``: (B, c, n)
    per-slice constraint blocks; ``steering_rhs``: (c, M) right-hand side
    shared by every slice (the receive-beam steering matrix).  Returns
    (B, n, M) weights.

    One stacked QR of the B stacked systems plus one batched triangular
    solve replace B calls to :func:`solve_constrained`.  Slices whose
    stacked R factor is rank deficient (early CPIs) fall back to ``lstsq``
    individually — the same condition, threshold, and fallback as the
    per-matrix kernel, applied per slice.

    Bit-identity note: with a multi-column right-hand side (every pipeline
    call — the steering matrix always carries ``M >= 2`` beams) the result
    matches :func:`solve_constrained` bit for bit, because both paths run
    the same ``geqrf``/``gemm``/back-substitution kernels per slice.  A
    single-column rhs may differ by a few ULP: BLAS dispatches ``gemv``
    instead of ``gemm`` for one column, and the dot-product reduction
    order changes.
    """
    r_data = np.asarray(r_data)
    constraints = np.asarray(constraints)
    steering_rhs = np.atleast_2d(np.asarray(steering_rhs))
    if r_data.ndim != 3 or constraints.ndim != 3:
        raise ConfigurationError(
            "stacked solve expects 3-D r_data and constraints, got "
            f"{r_data.shape} and {constraints.shape}"
        )
    batch, rows_data, n = r_data.shape
    if constraints.shape[0] != batch or constraints.shape[2] != n:
        raise ConfigurationError(
            f"constraints shape {constraints.shape} incompatible with "
            f"r_data {r_data.shape}"
        )
    if steering_rhs.shape[0] != constraints.shape[1]:
        raise ConfigurationError(
            "steering rhs rows must match constraint rows: "
            f"{steering_rhs.shape[0]} vs {constraints.shape[1]}"
        )
    num_beams = steering_rhs.shape[1]
    if batch == 0:
        return np.zeros((0, n, num_beams), dtype=complex)
    stacked = np.concatenate([r_data, constraints.astype(complex, copy=False)], axis=1)
    rhs = np.zeros((batch, stacked.shape[1], num_beams), dtype=complex)
    rhs[:, rows_data:, :] = steering_rhs.astype(complex)
    # One stacked QR shared across beams, as in the per-matrix kernel.
    q, r = np.linalg.qr(stacked, mode="reduced")
    qtb = np.matmul(q.conj().transpose(0, 2, 1), rhs)
    diag = np.abs(np.diagonal(r, axis1=1, axis2=2))
    floor = 1e-10 * np.maximum(diag.max(axis=1, initial=0.0), 1.0)
    degenerate = (diag.shape[1] < n) | np.any(diag < floor[:, None], axis=1)
    weights = np.empty((batch, n, num_beams), dtype=complex)
    healthy = ~degenerate
    if np.any(healthy):
        # LU of an upper-triangular matrix pivots nowhere, so the batched
        # solve reduces to the same back substitution as solve_triangular.
        weights[healthy] = np.linalg.solve(r[healthy], qtb[healthy])
    for idx in np.flatnonzero(degenerate):
        weights[idx], *_ = np.linalg.lstsq(stacked[idx], rhs[idx], rcond=None)
    if normalize:
        # Match the per-matrix kernel's summation order exactly.  Its norm
        # reduces over the *contiguous* axis of solve_triangular's
        # Fortran-ordered output (pairwise summation); lstsq returns
        # C-ordered weights whose axis-0 reduction is strided/sequential.
        # Reproducing each branch's order keeps the stacked path
        # bit-identical, not merely close.
        norms = np.linalg.norm(
            np.ascontiguousarray(weights.transpose(0, 2, 1)), axis=2
        )
        if np.any(degenerate):
            norms[degenerate] = np.linalg.norm(weights[degenerate], axis=1)
        norms[norms == 0.0] = 1.0
        weights = weights / norms[:, None, :]
    return weights


def quiescent_weights_stacked(steering: np.ndarray, phases: np.ndarray) -> np.ndarray:
    """Per-bin coherent staggered quiescent weights: (B,) phases -> (B, 2J, M).

    The batched form of ``quiescent_weights(steering, copies=2,
    phases=[1.0, p])`` over a vector of stagger phases — one broadcast
    multiply and one batched normalization instead of a per-bin loop.
    """
    steering = np.atleast_2d(np.asarray(steering, dtype=complex))
    phases = np.asarray(phases)
    if phases.ndim != 1:
        raise ConfigurationError(f"phases must be 1-D, got shape {phases.shape}")
    J, M = steering.shape
    weights = np.empty((phases.shape[0], 2 * J, M), dtype=complex)
    weights[:, :J, :] = steering
    weights[:, J:, :] = steering[None, :, :] * phases[:, None, None]
    norms = np.linalg.norm(weights, axis=1)
    norms[norms == 0.0] = 1.0
    return weights / norms[:, None, :]


def quiescent_weights(steering: np.ndarray, copies: int = 1, phases=None) -> np.ndarray:
    """Non-adaptive (steering-only) weights, used before any training exists.

    For the staggered (2J) case pass ``copies=2`` and the per-bin stagger
    phase for the second copy; the result is unit-norm per beam.
    """
    steering = np.atleast_2d(np.asarray(steering, dtype=complex))
    if copies == 1:
        blocks = [steering]
    else:
        if phases is None:
            phases = [1.0] * copies
        blocks = [steering * phases[c] for c in range(copies)]
    weights = np.vstack(blocks)
    norms = np.linalg.norm(weights, axis=0)
    norms[norms == 0.0] = 1.0
    return weights / norms
