"""Hard-bin weight computation (pipeline task 2: "hard weight").

Hard Doppler bins compete with mainbeam clutter, so both staggered Doppler
windows (2J channels) are adapted jointly, with *separate weights for six
consecutive range intervals* (Section 3).  Each range segment offers only
one sixth of the range extent for training, so the recursion "dealt with the
paucity of data by using past looks at the same azimuth, exponentially
forgotten, as independent, identically distributed estimates of the clutter"
— a recursive QR update with forgetting factor 0.6 (Appendix B).

The per-(segment, bin) recursion state is the 2J x 2J R factor; an update
appends ``hard_train_samples`` fresh rows via the block QR update of
:func:`repro.stap.lsq.qr_append_rows`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.radar.parameters import STAPParams
from repro.stap.doppler import stagger_phase
from repro.stap.easy_weights import select_range_samples
from repro.stap.lsq import qr_append_rows, solve_constrained, quiescent_weights


def extract_hard_training(staggered: np.ndarray, params: STAPParams) -> np.ndarray:
    """Training blocks for every (segment, hard bin) from one staggered CPI.

    Returns (num_segments, N_hard, hard_train_samples, 2J): per segment and
    hard bin, range samples drawn evenly across that segment, using *both*
    Doppler windows ("hard weight computation employs range samples from the
    entire staggered CPI", Section 5.2).

    As with the easy training, rows are **conjugated** snapshots so that the
    least-squares residual equals the ``w^H x`` beamformer output on the
    training clutter.
    """
    out = np.empty(
        (
            params.num_segments,
            params.num_hard_doppler,
            params.hard_train_samples,
            params.num_staggered_channels,
        ),
        dtype=staggered.dtype,
    )
    hard = staggered[params.hard_bins]  # (N_hard, 2J, K)
    for seg_idx, seg in enumerate(params.segment_slices):
        seg_len = seg.stop - seg.start
        count = min(params.hard_train_samples, seg_len)
        sel = seg.start + select_range_samples(seg_len, count)
        block = hard[:, :, sel]  # (N_hard, 2J, count)
        block = np.conj(np.transpose(block, (0, 2, 1)))  # (N_hard, count, 2J)
        if count < params.hard_train_samples:
            pad = np.zeros(
                (
                    params.num_hard_doppler,
                    params.hard_train_samples - count,
                    params.num_staggered_channels,
                ),
                dtype=staggered.dtype,
            )
            block = np.concatenate([block, pad], axis=1)
        out[seg_idx] = block
    return out


def update_r_block(state: np.ndarray, training: np.ndarray, forget: float) -> None:
    """Absorb training rows into a block of R factors, in place.

    ``state``: (S, B, 2J, 2J) per-(segment, bin) R factors;
    ``training``: (S, B, rows, 2J) conjugated training rows.  The shared
    recursion kernel of the sequential reference and the parallel hard
    weight task.
    """
    num_segments, num_bins = state.shape[:2]
    for seg in range(num_segments):
        for bin_idx in range(num_bins):
            state[seg, bin_idx] = qr_append_rows(
                state[seg, bin_idx], training[seg, bin_idx], forget=forget
            )


def compute_hard_weights(
    state: np.ndarray,
    steering: np.ndarray,
    phases: np.ndarray,
    beam_weight: float,
    freq_weight: float,
) -> np.ndarray:
    """Hard weights from R factors: (S, B, 2J, 2J) -> (S, B, 2J, M).

    ``phases``: per-bin stagger phase (length B).  The constraint block
    couples the two Doppler windows: for bin ``n`` with stagger phase
    ``p_n``, the J rows ``[bw*I | fw*conj(p_n)*I]`` with right-hand side
    ``w_s`` pull the solution toward the coherent staggered combiner
    ``[w_s; p_n w_s] / 2`` while the data R factor supplies clutter nulls.
    """
    num_segments, num_bins, n2, _ = state.shape
    J = n2 // 2
    M = steering.shape[1]
    identity = np.eye(J, dtype=complex)
    weights = np.empty((num_segments, num_bins, n2, M), dtype=complex)
    for seg in range(num_segments):
        for bin_idx in range(num_bins):
            r_data = state[seg, bin_idx]
            scale = float(np.mean(np.abs(np.diag(r_data))))
            if scale <= 0.0:
                scale = 1.0
            constraint = scale * np.hstack(
                [
                    beam_weight * identity,
                    freq_weight * np.conj(phases[bin_idx]) * identity,
                ]
            )
            weights[seg, bin_idx] = solve_constrained(r_data, constraint, steering)
    return weights


class HardWeightComputer:
    """Stateful hard-bin weight computation: recursive QR per segment/bin."""

    def __init__(self, params: STAPParams, steering: np.ndarray):
        """``steering``: (J, M) receive-beam steering matrix."""
        steering = np.asarray(steering, dtype=complex)
        if steering.shape != (params.num_channels, params.num_beams):
            raise ConfigurationError(
                f"steering shape {steering.shape} != "
                f"({params.num_channels}, {params.num_beams})"
            )
        self.params = params
        self.steering = steering
        # azimuth -> (num_segments, N_hard, 2J, 2J) R factors.
        self._r_state: Dict[int, np.ndarray] = {}
        #: Per-bin expected phase of the late Doppler window w.r.t. the
        #: early one; the frequency-constraint factor of Appendix B.
        self._phases = stagger_phase(params, params.hard_bins)

    # -- state ---------------------------------------------------------------
    def _state_for(self, azimuth: int) -> np.ndarray:
        state = self._r_state.get(azimuth)
        if state is None:
            n2 = self.params.num_staggered_channels
            state = np.zeros(
                (self.params.num_segments, self.params.num_hard_doppler, n2, n2),
                dtype=complex,
            )
            self._r_state[azimuth] = state
        return state

    def has_history(self, azimuth: int = 0) -> bool:
        """True once at least one update has been absorbed for ``azimuth``."""
        state = self._r_state.get(azimuth)
        return state is not None and bool(np.any(state != 0))

    def update(self, training: np.ndarray, azimuth: int = 0) -> None:
        """Absorb one CPI's training (output of extract_hard_training)."""
        params = self.params
        expected = (
            params.num_segments,
            params.num_hard_doppler,
            params.hard_train_samples,
            params.num_staggered_channels,
        )
        training = np.asarray(training)
        if training.shape != expected:
            raise ConfigurationError(
                f"hard training shape {training.shape} != {expected}"
            )
        state = self._state_for(azimuth)
        update_r_block(state, training, params.forgetting_factor)

    # -- weights -------------------------------------------------------------
    def compute_weights(self, azimuth: int = 0) -> np.ndarray:
        """Weights for the next CPI: (num_segments, N_hard, 2J, M).

        Before any training exists, returns the per-bin coherent staggered
        quiescent weights ``[w_s; p_n w_s] / sqrt(2)``.
        """
        params = self.params
        M = params.num_beams
        n2 = params.num_staggered_channels
        state = self._r_state.get(azimuth)
        if state is None or not np.any(state != 0):
            weights = np.empty(
                (params.num_segments, params.num_hard_doppler, n2, M), dtype=complex
            )
            for bin_idx, phase in enumerate(self._phases):
                quiescent = quiescent_weights(
                    self.steering, copies=2, phases=[1.0, phase]
                )
                weights[:, bin_idx] = quiescent[None, :, :]
            return weights
        return compute_hard_weights(
            state,
            self.steering,
            self._phases,
            params.beam_constraint_weight,
            params.freq_constraint_weight,
        )
