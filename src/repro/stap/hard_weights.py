"""Hard-bin weight computation (pipeline task 2: "hard weight").

Hard Doppler bins compete with mainbeam clutter, so both staggered Doppler
windows (2J channels) are adapted jointly, with *separate weights for six
consecutive range intervals* (Section 3).  Each range segment offers only
one sixth of the range extent for training, so the recursion "dealt with the
paucity of data by using past looks at the same azimuth, exponentially
forgotten, as independent, identically distributed estimates of the clutter"
— a recursive QR update with forgetting factor 0.6 (Appendix B).

The per-(segment, bin) recursion state is the 2J x 2J R factor; an update
appends ``hard_train_samples`` fresh rows via the block QR update of
:func:`repro.stap.lsq.qr_append_rows`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import kernel_counters
from repro.radar.parameters import STAPParams
from repro.stap.doppler import stagger_phase
from repro.stap.easy_weights import select_range_samples
from repro.stap.lsq import (
    qr_append_rows,
    qr_append_rows_stacked,
    quiescent_weights_stacked,
    solve_constrained,
    solve_constrained_stacked,
)


def extract_hard_training(staggered: np.ndarray, params: STAPParams) -> np.ndarray:
    """Training blocks for every (segment, hard bin) from one staggered CPI.

    Returns (num_segments, N_hard, hard_train_samples, 2J): per segment and
    hard bin, range samples drawn evenly across that segment, using *both*
    Doppler windows ("hard weight computation employs range samples from the
    entire staggered CPI", Section 5.2).

    As with the easy training, rows are **conjugated** snapshots so that the
    least-squares residual equals the ``w^H x`` beamformer output on the
    training clutter.
    """
    out = np.empty(
        (
            params.num_segments,
            params.num_hard_doppler,
            params.hard_train_samples,
            params.num_staggered_channels,
        ),
        dtype=staggered.dtype,
    )
    hard = staggered[params.hard_bins]  # (N_hard, 2J, K)
    for seg_idx, seg in enumerate(params.segment_slices):
        seg_len = seg.stop - seg.start
        count = min(params.hard_train_samples, seg_len)
        sel = seg.start + select_range_samples(seg_len, count)
        block = hard[:, :, sel]  # (N_hard, 2J, count)
        block = np.conj(np.transpose(block, (0, 2, 1)))  # (N_hard, count, 2J)
        if count < params.hard_train_samples:
            pad = np.zeros(
                (
                    params.num_hard_doppler,
                    params.hard_train_samples - count,
                    params.num_staggered_channels,
                ),
                dtype=staggered.dtype,
            )
            block = np.concatenate([block, pad], axis=1)
        out[seg_idx] = block
    return out


def update_r_units(state: np.ndarray, training: np.ndarray, forget: float) -> None:
    """Absorb training rows into a flat axis of R factors, in place.

    ``state``: (U, 2J, 2J) R factors, one per (segment, bin) unit;
    ``training``: (U, rows, 2J) conjugated training rows.  One stacked
    block-QR update replaces U per-unit recursions — the kernel shared by
    the grid wrapper :func:`update_r_block` and the parallel hard weight
    task, whose rank owns an arbitrary flat subset of units.
    """
    start = perf_counter() if kernel_counters.enabled else None
    state[...] = qr_append_rows_stacked(state, training, forget=forget)
    if start is not None:
        from repro.stap.flops import qr_flops

        # Table 1 charges the recursion's QR with the constraint rows too
        # (see repro.stap.flops.hard_weight_flops); mirror that accounting
        # here so update + solve sum to the paper's per-unit count.
        num_units, rows, n2 = training.shape
        flops = num_units * qr_flops(n2 + rows + n2 // 2, n2)
        kernel_counters.record("hard_weight", perf_counter() - start, flops)


def hard_constraint_blocks(
    state: np.ndarray,
    phases: np.ndarray,
    beam_weight: float,
    freq_weight: float,
) -> np.ndarray:
    """Phase-coupled constraint blocks for a flat axis of units.

    ``state``: (U, 2J, 2J) R factors; ``phases``: (U,) stagger phases.
    Returns (U, J, 2J) rows ``scale_u * [bw*I | fw*conj(p_u)*I]`` built by
    broadcast + diagonal index assignment — no per-unit ``hstack``.  The
    scale is the mean magnitude of each unit's R diagonal, clamped to 1
    when the recursion has absorbed nothing yet.
    """
    num_units, n2, _ = state.shape
    J = n2 // 2
    diags = np.abs(np.diagonal(state, axis1=1, axis2=2))
    scales = np.mean(diags, axis=1)
    scales[scales <= 0.0] = 1.0
    constraints = np.zeros((num_units, J, n2), dtype=complex)
    diag = np.arange(J)
    constraints[:, diag, diag] = (scales * beam_weight)[:, None]
    coupling = scales * (freq_weight * np.conj(np.asarray(phases)))
    constraints[:, diag, J + diag] = coupling[:, None]
    return constraints


def compute_hard_weights_units(
    state: np.ndarray,
    steering: np.ndarray,
    phases: np.ndarray,
    beam_weight: float,
    freq_weight: float,
) -> np.ndarray:
    """Hard weights for a flat axis of units: (U, 2J, 2J) -> (U, 2J, M).

    One stacked constrained solve over all units; bit identical to the
    per-unit loop (see :func:`compute_hard_weights_loop`).
    """
    start = perf_counter() if kernel_counters.enabled else None
    constraints = hard_constraint_blocks(state, phases, beam_weight, freq_weight)
    weights = solve_constrained_stacked(state, constraints, steering)
    if start is not None:
        # The back-substitution share of Table 1's per-unit count; the QR
        # share is credited to update_r_units (see comment there).
        num_units, n2 = state.shape[0], state.shape[1]
        flops = num_units * steering.shape[1] * 3.0 * n2 * n2
        kernel_counters.record("hard_weight", perf_counter() - start, flops)
    return weights


def update_r_block(state: np.ndarray, training: np.ndarray, forget: float) -> None:
    """Absorb training rows into a block of R factors, in place.

    ``state``: (S, B, 2J, 2J) per-(segment, bin) R factors;
    ``training``: (S, B, rows, 2J) conjugated training rows.  The shared
    recursion kernel of the sequential reference and the parallel hard
    weight task; the (S, B) grid is flattened into one stacked axis so the
    whole block updates in a single batched factorization.
    """
    num_segments, num_bins, n2, _ = state.shape
    flat = state.reshape(num_segments * num_bins, n2, n2)
    update_r_units(flat, training.reshape(num_segments * num_bins, -1, n2), forget)


def update_r_block_loop(
    state: np.ndarray, training: np.ndarray, forget: float
) -> None:
    """Per-unit loop reference for :func:`update_r_block` (ground truth)."""
    num_segments, num_bins = state.shape[:2]
    for seg in range(num_segments):
        for bin_idx in range(num_bins):
            state[seg, bin_idx] = qr_append_rows(
                state[seg, bin_idx], training[seg, bin_idx], forget=forget
            )


def compute_hard_weights(
    state: np.ndarray,
    steering: np.ndarray,
    phases: np.ndarray,
    beam_weight: float,
    freq_weight: float,
) -> np.ndarray:
    """Hard weights from R factors: (S, B, 2J, 2J) -> (S, B, 2J, M).

    ``phases``: per-bin stagger phase (length B).  The constraint block
    couples the two Doppler windows: for bin ``n`` with stagger phase
    ``p_n``, the J rows ``[bw*I | fw*conj(p_n)*I]`` with right-hand side
    ``w_s`` pull the solution toward the coherent staggered combiner
    ``[w_s; p_n w_s] / 2`` while the data R factor supplies clutter nulls.

    The (S, B) grid is flattened and solved in one stacked call — the
    phase vector is tiled across segments, mirroring the loop's reuse of
    ``phases[bin_idx]`` in every segment.
    """
    num_segments, num_bins, n2, _ = state.shape
    flat = state.reshape(num_segments * num_bins, n2, n2)
    flat_phases = np.tile(np.asarray(phases), num_segments)
    weights = compute_hard_weights_units(
        flat, steering, flat_phases, beam_weight, freq_weight
    )
    return weights.reshape(num_segments, num_bins, n2, steering.shape[1])


def compute_hard_weights_loop(
    state: np.ndarray,
    steering: np.ndarray,
    phases: np.ndarray,
    beam_weight: float,
    freq_weight: float,
) -> np.ndarray:
    """Per-unit loop reference for :func:`compute_hard_weights`.

    Retained as ground truth for the batched kernel's tests and for
    measuring the batching win; one constraint build + constrained solve
    per (segment, bin), exactly the pre-batching implementation.
    """
    num_segments, num_bins, n2, _ = state.shape
    J = n2 // 2
    M = steering.shape[1]
    identity = np.eye(J, dtype=complex)
    weights = np.empty((num_segments, num_bins, n2, M), dtype=complex)
    for seg in range(num_segments):
        for bin_idx in range(num_bins):
            r_data = state[seg, bin_idx]
            scale = float(np.mean(np.abs(np.diag(r_data))))
            if scale <= 0.0:
                scale = 1.0
            constraint = scale * np.hstack(
                [
                    beam_weight * identity,
                    freq_weight * np.conj(phases[bin_idx]) * identity,
                ]
            )
            weights[seg, bin_idx] = solve_constrained(r_data, constraint, steering)
    return weights


class HardWeightComputer:
    """Stateful hard-bin weight computation: recursive QR per segment/bin."""

    def __init__(self, params: STAPParams, steering: np.ndarray):
        """``steering``: (J, M) receive-beam steering matrix."""
        steering = np.asarray(steering, dtype=complex)
        if steering.shape != (params.num_channels, params.num_beams):
            raise ConfigurationError(
                f"steering shape {steering.shape} != "
                f"({params.num_channels}, {params.num_beams})"
            )
        self.params = params
        self.steering = steering
        # azimuth -> (num_segments, N_hard, 2J, 2J) R factors.
        self._r_state: Dict[int, np.ndarray] = {}
        #: Per-bin expected phase of the late Doppler window w.r.t. the
        #: early one; the frequency-constraint factor of Appendix B.
        self._phases = stagger_phase(params, params.hard_bins)

    # -- state ---------------------------------------------------------------
    def _state_for(self, azimuth: int) -> np.ndarray:
        state = self._r_state.get(azimuth)
        if state is None:
            n2 = self.params.num_staggered_channels
            state = np.zeros(
                (self.params.num_segments, self.params.num_hard_doppler, n2, n2),
                dtype=complex,
            )
            self._r_state[azimuth] = state
        return state

    def has_history(self, azimuth: int = 0) -> bool:
        """True once at least one update has been absorbed for ``azimuth``."""
        state = self._r_state.get(azimuth)
        return state is not None and bool(np.any(state != 0))

    def update(self, training: np.ndarray, azimuth: int = 0) -> None:
        """Absorb one CPI's training (output of extract_hard_training)."""
        params = self.params
        expected = (
            params.num_segments,
            params.num_hard_doppler,
            params.hard_train_samples,
            params.num_staggered_channels,
        )
        training = np.asarray(training)
        if training.shape != expected:
            raise ConfigurationError(
                f"hard training shape {training.shape} != {expected}"
            )
        state = self._state_for(azimuth)
        update_r_block(state, training, params.forgetting_factor)

    # -- weights -------------------------------------------------------------
    def compute_weights(self, azimuth: int = 0) -> np.ndarray:
        """Weights for the next CPI: (num_segments, N_hard, 2J, M).

        Before any training exists, returns the per-bin coherent staggered
        quiescent weights ``[w_s; p_n w_s] / sqrt(2)``.
        """
        params = self.params
        M = params.num_beams
        n2 = params.num_staggered_channels
        state = self._r_state.get(azimuth)
        if state is None or not np.any(state != 0):
            weights = np.empty(
                (params.num_segments, params.num_hard_doppler, n2, M), dtype=complex
            )
            weights[:] = quiescent_weights_stacked(self.steering, self._phases)[
                None, :, :, :
            ]
            return weights
        return compute_hard_weights(
            state,
            self.steering,
            self._phases,
            params.beam_constraint_weight,
            params.freq_constraint_weight,
        )
