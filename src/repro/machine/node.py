"""Compute-node model: per-kernel effective flop rates.

A Paragon GP node holds i860 XP processors with a 100 Mflop/s peak, but the
*achieved* rate depends heavily on the kernel: dense matrix products stream
well, while the CFAR sliding window and the small-matrix QR solves are
memory-bound.  Rather than model the i860 micro-architecture, we calibrate
one effective rate per kernel class from a single measurement each
(Table 7, case 1 of the paper) and then *predict* every other configuration.
See DESIGN.md §6 for the derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import MachineError


#: Kernel classes used by the STAP pipeline.  Anything not listed falls back
#: to ``default``.
KERNEL_CLASSES = (
    "doppler",
    "easy_weight",
    "hard_weight",
    "easy_beamform",
    "hard_beamform",
    "pulse_compression",
    "cfar",
    "default",
)


@dataclass(frozen=True)
class ComputeRateTable:
    """Effective flop rates (flop/s) per kernel class.

    Values are *effective* rates: wall time of a kernel executing ``f``
    flops on one node is ``f / rate``.  The defaults reproduce the AFRL
    Paragon calibration (DESIGN.md §6).
    """

    rates: Mapping[str, float] = field(
        default_factory=lambda: {
            "doppler": 28.5e6,
            "easy_weight": 9.5e6,
            "hard_weight": 21.2e6,
            "easy_beamform": 25.0e6,
            "hard_beamform": 38.0e6,
            "pulse_compression": 31.4e6,
            "cfar": 2.4e6,
            "default": 25.0e6,
        }
    )

    def __post_init__(self):
        for name, rate in self.rates.items():
            if rate <= 0:
                raise MachineError(f"rate for kernel {name!r} must be positive, got {rate}")
        if "default" not in self.rates:
            raise MachineError("rate table must define a 'default' kernel class")

    def rate(self, kernel: str) -> float:
        """Effective flop/s for ``kernel`` (falls back to 'default')."""
        return self.rates.get(kernel, self.rates["default"])

    def time_for(self, kernel: str, flops: float) -> float:
        """Wall time for ``flops`` floating-point operations of ``kernel``."""
        if flops < 0:
            raise MachineError(f"negative flop count: {flops}")
        return flops / self.rate(kernel)

    def scaled(self, factor: float) -> "ComputeRateTable":
        """A table with all rates multiplied by ``factor`` (faster machine)."""
        if factor <= 0:
            raise MachineError(f"scale factor must be positive, got {factor}")
        return ComputeRateTable({k: v * factor for k, v in self.rates.items()})


@dataclass(frozen=True)
class NodeModel:
    """One compute node.

    Attributes
    ----------
    rates:
        Per-kernel effective compute rates.
    processors_per_node:
        i860 count per node.  The AFRL machine's compute partition is used
        one-processor-per-node by message-passing codes (the paper's
        implementation); the ruggedized machine used all three as a small
        shared-memory multiprocessor, modeled as a speedup factor.
    memory_bytes:
        Per-node memory (64 MiB on the Paragon); used for feasibility checks.
    smp_efficiency:
        Parallel efficiency of using the extra on-node processors
        (1.0 means perfect scaling across ``processors_per_node``).
    """

    rates: ComputeRateTable = field(default_factory=ComputeRateTable)
    processors_per_node: int = 1
    memory_bytes: int = 64 * 1024 * 1024
    smp_efficiency: float = 0.85

    def __post_init__(self):
        if self.processors_per_node < 1:
            raise MachineError("processors_per_node must be >= 1")
        if self.memory_bytes <= 0:
            raise MachineError("memory_bytes must be positive")
        if not (0.0 < self.smp_efficiency <= 1.0):
            raise MachineError("smp_efficiency must be in (0, 1]")

    @property
    def smp_speedup(self) -> float:
        """Effective speedup from the on-node processors."""
        p = self.processors_per_node
        return 1.0 if p == 1 else 1.0 + (p - 1) * self.smp_efficiency

    def compute_time(self, kernel: str, flops: float) -> float:
        """Wall time to execute ``flops`` of ``kernel`` on this node."""
        return self.rates.time_for(kernel, flops) / self.smp_speedup

    def with_rates(self, rates: ComputeRateTable) -> "NodeModel":
        """Copy of this node model with a different rate table."""
        return replace(self, rates=rates)
