"""2-D mesh topology with dimension-ordered (XY) routing.

The Paragon interconnect is a 2-D mesh of bidirectional links with wormhole
routing; messages first travel along X to the destination column, then along
Y.  The mesh here provides node↔coordinate mapping, neighbour enumeration,
and route computation; link *occupancy* is handled by
:mod:`repro.machine.network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import MachineError


@dataclass(frozen=True)
class Link:
    """A directed link between two adjacent mesh nodes.

    ``src``/``dst`` are node ids; the pair is always one mesh hop apart.
    """

    src: int
    dst: int

    def reversed(self) -> "Link":
        return Link(self.dst, self.src)

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"


class Mesh2D:
    """A ``width`` x ``height`` mesh; node ids are row-major.

    Node ``i`` sits at ``(x, y) = (i % width, i // width)``.
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise MachineError(f"mesh dimensions must be >= 1, got {width}x{height}")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    # -- coordinates -----------------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """(x, y) coordinates of ``node``."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise MachineError(f"coordinates ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise MachineError(f"node {node} outside mesh of {self.num_nodes} nodes")

    # -- topology ---------------------------------------------------------------
    def neighbors(self, node: int) -> list[int]:
        """Mesh neighbours of ``node`` (2..4 of them)."""
        x, y = self.coords(node)
        out = []
        if x > 0:
            out.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            out.append(self.node_at(x + 1, y))
        if y > 0:
            out.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            out.append(self.node_at(x, y + 1))
        return out

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> list[Link]:
        """XY route from ``src`` to ``dst`` as a list of directed links.

        X dimension is resolved first, then Y (deadlock-free dimension
        order, as on the real machine).  An empty list means ``src == dst``.
        """
        self._check_node(src)
        self._check_node(dst)
        links: list[Link] = []
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        step = 1 if dx > x else -1
        while x != dx:
            nxt = self.node_at(x + step, y)
            links.append(Link(self.node_at(x, y), nxt))
            x += step
        step = 1 if dy > y else -1
        while y != dy:
            nxt = self.node_at(x, y + step)
            links.append(Link(self.node_at(x, y), nxt))
            y += step
        return links

    def all_links(self) -> Iterator[Link]:
        """All directed links in the mesh."""
        for node in range(self.num_nodes):
            for nb in self.neighbors(node):
                yield Link(node, nb)

    def link_label(self, link: Link) -> str:
        """Coordinate-form label, e.g. ``"(0,0)->(1,0)"`` (timeline tracks)."""
        sx, sy = self.coords(link.src)
        dx, dy = self.coords(link.dst)
        return f"({sx},{sy})->({dx},{dy})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mesh2D({self.width}x{self.height}, {self.num_nodes} nodes)"
