"""Machine model of a distributed-memory parallel computer.

This package models the hardware substrate the paper ran on — the Intel
Paragon XP/S at the Air Force Research Laboratory, Rome NY — at the level of
detail the paper's evaluation is sensitive to:

* a 2-D mesh interconnect with dimension-ordered (XY) routing
  (:mod:`repro.machine.mesh`),
* LogGP-style message costs (35.3 µs startup, 6.53 ns/byte) plus NIC
  injection/ejection serialization and optional per-link contention
  (:mod:`repro.machine.network`),
* compute nodes with per-kernel effective flop rates and a strided-copy
  (pack/unpack) cost model standing in for i860 cache behaviour
  (:mod:`repro.machine.node`),
* ready-made configurations for the 321-node AFRL machine and the
  25-node ruggedized in-flight machine (:mod:`repro.machine.paragon`).
"""

from repro.machine.cost_model import NetworkCostModel, PackingCostModel
from repro.machine.node import ComputeRateTable, NodeModel
from repro.machine.mesh import Mesh2D, Link
from repro.machine.network import Network, ContentionMode
from repro.machine.paragon import (
    Machine,
    SpeedRegion,
    afrl_paragon,
    ruggedized_paragon,
    PARAGON_NETWORK,
    PARAGON_RATES,
    PARAGON_PACKING,
)
from repro.machine.hetero import (
    MACHINE_SCENARIOS,
    fast_links,
    fat_nodes,
    gpu_nodes,
    legacy_front,
    machine_scenario,
    scenario_names,
)

__all__ = [
    "NetworkCostModel",
    "PackingCostModel",
    "ComputeRateTable",
    "NodeModel",
    "Mesh2D",
    "Link",
    "Network",
    "ContentionMode",
    "Machine",
    "SpeedRegion",
    "afrl_paragon",
    "ruggedized_paragon",
    "PARAGON_NETWORK",
    "PARAGON_RATES",
    "PARAGON_PACKING",
    "MACHINE_SCENARIOS",
    "machine_scenario",
    "scenario_names",
    "fat_nodes",
    "fast_links",
    "gpu_nodes",
    "legacy_front",
]
