"""Heterogeneous machine scenarios for the assignment auto-tuner.

The paper's closed-form assignment equations (1)-(3) assume every node is
identical.  The scenarios here deliberately break that assumption — in
the directions the bi-criteria pipeline-mapping literature studies — so
:mod:`repro.scheduling.tuner` can answer questions the closed forms
cannot:

``paragon``
    The homogeneous 321-node AFRL machine (the baseline; the tuner must
    reproduce Table 7 on it).
``fat_nodes``
    Every node carries three i860s used as a small shared-memory
    multiprocessor (the ruggedized machine's node on the big mesh).
``fast_links``
    A modern interconnect: message startup, per-byte, and per-hop costs
    all divided by 10, with compute unchanged — communication-bound
    assignments tilt toward compute-bound ones.
``gpu_nodes``
    The first 32 mesh nodes compute 8x faster (accelerator-class parts in
    the front racks).  Contiguous rank placement puts the Doppler task —
    the pipeline's front stage — on them first.
``legacy_front``
    The first 16 mesh nodes compute at a quarter rate (aged hardware at
    the front of the mesh).  The homogeneous equations underallocate
    whatever lands there, which is exactly the case the
    simulation-in-the-loop tuner is built to catch.

Each factory takes keyword knobs so tests and benchmarks can scale a
scenario down to tiny meshes; :data:`MACHINE_SCENARIOS` holds the
zero-argument paper-scale forms.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.machine.cost_model import NetworkCostModel
from repro.machine.node import NodeModel
from repro.machine.paragon import (
    PARAGON_NETWORK,
    Machine,
    SpeedRegion,
    afrl_paragon,
)


def fat_nodes(processors_per_node: int = 3, smp_efficiency: float = 0.85) -> Machine:
    """The AFRL mesh with every node a small shared-memory multiprocessor."""
    base = afrl_paragon()
    return dataclasses.replace(
        base,
        node=NodeModel(
            rates=base.node.rates,
            processors_per_node=processors_per_node,
            smp_efficiency=smp_efficiency,
        ),
        name=f"fat-node Paragon ({processors_per_node} i860s/node)",
    )


def fast_links(factor: float = 10.0) -> Machine:
    """The AFRL machine with an interconnect ``factor``x cheaper end to end."""
    if factor <= 0:
        raise ConfigurationError(f"link speedup factor must be positive, got {factor}")
    return dataclasses.replace(
        afrl_paragon(),
        network_cost=NetworkCostModel(
            startup_s=PARAGON_NETWORK.startup_s / factor,
            per_byte_s=PARAGON_NETWORK.per_byte_s / factor,
            per_hop_s=PARAGON_NETWORK.per_hop_s / factor,
        ),
        name=f"fast-link Paragon ({factor:g}x interconnect)",
    )


def gpu_nodes(count: int = 32, factor: float = 8.0) -> Machine:
    """The AFRL machine with ``count`` accelerator-class front nodes."""
    return dataclasses.replace(
        afrl_paragon(),
        speed_regions=(SpeedRegion(0, count, factor),),
        name=f"GPU-front Paragon ({count} nodes at {factor:g}x)",
    )


def legacy_front(count: int = 16, factor: float = 0.25) -> Machine:
    """The AFRL machine with ``count`` aged front nodes at ``factor`` rate."""
    return dataclasses.replace(
        afrl_paragon(),
        speed_regions=(SpeedRegion(0, count, factor),),
        name=f"legacy-front Paragon ({count} nodes at {factor:g}x)",
    )


#: Named scenario -> zero-argument factory, at paper scale.
MACHINE_SCENARIOS = {
    "paragon": afrl_paragon,
    "fat_nodes": fat_nodes,
    "fast_links": fast_links,
    "gpu_nodes": gpu_nodes,
    "legacy_front": legacy_front,
}


def scenario_names() -> list[str]:
    """All known scenario names, sorted."""
    return sorted(MACHINE_SCENARIOS)


def machine_scenario(name: str) -> Machine:
    """Build the named machine scenario."""
    try:
        factory = MACHINE_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine scenario {name!r}; known: "
            f"{', '.join(scenario_names())}"
        ) from None
    return factory()
