"""Network simulation: message transfers over the mesh with contention.

Three contention fidelities are offered (``ContentionMode``):

``NONE``
    Pure latency model — every transfer takes the analytic LogGP time.
``ENDPOINT`` (default)
    Each node owns an *injection* port and an *ejection* port (DES
    resources).  A message holds the source's injection port and the
    destination's ejection port for its serialization time.  This captures
    the effect the paper calls out in §7.2 — "contention at the sending and
    receiving nodes is reduced" as task node counts grow — at a cost of only
    a few DES events per message.
``LINKS``
    Additionally holds every link of the XY route for the serialization
    time (wormhole-style pipelining is approximated by holding all links
    simultaneously rather than store-and-forward).  Expensive but useful for
    small-mesh studies of route interference.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.des import Simulator, Resource
from repro.des.event import Event
from repro.errors import MachineError
from repro.machine.cost_model import NetworkCostModel
from repro.machine.mesh import Mesh2D, Link


class ContentionMode(enum.Enum):
    """How much sharing of the interconnect to simulate."""

    NONE = "none"
    ENDPOINT = "endpoint"
    LINKS = "links"


class Network:
    """Simulated interconnect bound to a :class:`Simulator` and a mesh."""

    def __init__(
        self,
        sim: Simulator,
        mesh: Mesh2D,
        cost_model: Optional[NetworkCostModel] = None,
        contention: ContentionMode | str = ContentionMode.ENDPOINT,
    ):
        self.sim = sim
        self.mesh = mesh
        self.cost = cost_model or NetworkCostModel()
        self.contention = ContentionMode(contention)
        self._inject: dict[int, Resource] = {}
        self._eject: dict[int, Resource] = {}
        self._links: dict[Link, Resource] = {}
        #: Counters for diagnostics / tests.
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- resource lookup (lazy: a 321-node mesh has ~2500 links) --------------
    def _injection_port(self, node: int) -> Resource:
        res = self._inject.get(node)
        if res is None:
            res = self._inject[node] = Resource(self.sim, 1, name=f"inject[{node}]")
        return res

    def _ejection_port(self, node: int) -> Resource:
        res = self._eject.get(node)
        if res is None:
            res = self._eject[node] = Resource(self.sim, 1, name=f"eject[{node}]")
        return res

    def _link(self, link: Link) -> Resource:
        res = self._links.get(link)
        if res is None:
            res = self._links[link] = Resource(self.sim, 1, name=f"link[{link.src}->{link.dst}]")
        return res

    # -- transfers ------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int) -> Event:
        """Start a message transfer; returns an event firing at delivery.

        ``src == dst`` models an on-node copy: no startup, just a contiguous
        copy pass at link bandwidth (generous — self-sends are rare).
        """
        if nbytes < 0:
            raise MachineError(f"negative message size: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        done = self.sim.event(name=f"xfer:{src}->{dst}:{nbytes}B")
        self.sim.process(self._transfer_proc(src, dst, nbytes, done), name=f"net:{src}->{dst}")
        return done

    def _transfer_proc(self, src: int, dst: int, nbytes: int, done: Event):
        if src == dst:
            yield self.sim.timeout(self.cost.per_byte_s * nbytes)
            done.succeed()
            return

        hops = self.mesh.hop_distance(src, dst)
        wire_time = self.cost.point_to_point(nbytes, hops)
        occupancy = self.cost.occupancy(nbytes)

        if self.contention is ContentionMode.NONE:
            yield self.sim.timeout(wire_time)
            done.succeed()
            return

        holds: list[Resource] = [self._injection_port(src), self._ejection_port(dst)]
        if self.contention is ContentionMode.LINKS:
            holds.extend(self._link(l) for l in self.mesh.route(src, dst))

        granted: list[Resource] = []
        try:
            # Acquire in a canonical order (by resource name) so that two
            # messages over overlapping routes cannot deadlock.
            for res in sorted(holds, key=lambda r: r.name):
                yield res.request()
                granted.append(res)
            # Header latency + serialization while holding the path.
            yield self.sim.timeout(
                self.cost.startup_s + self.cost.per_hop_s * hops + occupancy
            )
        finally:
            for res in reversed(granted):
                res.release()
        done.succeed()

    # -- diagnostics ------------------------------------------------------------
    def endpoint_wait_time(self, node: int) -> float:
        """Cumulative queueing time observed at a node's two ports."""
        total = 0.0
        if node in self._inject:
            total += self._inject[node].total_wait_time
        if node in self._eject:
            total += self._eject[node].total_wait_time
        return total
