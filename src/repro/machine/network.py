"""Network simulation: message transfers over the mesh with contention.

Three contention fidelities are offered (``ContentionMode``):

``NONE``
    Pure latency model — every transfer takes the analytic LogGP time.
``ENDPOINT`` (default)
    Each node owns an *injection* port and an *ejection* port (DES
    resources).  A message holds the source's injection port and the
    destination's ejection port for its serialization time.  This captures
    the effect the paper calls out in §7.2 — "contention at the sending and
    receiving nodes is reduced" as task node counts grow — at a cost of only
    a few DES events per message.
``LINKS``
    Additionally holds every link of the XY route for the serialization
    time (wormhole-style pipelining is approximated by holding all links
    simultaneously rather than store-and-forward).  Expensive but useful for
    small-mesh studies of route interference.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.des import Simulator, Resource
from repro.des.event import Event
from repro.errors import MachineError
from repro.machine.cost_model import NetworkCostModel
from repro.machine.mesh import Mesh2D, Link


class ContentionMode(enum.Enum):
    """How much sharing of the interconnect to simulate."""

    NONE = "none"
    ENDPOINT = "endpoint"
    LINKS = "links"


class Network:
    """Simulated interconnect bound to a :class:`Simulator` and a mesh."""

    #: Whether the matcher may use the backend's matched-transfer fast path
    #: (``transfer_matched``); only lowered networks override this.
    _matched_fast = False

    def __init__(
        self,
        sim: Simulator,
        mesh: Mesh2D,
        cost_model: Optional[NetworkCostModel] = None,
        contention: ContentionMode | str = ContentionMode.ENDPOINT,
    ):
        self.sim = sim
        self.mesh = mesh
        self.cost = cost_model or NetworkCostModel()
        self.contention = ContentionMode(contention)
        self._inject: dict[int, Resource] = {}
        self._eject: dict[int, Resource] = {}
        self._links: dict[Link, Resource] = {}
        # Per-pair route state ((src, dst) -> (holds, header latency)) and
        # per-size serialization times: both are pure functions of static
        # inputs, recomputed ~10^5 times per run without these caches.
        self._route_cache: dict[tuple[int, int], tuple[list, float]] = {}
        self._occupancy_cache: dict[int, float] = {}
        #: Counters for diagnostics / tests.
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`~repro.obs.TraceSink` receiving per-resource
        #: busy intervals and contention-wait stats.  When None (default)
        #: transfers take the uninstrumented fast path unchanged.
        self.obs = None

    # -- resource lookup (lazy: a 321-node mesh has ~2500 links) --------------
    def _injection_port(self, node: int) -> Resource:
        res = self._inject.get(node)
        if res is None:
            res = self._inject[node] = Resource(self.sim, 1, name=f"inject[{node}]")
        return res

    def _ejection_port(self, node: int) -> Resource:
        res = self._eject.get(node)
        if res is None:
            res = self._eject[node] = Resource(self.sim, 1, name=f"eject[{node}]")
        return res

    def _link(self, link: Link) -> Resource:
        res = self._links.get(link)
        if res is None:
            res = self._links[link] = Resource(self.sim, 1, name=f"link[{link.src}->{link.dst}]")
        return res

    # -- transfers ------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int) -> Event:
        """Start a message transfer; returns an event firing at delivery.

        ``src == dst`` models an on-node copy: no startup, just a contiguous
        copy pass at link bandwidth (generous — self-sends are rare).

        Transfers are driven by a callback chain rather than a DES process:
        a paper-scale run makes ~10^5 transfers, and the per-message
        generator machinery (process object, resume steps, completion
        event) used to dominate simulation wall time.  The chain schedules
        exactly the same events at the same priorities as the old process
        version, so virtual timestamps are bit-identical.
        """
        if nbytes < 0:
            raise MachineError(f"negative message size: {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        sim = self.sim
        # Constant labels: formatting per-transfer names costs real wall
        # time at ~10^5 transfers per run and names are diagnostic only.
        done = Event(sim, name="xfer")
        # Defer the first action by one zero-delay event, exactly as
        # spawning a process did: same-timestamp operations posted earlier
        # keep their place in the schedule.  A recycled timeout serves as
        # the deferral (same priority and sequence cost as a plain event).
        start = sim.pooled_timeout(0.0, name="net")
        start.callbacks.append(
            lambda _ev: self._begin_transfer(src, dst, nbytes, done)
        )
        return done

    def _begin_transfer(self, src: int, dst: int, nbytes: int, done: Event) -> None:
        if self.obs is not None:
            self._begin_transfer_obs(src, dst, nbytes, done)
            return
        sim = self.sim
        if src == dst:
            delay = sim.pooled_timeout(self.cost.per_byte_s * nbytes)
            delay.callbacks.append(lambda _ev: done.succeed())
            return

        occupancy = self._occupancy_cache.get(nbytes)
        if occupancy is None:
            occupancy = self._occupancy_cache[nbytes] = self.cost.occupancy(nbytes)

        if self.contention is ContentionMode.NONE:
            hops = self.mesh.hop_distance(src, dst)
            delay = sim.pooled_timeout(self.cost.point_to_point(nbytes, hops))
            delay.callbacks.append(lambda _ev: done.succeed())
            return

        route = self._route_cache.get((src, dst))
        if route is None:
            hops = self.mesh.hop_distance(src, dst)
            if self.contention is ContentionMode.ENDPOINT:
                # Canonical acquire order is by resource name; "eject[...]"
                # sorts before "inject[...]", so the pair needs no sort call.
                holds = [self._ejection_port(dst), self._injection_port(src)]
            else:
                holds = [self._injection_port(src), self._ejection_port(dst)]
                holds.extend(self._link(l) for l in self.mesh.route(src, dst))
                # Acquire in a canonical order (by resource name) so that two
                # messages over overlapping routes cannot deadlock.
                holds.sort(key=lambda r: r.name)
            header = self.cost.startup_s + self.cost.per_hop_s * hops
            route = self._route_cache[(src, dst)] = (holds, header)
        holds, header = route

        hold_time = header + occupancy
        index = 0

        def acquire_next(_ev) -> None:
            nonlocal index
            if index < len(holds):
                res = holds[index]
                index += 1
                res.request().callbacks.append(acquire_next)
                return
            # Header latency + serialization while holding the path.
            delay = sim.pooled_timeout(hold_time)
            delay.callbacks.append(finish)

        def finish(_ev) -> None:
            for res in reversed(holds):
                res.release()
            done.succeed()

        acquire_next(None)

    def _begin_transfer_obs(self, src: int, dst: int, nbytes: int, done: Event) -> None:
        """Observed twin of :meth:`_begin_transfer`.

        Schedules the *same* events in the same order at the same times —
        the only additions are local timestamp reads and sink appends, so
        virtual timestamps stay bit-identical with observability on.
        """
        sim = self.sim
        obs = self.obs
        if src == dst:
            delay = sim.pooled_timeout(self.cost.per_byte_s * nbytes)
            delay.callbacks.append(lambda _ev: done.succeed())
            return

        occupancy = self._occupancy_cache.get(nbytes)
        if occupancy is None:
            occupancy = self._occupancy_cache[nbytes] = self.cost.occupancy(nbytes)

        if self.contention is ContentionMode.NONE:
            hops = self.mesh.hop_distance(src, dst)
            delay = sim.pooled_timeout(self.cost.point_to_point(nbytes, hops))
            delay.callbacks.append(lambda _ev: done.succeed())
            return

        route = self._route_cache.get((src, dst))
        if route is None:
            hops = self.mesh.hop_distance(src, dst)
            if self.contention is ContentionMode.ENDPOINT:
                holds = [self._ejection_port(dst), self._injection_port(src)]
            else:
                holds = [self._injection_port(src), self._ejection_port(dst)]
                holds.extend(self._link(l) for l in self.mesh.route(src, dst))
                holds.sort(key=lambda r: r.name)
            header = self.cost.startup_s + self.cost.per_hop_s * hops
            route = self._route_cache[(src, dst)] = (holds, header)
        holds, header = route

        hold_time = header + occupancy
        index = 0
        waits = [0.0] * len(holds)
        requested_at = 0.0

        def acquire_next(_ev) -> None:
            nonlocal index, requested_at
            if index:
                # The previous resource was just granted.
                waits[index - 1] = sim.now - requested_at
            if index < len(holds):
                res = holds[index]
                index += 1
                requested_at = sim.now
                res.request().callbacks.append(acquire_next)
                return
            acquired_at = sim.now
            delay = sim.pooled_timeout(hold_time)

            def finish(_ev) -> None:
                released_at = sim.now
                for res in reversed(holds):
                    res.release()
                for res, wait in zip(holds, waits):
                    obs.record_link_hold(
                        res.name, acquired_at, released_at, nbytes, wait
                    )
                done.succeed()

            delay.callbacks.append(finish)

        acquire_next(None)

    # -- diagnostics ------------------------------------------------------------
    def endpoint_wait_time(self, node: int) -> float:
        """Cumulative queueing time observed at a node's two ports."""
        total = 0.0
        if node in self._inject:
            total += self._inject[node].total_wait_time
        if node in self._eject:
            total += self._eject[node].total_wait_time
        return total
