"""Cost-model parameter bundles for the network and for memory copies.

The numbers here come from two sources:

* the paper's own micro-measurements of the Paragon interconnect
  (Section 6): message startup 35.3 µs, point-to-point transfer
  6.53 ns/byte;
* calibration of pack/unpack (data *collection* and *reorganization*,
  Sections 5.1–5.3) against the send columns of Tables 2–6, which bundle
  the strided-copy cost into the visible send time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkCostModel:
    """LogGP-flavoured parameters of the interconnect.

    Attributes
    ----------
    startup_s:
        Fixed per-message software overhead (the paper: 35.3 µs).
    per_byte_s:
        Inverse link bandwidth for the payload (the paper: 6.53 ns/byte).
    per_hop_s:
        Additional latency per mesh hop (wormhole routing header latency;
        small on the Paragon — ~40 ns per hop).
    """

    startup_s: float = 35.3e-6
    per_byte_s: float = 6.53e-9
    per_hop_s: float = 40e-9

    def __post_init__(self):
        for field in ("startup_s", "per_byte_s", "per_hop_s"):
            if getattr(self, field) < 0:
                raise ConfigurationError(f"{field} must be non-negative")

    def point_to_point(self, nbytes: int, hops: int = 1) -> float:
        """Uncontended transfer time for one message."""
        if nbytes < 0:
            raise ConfigurationError(f"negative message size: {nbytes}")
        return self.startup_s + self.per_byte_s * nbytes + self.per_hop_s * max(hops, 0)

    def occupancy(self, nbytes: int) -> float:
        """Time a message occupies an injection/ejection port (serialization)."""
        return self.per_byte_s * max(nbytes, 0)


@dataclass(frozen=True)
class PackingCostModel:
    """Cost of data collection / reorganization around a message.

    The paper stresses that gathering non-contiguous subarrays into send
    buffers ("data collection") and transposing cubes ("data
    reorganization", Figure 8) can dominate communication because of i860
    cache misses.  We model a copy as::

        time = bytes * (contiguous_per_byte  if unit-stride
                        strided_per_byte     otherwise)

    Attributes
    ----------
    contiguous_per_byte_s:
        Cost of a unit-stride memcpy-like pass.
    strided_per_byte_s:
        Cost of a cache-hostile strided gather/scatter pass (calibrated
        ~8x the contiguous cost, matching the send columns of Table 2).
    """

    contiguous_per_byte_s: float = 8.0e-9
    strided_per_byte_s: float = 62.0e-9

    def __post_init__(self):
        if self.contiguous_per_byte_s < 0 or self.strided_per_byte_s < 0:
            raise ConfigurationError("packing costs must be non-negative")

    def copy_time(self, nbytes: int, strided: bool) -> float:
        """Time to copy ``nbytes`` once, strided or contiguous."""
        if nbytes < 0:
            raise ConfigurationError(f"negative copy size: {nbytes}")
        rate = self.strided_per_byte_s if strided else self.contiguous_per_byte_s
        return nbytes * rate
