"""Preconfigured machines: the two Paragons of the paper.

:func:`afrl_paragon`
    The 321-node Intel Paragon at AFRL Rome (Section 6) used for all the
    paper's scaling results.  The compute partition is a 2-D mesh; we place
    it on a 23x14 mesh (322 slots) since the paper gives node count, not
    exact shape.

:func:`ruggedized_paragon`
    The 25-node in-flight machine of the RTMCARM experiments (Section 2),
    whose nodes each run three i860s as a small shared-memory machine.
    This backs the round-robin baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.des import Simulator
from repro.errors import MachineError
from repro.machine.cost_model import NetworkCostModel, PackingCostModel
from repro.machine.mesh import Mesh2D
from repro.machine.network import Network, ContentionMode
from repro.machine.node import ComputeRateTable, NodeModel

#: The paper's interconnect micro-measurements (Section 6).
PARAGON_NETWORK = NetworkCostModel(startup_s=35.3e-6, per_byte_s=6.53e-9, per_hop_s=40e-9)

#: Per-kernel effective rates calibrated from Table 7 case 1 (DESIGN.md §6).
PARAGON_RATES = ComputeRateTable()

#: Strided-copy model calibrated against the send columns of Tables 2-6.
PARAGON_PACKING = PackingCostModel(contiguous_per_byte_s=8.0e-9, strided_per_byte_s=62.0e-9)


@dataclass(frozen=True)
class SpeedRegion:
    """A contiguous range of mesh node ids with a compute-rate multiplier.

    ``factor > 1`` models faster nodes (accelerator-class parts, newer
    CPUs); ``factor < 1`` models slower ones (aged or thermally throttled
    hardware).  The multiplier applies to *compute only* — pack/unpack and
    the interconnect remain per-node-uniform cost models.  Regions may
    overlap; overlapping factors multiply.
    """

    start: int
    stop: int
    factor: float

    def __post_init__(self):
        if self.start < 0 or self.stop <= self.start:
            raise MachineError(
                f"speed region must cover a non-empty node range, "
                f"got [{self.start}, {self.stop})"
            )
        if not self.factor > 0:
            raise MachineError(
                f"speed factor must be positive, got {self.factor}"
            )

    def covers(self, node: int) -> bool:
        return self.start <= node < self.stop


@dataclass
class Machine:
    """A parallel machine: mesh + node model + cost models.

    A :class:`Machine` is a *description*; binding it to a simulator via
    :meth:`build_network` produces the live, stateful network.

    ``speed_regions`` makes the machine heterogeneous: each region scales
    the compute rate of a contiguous block of mesh nodes.  An empty tuple
    (the default) is the homogeneous machine the paper evaluates.
    """

    mesh: Mesh2D
    node: NodeModel = field(default_factory=NodeModel)
    network_cost: NetworkCostModel = field(default_factory=lambda: PARAGON_NETWORK)
    packing_cost: PackingCostModel = field(default_factory=lambda: PARAGON_PACKING)
    name: str = "machine"
    speed_regions: tuple[SpeedRegion, ...] = ()

    @property
    def num_nodes(self) -> int:
        return self.mesh.num_nodes

    @property
    def is_heterogeneous(self) -> bool:
        """Whether any node runs at other than the calibrated rate."""
        return any(region.factor != 1.0 for region in self.speed_regions)

    def node_speed(self, node: int) -> float:
        """Compute-rate multiplier of mesh node ``node`` (1.0 = calibrated)."""
        factor = 1.0
        for region in self.speed_regions:
            if region.covers(node):
                factor *= region.factor
        return factor

    def min_speed(self, start: int, stop: int) -> float:
        """Slowest node's factor over the node range ``[start, stop)``.

        A task partitioned evenly over that range finishes a CPI when its
        slowest node does, so this is the factor the analytic model
        applies to the whole block.  ``node_speed`` is piecewise constant
        with breakpoints only at region edges, so probing the range start
        plus every in-range edge is exact.
        """
        if stop <= start:
            raise MachineError(f"empty node range [{start}, {stop})")
        if not self.speed_regions:
            return 1.0
        probes = {start}
        for region in self.speed_regions:
            for edge in (region.start, region.stop):
                if start < edge < stop:
                    probes.add(edge)
        return min(self.node_speed(node) for node in probes)

    def check_node_budget(self, nodes_needed: int) -> None:
        """Raise if an experiment asks for more nodes than the machine has."""
        if nodes_needed > self.num_nodes:
            raise MachineError(
                f"{self.name} has {self.num_nodes} nodes; {nodes_needed} requested"
            )

    def build_network(
        self,
        sim: Simulator,
        contention: ContentionMode | str = ContentionMode.ENDPOINT,
    ) -> Network:
        """Instantiate the live interconnect for a simulation run."""
        return Network(sim, self.mesh, self.network_cost, contention=contention)

    def compute_time(self, kernel: str, flops: float) -> float:
        """Per-node wall time for ``flops`` of ``kernel``."""
        return self.node.compute_time(kernel, flops)


def afrl_paragon(rates: Optional[ComputeRateTable] = None) -> Machine:
    """The 321-node AFRL Rome Paragon (23x14 mesh = 322 slots)."""
    return Machine(
        mesh=Mesh2D(23, 14),
        node=NodeModel(rates=rates or PARAGON_RATES, processors_per_node=1),
        network_cost=PARAGON_NETWORK,
        packing_cost=PARAGON_PACKING,
        name="AFRL Intel Paragon (321 nodes)",
    )


#: Per-processor kernel speedup of the in-flight shared-memory code over
#: the message-passing kernels: the RTMCARM implementation ran hand-tuned
#: i860 kernels on node-local data with no pack/redistribute passes.
#: Calibrated so one 3-processor node processes a CPI in the reported
#: 2.35 seconds (Section 2).
RUGGEDIZED_RATE_SCALE = 2.85


def ruggedized_paragon(rates: Optional[ComputeRateTable] = None) -> Machine:
    """The 25-node ruggedized in-flight Paragon (5x5 mesh, 3 i860s/node)."""
    return Machine(
        mesh=Mesh2D(5, 5),
        node=NodeModel(
            rates=rates or PARAGON_RATES.scaled(RUGGEDIZED_RATE_SCALE),
            processors_per_node=3,
            smp_efficiency=0.85,
        ),
        network_cost=PARAGON_NETWORK,
        packing_cost=PARAGON_PACKING,
        name="ruggedized Intel Paragon (25 nodes)",
    )
