"""The Section 2 baseline: RTMCARM round-robin processing.

The in-flight demonstration "used compute nodes of the machine only as
independent resources in a round robin fashion to run different instances
of STAP": each CPI is handed whole to the next free node (whose three i860
processors work on it as a small shared-memory machine).  "Using this
approach, the throughput may be improved [by adding nodes], but the latency
is limited by what can be achieved using one compute node."

The measured figures to compare against: up to 10 CPIs/second throughput
and 2.35 seconds latency per CPI on the 25-node ruggedized Paragon.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Optional

from repro.core.metrics import steady_state_slice
from repro.des import Simulator, Store
from repro.errors import ConfigurationError
from repro.machine import Machine, ruggedized_paragon
from repro.radar.parameters import STAPParams
from repro.stap import flops as flops_mod


@dataclass
class RoundRobinResult:
    """Measured behaviour of one round-robin run."""

    num_nodes: int
    num_cpis: int
    throughput: float
    latency: float
    per_cpi_seconds: float

    def summary(self) -> str:
        return (
            f"round-robin on {self.num_nodes} nodes: "
            f"{self.throughput:.2f} CPIs/s, latency {self.latency:.3f} s "
            f"(single-node processing time {self.per_cpi_seconds:.3f} s)"
        )


class RoundRobinSTAP:
    """Simulate round-robin whole-CPI dispatch over independent nodes."""

    def __init__(
        self,
        params: STAPParams,
        machine: Optional[Machine] = None,
        num_nodes: Optional[int] = None,
        input_rate_cpis_per_s: Optional[float] = None,
    ):
        """``input_rate_cpis_per_s``: sensor delivery rate (None = as fast
        as nodes can accept, measuring peak capability)."""
        self.params = params
        self.machine = machine or ruggedized_paragon()
        self.num_nodes = num_nodes or self.machine.num_nodes
        self.machine.check_node_budget(self.num_nodes)
        if self.num_nodes < 1:
            raise ConfigurationError("round robin needs at least one node")
        self.input_rate = input_rate_cpis_per_s

    def single_node_seconds(self) -> float:
        """Time for one node to process one whole CPI (all seven steps).

        Each step runs at its own effective rate; the node's on-chip
        multiprocessor speedup applies uniformly.  Includes the sensor
        transfer of the whole raw cube.
        """
        node = self.machine.node
        total = 0.0
        for task_name, fn in flops_mod.TASK_FLOPS.items():
            total += node.compute_time(task_name, fn(self.params))
        nbytes = self.params.cpi_cube_bytes
        cost = self.machine.network_cost
        total += cost.startup_s + cost.per_byte_s * nbytes
        total += self.machine.packing_cost.copy_time(nbytes, strided=False)
        return total

    def run(self, num_cpis: int = 25) -> RoundRobinResult:
        """Simulate dispatching ``num_cpis`` CPIs round-robin."""
        if num_cpis < 1:
            raise ConfigurationError(f"num_cpis must be >= 1, got {num_cpis}")
        per_cpi = self.single_node_seconds()
        sim = Simulator()
        queues = [Store(sim, name=f"node{n}") for n in range(self.num_nodes)]
        arrivals: dict[int, float] = {}
        completions: dict[int, float] = {}
        # Unpaced: the sensor delivers exactly at the machine's aggregate
        # capacity, measuring peak sustainable throughput.
        period = (
            1.0 / self.input_rate if self.input_rate else per_cpi / self.num_nodes
        )

        def source(sim):
            for cpi in range(num_cpis):
                arrivals[cpi] = sim.now
                queues[cpi % self.num_nodes].put(cpi)
                yield sim.timeout(period)

        sim.process(source(sim), name="sensor")
        for n, queue in enumerate(queues):
            count = len(range(n, num_cpis, self.num_nodes))
            queue_worker = self._bounded_worker(sim, queue, count, per_cpi, completions)
            sim.process(queue_worker, name=f"worker{n}")
        sim.run()

        lo, hi = steady_state_slice(num_cpis)
        done = sorted(completions[i] for i in range(lo, hi))
        if len(done) >= 2 and done[-1] > done[0]:
            throughput = (len(done) - 1) / (done[-1] - done[0])
        else:
            throughput = self.num_nodes / per_cpi  # capacity bound

        latency = mean(completions[i] - arrivals[i] for i in range(lo, hi))
        return RoundRobinResult(
            num_nodes=self.num_nodes,
            num_cpis=num_cpis,
            throughput=throughput,
            latency=latency,
            per_cpi_seconds=per_cpi,
        )

    @staticmethod
    def _bounded_worker(sim, queue, count, per_cpi, completions):
        def worker():
            for _ in range(count):
                cpi = yield queue.get()
                yield sim.timeout(per_cpi)
                completions[cpi] = sim.now

        return worker()
