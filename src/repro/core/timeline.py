"""ASCII timeline (Gantt) rendering of a pipeline run.

Turns the Figure 10 instrumentation (per-rank t0..t3 timestamps) into a
text chart showing how the seven tasks overlap in steady state — the
pipelining the whole design exists to create.  One row per task (rank 0's
view), one column per time bucket::

    doppler            rrCCCCCCCCssrrCCCCCCCCss...
    easy_weight        ....rrrCCCCCCC..rrCCCCCCC...

``r`` = receiving/waiting, ``C`` = computing, ``s`` = packing/sending,
``.`` = between iterations (should be rare in steady state).
"""

from __future__ import annotations

from repro.core.assignment import TASK_NAMES
from repro.core.metrics import TaskTiming
from repro.core.task import Collector
from repro.errors import ConfigurationError

#: Glyphs per phase.
RECV, COMP, SEND, IDLE = "r", "C", "s", "."


def _rank0_timings(collector: Collector, task: str) -> list[TaskTiming]:
    return sorted(
        (t for t in collector.timings.get(task, []) if t.rank == 0),
        key=lambda t: t.cpi_index,
    )


def render_timeline(
    collector: Collector,
    start_cpi: int,
    end_cpi: int,
    width: int = 100,
    tasks=TASK_NAMES,
) -> str:
    """Render CPIs ``[start_cpi, end_cpi)`` as an ASCII Gantt chart."""
    if end_cpi <= start_cpi:
        raise ConfigurationError("end_cpi must exceed start_cpi")
    if width < 10:
        raise ConfigurationError("width must be >= 10 columns")

    # Time window: from the earliest t0 to the latest t3 in the CPI range,
    # across the selected tasks.
    t_min, t_max = float("inf"), float("-inf")
    per_task: dict[str, list[TaskTiming]] = {}
    for task in tasks:
        rows = [
            t
            for t in _rank0_timings(collector, task)
            if start_cpi <= t.cpi_index < end_cpi
        ]
        if not rows:
            raise ConfigurationError(f"no rank-0 timings for task {task!r}")
        per_task[task] = rows
        t_min = min(t_min, rows[0].t0)
        t_max = max(t_max, rows[-1].t3)
    span = max(t_max - t_min, 1e-12)

    def column(time: float) -> int:
        return min(int((time - t_min) / span * width), width - 1)

    lines = [
        f"timeline: CPIs {start_cpi}..{end_cpi - 1}, "
        f"{span:.4f} s across {width} columns "
        f"(r=recv/wait, C=compute, s=send/pack)",
    ]
    name_width = max(len(t) for t in tasks) + 2
    for task in tasks:
        row = [IDLE] * width
        for t in per_task[task]:
            for lo, hi, glyph in (
                (t.t0, t.t1, RECV),
                (t.t1, t.t2, COMP),
                (t.t2, t.t3, SEND),
            ):
                for col in range(column(lo), column(hi) + 1):
                    row[col] = glyph
        lines.append(f"{task:<{name_width}}" + "".join(row))
    return "\n".join(lines)


def utilization(collector: Collector, task: str) -> dict[str, float]:
    """Fractions of a task's cycle spent in each phase (rank 0, all CPIs)."""
    rows = _rank0_timings(collector, task)
    if not rows:
        raise ConfigurationError(f"no rank-0 timings for task {task!r}")
    total = sum(t.total for t in rows)
    if total <= 0:
        return {"recv": 0.0, "comp": 0.0, "send": 0.0}
    return {
        "recv": sum(t.recv for t in rows) / total,
        "comp": sum(t.comp for t in rows) / total,
        "send": sum(t.send for t in rows) / total,
    }
