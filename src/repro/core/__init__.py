"""The paper's primary contribution: the parallel pipelined STAP system.

Seven data-parallel tasks — Doppler filtering, easy/hard weight
computation, easy/hard beamforming, pulse compression, CFAR — run
concurrently on disjoint processor sets, connected by all-to-all
personalized inter-task redistribution, with double-buffered asynchronous
communication and the temporal-dependency trick that keeps weight
computation off the latency critical path (Figure 4 / Section 5).

Layers:

* :mod:`repro.core.assignment` — processor assignments (the paper's
  case 1/2/3 and the Table 9/10 variants);
* :mod:`repro.core.partition` — block partitions of the K and Doppler axes;
* :mod:`repro.core.redistribution` — per-edge message plans (who sends
  which subcube to whom, and the pack/unpack stride class);
* :mod:`repro.core.task` + :mod:`repro.core.tasks` — the Figure 10
  double-buffered task loop and the seven task implementations, each
  runnable *functionally* (real NumPy data) or *modeled* (sizes + flops);
* :mod:`repro.core.pipeline` — wiring, execution, and result collection;
* :mod:`repro.core.metrics` — per-task timing and the paper's
  throughput/latency equations (1)-(3);
* :mod:`repro.core.roundrobin` — the Section 2 RTMCARM round-robin
  baseline.
"""

from repro.core.assignment import (
    Assignment,
    TASK_NAMES,
    CASE1,
    CASE2,
    CASE3,
    CASE2_PLUS_DOPPLER,
    CASE2_PLUS_DOPPLER_PC_CFAR,
)
from repro.core.partition import block_ranges, block_of, BlockPartition
from repro.core.metrics import TaskTiming, TaskMetrics, PipelineMetrics
from repro.core.pipeline import STAPPipeline, PipelineResult
from repro.core.replication import ReplicatedSTAPPipeline, ReplicationResult
from repro.core.roundrobin import RoundRobinSTAP, RoundRobinResult
from repro.core.verification import VerificationReport, verify_pipeline

__all__ = [
    "Assignment",
    "TASK_NAMES",
    "CASE1",
    "CASE2",
    "CASE3",
    "CASE2_PLUS_DOPPLER",
    "CASE2_PLUS_DOPPLER_PC_CFAR",
    "block_ranges",
    "block_of",
    "BlockPartition",
    "TaskTiming",
    "TaskMetrics",
    "PipelineMetrics",
    "STAPPipeline",
    "PipelineResult",
    "ReplicatedSTAPPipeline",
    "ReplicationResult",
    "RoundRobinSTAP",
    "RoundRobinResult",
    "VerificationReport",
    "verify_pipeline",
]
