"""Replicated pipelines — the paper's stated future work.

"In the future we plan to incorporate further optimizations including
multi-threading, **multiple pipelines** and multiple processors on each
compute node" (Section 8); related work [13] calls the technique
*replication of pipeline stages*.  A :class:`ReplicatedSTAPPipeline` runs
``R`` complete copies of the parallel pipeline on disjoint node sets inside
one simulation; the radar front-end deals CPIs to the replicas round-robin
(replica ``r`` gets global CPIs ``r, r+R, r+2R, ...``).

Expected behaviour, which the benchmarks verify: aggregate throughput
scales ~R x while the latency of each CPI stays at the single-pipeline
value — the complement of adding nodes *within* one pipeline, which
improves latency but with diminishing throughput efficiency.

In functional mode each replica trains its adaptive weights only on the
CPIs it processes (every R-th), exactly as a real replicated deployment
would; reports therefore differ slightly from a single sequential pass and
no bit-equality with the reference is claimed.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Optional

from repro.core.assignment import Assignment
from repro.core.metrics import PipelineMetrics, TaskMetrics, steady_state_slice
from repro.core.pipeline import STAPPipeline
from repro.core.task import Collector
from repro.des import Simulator
from repro.errors import ConfigurationError
from repro.machine import Machine, afrl_paragon
from repro.mpi import Communicator, World
from repro.radar.parameters import STAPParams


@dataclass
class ReplicationResult:
    """Aggregate behaviour of a replicated deployment."""

    replicas: int
    nodes_per_replica: int
    #: Aggregate CPIs/second across all replicas.
    aggregate_throughput: float
    #: Mean per-CPI latency (unchanged by replication, by design).
    latency: float
    #: Per-replica metrics, for inspection.
    per_replica: list[PipelineMetrics]

    @property
    def total_nodes(self) -> int:
        return self.replicas * self.nodes_per_replica

    def summary(self) -> str:
        return (
            f"{self.replicas} x {self.nodes_per_replica}-node pipelines: "
            f"{self.aggregate_throughput:.3f} CPIs/s aggregate, "
            f"latency {self.latency:.4f} s per CPI"
        )


class ReplicatedSTAPPipeline:
    """R independent pipeline replicas fed round-robin from one sensor."""

    def __init__(
        self,
        params: STAPParams,
        assignment: Assignment,
        replicas: int,
        machine: Optional[Machine] = None,
        num_cpis: int = 24,
        input_rate: Optional[float] = None,
        contention: str = "endpoint",
    ):
        """``num_cpis`` is the *global* CPI count (must divide by replicas);
        ``input_rate`` the global radar rate (None = self-paced probing)."""
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if num_cpis % replicas != 0:
            raise ConfigurationError(
                f"num_cpis ({num_cpis}) must be divisible by replicas ({replicas})"
            )
        self.params = params
        self.assignment = assignment
        self.replicas = replicas
        self.machine = machine or afrl_paragon()
        self.machine.check_node_budget(replicas * assignment.total_nodes)
        self.num_cpis = num_cpis
        self.input_rate = input_rate
        self.contention = contention

    def run(self) -> ReplicationResult:
        """Simulate all replicas concurrently; aggregate the measurements."""
        nodes = self.assignment.total_nodes
        sim = Simulator()
        world = World(
            sim,
            self.machine,
            num_ranks=self.replicas * nodes,
            contention=self.contention,
        )
        local_cpis = self.num_cpis // self.replicas
        collectors = []
        for replica in range(self.replicas):
            comm = Communicator(
                world, list(range(replica * nodes, (replica + 1) * nodes))
            )
            collector = Collector()
            collectors.append(collector)
            # Build one pipeline's tasks, bound to the replica's ranks.
            pipeline = STAPPipeline(
                self.params,
                self.assignment,
                machine=self.machine,
                mode="modeled",
                num_cpis=local_cpis,
                contention=self.contention,
            )
            tasks = pipeline._build_tasks(collector)
            for local_world_rank, task in tasks.items():
                if task.name == "doppler":
                    if self.input_rate is not None:
                        # Global rate -> each replica sees every R-th CPI.
                        task.input_period = self.replicas / self.input_rate
                        task.input_offset = replica / self.input_rate
                world.spawn(
                    replica * nodes + local_world_rank,
                    STAPPipeline._rank_program(task),
                    name=f"r{replica}:{task.name}[{task.local_rank}]",
                    comm=comm,
                )
        sim.run()

        per_replica = [
            self._aggregate_one(collector, local_cpis) for collector in collectors
        ]
        throughput, latency = self._merge(collectors, local_cpis)
        return ReplicationResult(
            replicas=self.replicas,
            nodes_per_replica=nodes,
            aggregate_throughput=throughput,
            latency=latency,
            per_replica=per_replica,
        )

    def run_measured(self) -> ReplicationResult:
        """Two-phase: probe aggregate throughput, re-run globally paced."""
        probe = self.run()
        paced = ReplicatedSTAPPipeline(
            self.params,
            self.assignment,
            self.replicas,
            machine=self.machine,
            num_cpis=self.num_cpis,
            input_rate=probe.aggregate_throughput,
            contention=self.contention,
        )
        result = paced.run()
        result.aggregate_throughput = probe.aggregate_throughput
        return result

    # -- measurement helpers ---------------------------------------------------
    def _aggregate_one(self, collector: Collector, local_cpis: int) -> PipelineMetrics:
        tasks = {}
        for task_name, timings in collector.timings.items():
            tasks[task_name] = TaskMetrics.aggregate(
                task_name,
                self.assignment.count_of(task_name),
                timings,
                local_cpis,
            )
        lo, hi = steady_state_slice(local_cpis)
        done = [collector.report_done[i] for i in range(lo, hi)]
        starts = [collector.input_start[i] for i in range(lo, hi)]
        throughput = (len(done) - 1) / (done[-1] - done[0]) if len(done) > 1 else float("nan")
        latency = mean(d - s for d, s in zip(done, starts))
        return PipelineMetrics(
            tasks=tasks, measured_throughput=throughput, measured_latency=latency
        )

    def _merge(self, collectors, local_cpis: int) -> tuple[float, float]:
        """Aggregate throughput from the merged (global-order) completions."""
        lo, hi = steady_state_slice(local_cpis)
        completions = sorted(
            collector.report_done[i]
            for collector in collectors
            for i in range(lo, hi)
        )
        if len(completions) > 1 and completions[-1] > completions[0]:
            throughput = (len(completions) - 1) / (completions[-1] - completions[0])
        else:
            throughput = float("nan")
        latency = mean(
            collector.report_done[i] - collector.input_start[i]
            for collector in collectors
            for i in range(lo, hi)
        )
        return throughput, latency
