"""Inter-task redistribution plans.

"In an integrated system, data redistribution is required to feed data from
one parallel task to another, because the way data is distributed in one
task may not be the most appropriate distribution for the next"
(Section 4.1.1).  A *plan* enumerates, for one edge of the task graph, every
point-to-point message: which source rank sends which subcube to which
destination rank, how many bytes that is, and whether the pack/unpack pass
is unit-stride or cache-hostile ("data collection ... involves data copying
from non-contiguous memory space", Section 5.2).

Three message families cover the pipeline's five edge types:

* :class:`CubeBlock` — K-axis redistribution (Doppler -> beamforming,
  Figure 8): every source rank sends its K-slice of every destination
  rank's Doppler bins; an all-to-all personalized exchange with full
  reorganization (bin-major from range-major).
* :class:`TrainingRows` — data-collected training samples (Doppler ->
  weight computation, Figure 6b): only the selected range cells travel.
* :class:`BinIntersection` — aligned bin-partition edges (weights -> BF,
  BF -> pulse compression, PC -> CFAR): both sides partition Doppler bins,
  so each pair exchanges the (often empty) intersection of their bin sets,
  with no reorganization ("no data collection or reorganization is
  needed", Sections 5.3-5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.partition import BlockPartition, block_ranges
from repro.errors import ConfigurationError
from repro.radar.parameters import STAPParams
from repro.stap.easy_weights import select_range_samples

# Tag codes: tag = cpi_index * TAG_STRIDE + code.
TAG_STRIDE = 16
TAG_CODES = {
    "dop_to_easy_weight": 0,
    "dop_to_hard_weight": 1,
    "dop_to_easy_bf": 2,
    "dop_to_hard_bf": 3,
    "easy_weight_to_bf": 4,
    "hard_weight_to_bf": 5,
    "easy_bf_to_pc": 6,
    "hard_bf_to_pc": 7,
    "pc_to_cfar": 8,
}


def validate_tag_space(stride: int = None, codes: dict = None) -> None:
    """Raise unless every edge code fits under the CPI tag stride.

    ``tag = cpi * TAG_STRIDE + code`` is only collision-free while
    ``TAG_STRIDE > max(code)``; this guard makes adding a tenth edge code
    without widening the stride an import-time error instead of a silent
    cross-CPI tag collision.
    """
    stride = TAG_STRIDE if stride is None else stride
    codes = TAG_CODES if codes is None else codes
    worst = max(codes.values())
    if stride <= worst:
        raise ConfigurationError(
            f"TAG_STRIDE ({stride}) must exceed the largest edge tag code "
            f"({worst}); CPI tags would collide across edges"
        )


validate_tag_space()


def edge_tag(edge_name: str, cpi_index: int) -> int:
    """The MPI tag for one edge at one pipeline iteration."""
    return cpi_index * TAG_STRIDE + TAG_CODES[edge_name]


#: Inverse of :data:`TAG_CODES`, for decoding observed message tags.
_EDGE_OF_CODE = {code: name for name, code in TAG_CODES.items()}


def edge_of_tag(tag: int) -> tuple:
    """Decode an MPI tag back to ``(edge_name, cpi_index)``.

    The observability layer uses this to label recorded messages with the
    pipeline edge they belong to; unknown codes (non-pipeline traffic)
    decode to ``(None, None)``.
    """
    if tag < 0:
        return None, None
    edge = _EDGE_OF_CODE.get(tag % TAG_STRIDE)
    if edge is None:
        return None, None
    return edge, tag // TAG_STRIDE


#: Shared empty result for ranks with no messages on an edge.
_NO_MESSAGES: tuple = ()


# ---------------------------------------------------------------------------
# message descriptors
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CubeBlock:
    """One Doppler->BF message: dest's bins x channels x source's K-slice."""

    src: int
    dst: int
    k_start: int
    k_stop: int
    nbytes: int


@dataclass(frozen=True)
class SegmentRows:
    """Training rows of one range segment carried by one message."""

    segment: int
    #: Row indices within the destination's training buffer.
    row_positions: np.ndarray
    #: Absolute range cells at the source supplying those rows.
    k_indices: np.ndarray
    #: Absolute Doppler bins the destination trains with these rows.  For
    #: the easy edge this is simply the destination's bin block; for the
    #: hard edge it is the per-segment bin set implied by the (segment,
    #: bin) unit partition.
    bin_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))


@dataclass(frozen=True)
class TrainingRows:
    """One Doppler->weight message: collected training samples."""

    src: int
    dst: int
    segments: tuple[SegmentRows, ...]
    nbytes: int

    @property
    def total_rows(self) -> int:
        return sum(len(s.row_positions) for s in self.segments)


@dataclass(frozen=True)
class UnitIntersection:
    """One hard-weight -> hard-BF message: per-(segment, bin) weight rows.

    The hard weight task partitions the 6 x N_hard (segment, Doppler bin)
    *units* — that is how the paper runs 112 nodes on 56 hard bins — while
    hard beamforming partitions bins; this message carries the units whose
    bin falls in the destination's block.
    """

    src: int
    dst: int
    #: Positions of the carried units within the source's local unit array.
    src_pos: np.ndarray
    #: Range segment of each carried unit.
    segments: np.ndarray
    #: Position of each unit's bin within the destination's local bin axis.
    dst_bin_pos: np.ndarray
    nbytes: int


@dataclass(frozen=True)
class BinIntersection:
    """One aligned-bins message: rows at the intersection of bin sets."""

    src: int
    dst: int
    #: Global bin ids carried (sorted).
    ids: np.ndarray
    #: Positions of ``ids`` within the source's local bin axis.
    src_pos: np.ndarray
    #: Positions of ``ids`` within the destination's local bin axis.
    dst_pos: np.ndarray
    nbytes: int


@dataclass
class EdgePlan:
    """All messages of one task-graph edge, plus per-rank lookup."""

    name: str
    src_task: str
    dst_task: str
    src_size: int
    dst_size: int
    messages: list
    #: Whether the sender's data-collection/reorganization pass is strided.
    pack_strided: bool
    #: Whether the receiver's assembly pass is strided.
    unpack_strided: bool
    _by_src: dict = field(default_factory=dict, repr=False)
    _by_dst: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        for message in self.messages:
            self._by_src.setdefault(message.src, []).append(message)
            self._by_dst.setdefault(message.dst, []).append(message)
        # Sort once at construction: sends_of/recvs_of run per rank per CPI
        # on the simulation hot path and used to re-sort on every call.
        for sends in self._by_src.values():
            sends.sort(key=lambda m: m.dst)
        for recvs in self._by_dst.values():
            recvs.sort(key=lambda m: m.src)

    def sends_of(self, src: int) -> Sequence:
        """Messages rank ``src`` of the source task must send, dst order.

        Returns a shared, presorted sequence — callers must not mutate it.
        """
        return self._by_src.get(src, _NO_MESSAGES)

    def recvs_of(self, dst: int) -> Sequence:
        """Messages rank ``dst`` of the destination task will receive.

        Returns a shared, presorted sequence — callers must not mutate it.
        """
        return self._by_dst.get(dst, _NO_MESSAGES)

    def send_bytes_of(self, src: int) -> int:
        """Total bytes rank ``src`` sends on this edge per CPI."""
        return sum(m.nbytes for m in self.sends_of(src))

    def recv_bytes_of(self, dst: int) -> int:
        """Total bytes rank ``dst`` receives on this edge per CPI."""
        return sum(m.nbytes for m in self.recvs_of(dst))

    @property
    def total_bytes(self) -> int:
        """Bytes crossing this edge per CPI."""
        return sum(m.nbytes for m in self.messages)


# ---------------------------------------------------------------------------
# selection helpers (shared with the numerics so training rows agree)
# ---------------------------------------------------------------------------
def easy_training_cells(params: STAPParams) -> np.ndarray:
    """Absolute range cells selected for easy training (one CPI's worth)."""
    return select_range_samples(params.num_ranges, params.easy_train_per_cpi)


def hard_training_cells(params: STAPParams) -> list[np.ndarray]:
    """Per-segment absolute range cells selected for hard training."""
    cells = []
    for seg in params.segment_slices:
        seg_len = seg.stop - seg.start
        count = min(params.hard_train_samples, seg_len)
        cells.append(seg.start + select_range_samples(seg_len, count))
    return cells


# ---------------------------------------------------------------------------
# plan builders
# ---------------------------------------------------------------------------
def plan_dop_to_easy_weight(
    params: STAPParams,
    k_partition: BlockPartition,
    bin_partition: BlockPartition,
    collect: bool = True,
) -> EdgePlan:
    """Doppler -> easy weight: collected training rows (Figure 6b).

    ``collect=False`` ablates the data-collection optimization: the wire
    size becomes the sender's whole K-slice (first Doppler window) per
    destination — the redundant-data cost the paper's design avoids.  The
    functional payloads are unaffected (the extra cells are never used);
    the ablation changes modeled bytes and makes the pack pass contiguous
    (a bulk dump needs no gather).
    """
    item = params.complex_itemsize
    J = params.num_channels
    sel = easy_training_cells(params)
    messages = []
    for src in range(k_partition.parts):
        k_lo, k_hi = k_partition.bounds(src)
        mask = (sel >= k_lo) & (sel < k_hi)
        rows = np.nonzero(mask)[0]
        if rows.size == 0 and collect:
            continue
        k_idx = sel[mask]
        for dst in range(bin_partition.parts):
            bins = bin_partition.ids_of(dst)
            if collect:
                nbytes = bins.size * rows.size * J * item
            else:
                nbytes = bins.size * (k_hi - k_lo) * J * item
            messages.append(
                TrainingRows(
                    src=src,
                    dst=dst,
                    segments=(SegmentRows(0, rows, k_idx, bins),),
                    nbytes=nbytes,
                )
            )
    return EdgePlan(
        name="dop_to_easy_weight",
        src_task="doppler",
        dst_task="easy_weight",
        src_size=k_partition.parts,
        dst_size=bin_partition.parts,
        messages=messages,
        pack_strided=collect,  # gathering scattered cells vs bulk dump
        unpack_strided=not collect,  # receiver must sift if not collected
    )


def plan_dop_to_hard_weight(
    params: STAPParams,
    k_partition: BlockPartition,
    unit_partition,
    collect: bool = True,
) -> EdgePlan:
    """Doppler -> hard weight: per-segment collected training rows.

    The hard weight task partitions (segment, bin) units, so each
    destination only needs the training rows of the segments it actually
    owns units for, restricted to those units' bins.  ``collect=False``
    ablates data collection (see :func:`plan_dop_to_easy_weight`): the
    wire carries the sender's whole K-slice overlap with each owned
    segment, both Doppler windows.
    """
    item = params.complex_itemsize
    n2 = params.num_staggered_channels
    per_segment = hard_training_cells(params)
    # Per destination: segment -> bins it trains there.
    dst_segment_bins = [
        unit_partition.segment_bins_of(dst) for dst in range(unit_partition.parts)
    ]
    messages = []
    for src in range(k_partition.parts):
        k_lo, k_hi = k_partition.bounds(src)
        src_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for seg_idx, sel in enumerate(per_segment):
            mask = (sel >= k_lo) & (sel < k_hi)
            rows = np.nonzero(mask)[0]
            if rows.size:
                src_rows[seg_idx] = (rows, sel[mask])
        if not src_rows:
            continue
        for dst in range(unit_partition.parts):
            segments = []
            nbytes = 0
            for seg_idx, bins in dst_segment_bins[dst].items():
                if seg_idx not in src_rows:
                    continue
                rows, k_idx = src_rows[seg_idx]
                segments.append(SegmentRows(seg_idx, rows, k_idx, bins))
                if collect:
                    nbytes += bins.size * rows.size * n2 * item
                else:
                    seg = params.segment_slices[seg_idx]
                    overlap = min(k_hi, seg.stop) - max(k_lo, seg.start)
                    nbytes += bins.size * max(overlap, 0) * n2 * item
            if segments:
                messages.append(
                    TrainingRows(
                        src=src, dst=dst, segments=tuple(segments), nbytes=nbytes
                    )
                )
    return EdgePlan(
        name="dop_to_hard_weight",
        src_task="doppler",
        dst_task="hard_weight",
        src_size=k_partition.parts,
        dst_size=unit_partition.parts,
        messages=messages,
        pack_strided=collect,
        unpack_strided=not collect,
    )


def plan_hard_weight_to_bf(
    params: STAPParams, unit_partition, bf_partition: BlockPartition
) -> EdgePlan:
    """Hard weight -> hard BF: weight vectors per (segment, bin) unit."""
    item = params.complex_itemsize
    bytes_per_unit = params.num_staggered_channels * params.num_beams * item
    messages = []
    for src in range(unit_partition.parts):
        units = unit_partition.units_of(src)
        bins = unit_partition.bins_of_units(units)
        _bin_pos, segs = unit_partition.decompose(units)
        for dst in range(bf_partition.parts):
            dst_bins = bf_partition.ids_of(dst)
            mask = np.isin(bins, dst_bins)
            if not mask.any():
                continue
            carried = np.nonzero(mask)[0]
            messages.append(
                UnitIntersection(
                    src=src,
                    dst=dst,
                    src_pos=carried,
                    segments=segs[carried],
                    dst_bin_pos=bf_partition.local_positions(dst, bins[carried]),
                    nbytes=int(carried.size) * bytes_per_unit,
                )
            )
    return EdgePlan(
        name="hard_weight_to_bf",
        src_task="hard_weight",
        dst_task="hard_beamform",
        src_size=unit_partition.parts,
        dst_size=bf_partition.parts,
        messages=messages,
        pack_strided=False,
        unpack_strided=False,
    )


def plan_dop_to_bf(
    params: STAPParams,
    k_partition: BlockPartition,
    bin_partition: BlockPartition,
    hard: bool,
) -> EdgePlan:
    """Doppler -> beamforming: the full K-axis redistribution (Figure 8).

    Easy BF receives only the first Doppler window (J channels); hard BF
    receives both (2J).
    """
    item = params.complex_itemsize
    channels = params.num_staggered_channels if hard else params.num_channels
    messages = []
    for src in range(k_partition.parts):
        k_lo, k_hi = k_partition.bounds(src)
        for dst in range(bin_partition.parts):
            nbins = bin_partition.size_of(dst)
            nbytes = nbins * channels * (k_hi - k_lo) * item
            messages.append(
                CubeBlock(src=src, dst=dst, k_start=k_lo, k_stop=k_hi, nbytes=nbytes)
            )
    return EdgePlan(
        name="dop_to_hard_bf" if hard else "dop_to_easy_bf",
        src_task="doppler",
        dst_task="hard_beamform" if hard else "easy_beamform",
        src_size=k_partition.parts,
        dst_size=bin_partition.parts,
        messages=messages,
        pack_strided=True,  # bin-major reorganization of range-major data
        unpack_strided=True,  # scattered K-slices into the full-K buffer
    )


def plan_bins_edge(
    name: str,
    src_task: str,
    dst_task: str,
    src_partition: BlockPartition,
    dst_partition: BlockPartition,
    bytes_per_bin: int,
) -> EdgePlan:
    """Generic aligned-bins edge: exchange bin-set intersections."""
    messages = []
    for src in range(src_partition.parts):
        src_ids = src_partition.ids_of(src)
        for dst in range(dst_partition.parts):
            ids = dst_partition.intersect(dst, src_ids)
            if ids.size == 0:
                continue
            messages.append(
                BinIntersection(
                    src=src,
                    dst=dst,
                    ids=ids,
                    src_pos=src_partition.local_positions(src, ids),
                    dst_pos=dst_partition.local_positions(dst, ids),
                    nbytes=int(ids.size) * bytes_per_bin,
                )
            )
    return EdgePlan(
        name=name,
        src_task=src_task,
        dst_task=dst_task,
        src_size=src_partition.parts,
        dst_size=dst_partition.parts,
        messages=messages,
        pack_strided=False,  # same partitioning strategy: contiguous blocks
        unpack_strided=False,
    )
