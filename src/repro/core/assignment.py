"""Processor assignments: how many nodes each task gets.

The seven tasks in pipeline order, with the paper's names::

    0 doppler            Doppler filter processing
    1 easy_weight        easy weight computation
    2 hard_weight        hard weight computation
    3 easy_beamform      easy beamforming (easy BF)
    4 hard_beamform      hard beamforming (hard BF)
    5 pulse_compression  pulse compression
    6 cfar               CFAR processing

The module ships the paper's evaluated assignments: Table 7's three cases
(236 / 118 / 59 nodes) and the Table 9 / Table 10 what-if variants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import AssignmentError
from repro.radar.parameters import STAPParams

#: Canonical task order (indices match the paper's task numbering).
TASK_NAMES = (
    "doppler",
    "easy_weight",
    "hard_weight",
    "easy_beamform",
    "hard_beamform",
    "pulse_compression",
    "cfar",
)


@dataclass(frozen=True)
class Assignment:
    """Nodes per task.  Field names mirror :data:`TASK_NAMES`."""

    doppler: int
    easy_weight: int
    hard_weight: int
    easy_beamform: int
    hard_beamform: int
    pulse_compression: int
    cfar: int
    name: str = ""

    def __post_init__(self):
        for task in TASK_NAMES:
            count = getattr(self, task)
            if not isinstance(count, int) or count < 1:
                raise AssignmentError(
                    f"assignment {self.name or '?'}: task {task} needs a "
                    f"positive node count, got {count!r}"
                )

    # -- views ------------------------------------------------------------------
    def counts(self) -> tuple[int, ...]:
        """Node counts in task order."""
        return tuple(getattr(self, task) for task in TASK_NAMES)

    def count_of(self, task: str) -> int:
        """Node count of a task by name."""
        if task not in TASK_NAMES:
            raise AssignmentError(f"unknown task {task!r}")
        return getattr(self, task)

    @property
    def total_nodes(self) -> int:
        """Total nodes used by the pipeline."""
        return sum(self.counts())

    def rank_offsets(self) -> dict[str, int]:
        """First world rank of each task (tasks occupy contiguous ranks).

        The mapping is computed once per assignment and shared between
        calls (rank translation sits on the simulation hot path) — treat
        the returned dict as read-only.
        """
        offsets = self.__dict__.get("_rank_offsets")
        if offsets is None:
            offsets = {}
            cursor = 0
            for task in TASK_NAMES:
                offsets[task] = cursor
                cursor += getattr(self, task)
            object.__setattr__(self, "_rank_offsets", offsets)
        return offsets

    def world_ranks(self, task: str) -> range:
        """World ranks belonging to ``task``."""
        start = self.rank_offsets()[task]
        return range(start, start + self.count_of(task))

    def task_of_rank(self, world_rank: int) -> str:
        """Task owning a world rank."""
        cursor = 0
        for task in TASK_NAMES:
            cursor += getattr(self, task)
            if world_rank < cursor:
                return task
        raise AssignmentError(f"world rank {world_rank} beyond {self.total_nodes} nodes")

    # -- feasibility ---------------------------------------------------------------
    def validate_for(self, params: STAPParams) -> None:
        """Raise if any task has more nodes than independent work units.

        Partitioned axes: doppler partitions K range cells; the weight and
        beamforming tasks partition Doppler bins — except hard weight,
        which partitions the ``6 * N_hard`` independent (segment, bin)
        units; pulse compression and CFAR partition all N bins.
        """
        limits = {
            "doppler": params.num_ranges,
            "easy_weight": params.num_easy_doppler,
            "hard_weight": params.num_hard_doppler * params.num_segments,
            "easy_beamform": params.num_easy_doppler,
            "hard_beamform": params.num_hard_doppler,
            "pulse_compression": params.num_doppler,
            "cfar": params.num_doppler,
        }
        for task, limit in limits.items():
            if self.count_of(task) > limit:
                raise AssignmentError(
                    f"task {task} assigned {self.count_of(task)} nodes but has "
                    f"only {limit} independent work units"
                )

    def with_counts(self, name: str = "", **updates: int) -> "Assignment":
        """Copy with some task counts changed (Table 9/10-style what-ifs)."""
        return replace(self, name=name or self.name, **updates)


#: Table 7, case 1: 236 nodes.
CASE1 = Assignment(32, 16, 112, 16, 28, 16, 16, name="case1 (236 nodes)")
#: Table 7, case 2: 118 nodes.
CASE2 = Assignment(16, 8, 56, 8, 14, 8, 8, name="case2 (118 nodes)")
#: Table 7, case 3: 59 nodes.
CASE3 = Assignment(8, 4, 28, 4, 7, 4, 4, name="case3 (59 nodes)")
#: Table 9: case 2 plus 4 Doppler nodes (122 nodes).
CASE2_PLUS_DOPPLER = CASE2.with_counts(name="case2 +4 doppler (122 nodes)", doppler=20)
#: Table 10: Table 9 plus 8+8 nodes on pulse compression / CFAR (138 nodes).
CASE2_PLUS_DOPPLER_PC_CFAR = CASE2_PLUS_DOPPLER.with_counts(
    name="case2 +4 doppler +16 pc/cfar (138 nodes)", pulse_compression=16, cfar=16
)
