"""Task 5: pulse compression.

Each of the P5 processors owns a block of *all* Doppler bins (easy and hard
interleaved in FFT-bin order, Figure 9).  Because beamforming also
partitions along bins, the incoming edge needs no reorganization — each
easy/hard BF rank ships the (possibly empty) intersection of its bins with
this rank's block.  Per (bin, beam) row: K-point FFT, point-wise multiply
with the replica response, inverse FFT, magnitude-square to the real power
domain.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import MODELED, PipelineTask
from repro.stap.flops import pulse_compression_flops
from repro.stap.pulse_compression import pulse_compress_block, replica_response


class PulseCompressionTask(PipelineTask):
    name = "pulse_compression"
    kernel = "pulse_compression"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bins = self.layout.pc_bins.ids_of(self.local_rank)
        # Replica spectrum from the shared plan (built exactly once per
        # run); recomputed locally only when constructed without one.
        if not self.functional:
            self._replica = None
            self._beams_buf = None
        else:
            if self.plan is not None:
                self._replica = self.plan.replica_freq
            else:
                self._replica = replica_response(self.params)
            # Input assembly buffer, reused across CPIs: the incoming
            # easy/hard messages tile the bin axis identically every
            # iteration, so no stale row survives a CPI.
            self._beams_buf = np.zeros(
                (len(self.bins), self.params.num_beams, self.params.num_ranges),
                dtype=complex,
            )
        self._easy_msgs = {
            m.src: m
            for m in self.layout.plan("easy_bf_to_pc").recvs_of(self.local_rank)
        }
        self._hard_msgs = {
            m.src: m
            for m in self.layout.plan("hard_bf_to_pc").recvs_of(self.local_rank)
        }

    # -- framework hooks ----------------------------------------------------------
    def local_flops(self, cpi: int) -> float:
        share = len(self.bins) / self.params.num_doppler
        return pulse_compression_flops(self.params) * share

    # -- work --------------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        plan = self.layout.plan("pc_to_cfar")
        if not self.functional:
            messages = [(m, MODELED) for m in plan.sends_of(self.local_rank)]
            return [("pc_to_cfar", messages)] if messages else []

        beams = self._beams_buf
        for src, payload in received.get("easy_bf_to_pc", {}).items():
            beams[self._easy_msgs[src].dst_pos] = payload
        for src, payload in received.get("hard_bf_to_pc", {}).items():
            beams[self._hard_msgs[src].dst_pos] = payload

        # ``power`` is a fresh cube each CPI (pulse_compress_block allocates
        # its output), so in-flight send payloads may safely alias it.
        power = pulse_compress_block(beams, self.params, self._replica)
        messages = [
            (m, power[m.src_pos]) for m in plan.sends_of(self.local_rank)
        ]
        return [("pc_to_cfar", messages)] if messages else []
