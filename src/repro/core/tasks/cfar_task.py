"""Task 6: CFAR processing — the pipeline's output stage.

Each of the P6 processors owns a block of Doppler bins (same partitioning
as pulse compression, so no reorganization on the incoming edge) and runs
the sliding-window cell-averaging CFAR over its rows.  Detections — "a list
of targets at specified ranges, Doppler frequencies, and look directions" —
are delivered to the run collector, which timestamps report completion for
the throughput/latency measurements ("placing a timer at the end of the
last task", Section 7.3).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import PipelineTask
from repro.stap.cfar import cfar_detect, cfar_threshold_factor, reference_cell_counts
from repro.stap.flops import cfar_flops


class CfarTask(PipelineTask):
    name = "cfar"
    kernel = "cfar"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bins = self.layout.cfar_bins.ids_of(self.local_rank)
        self._pc_msgs = {
            m.src: m for m in self.layout.plan("pc_to_cfar").recvs_of(self.local_rank)
        }
        # alpha / counts threshold factor: once per run, not once per CPI.
        if not self.functional:
            self._factor = None
            self._power_buf = None
        else:
            if self.plan is not None:
                self._factor = self.plan.cfar_factor
            else:
                counts = reference_cell_counts(self.params)
                self._factor = (
                    cfar_threshold_factor(counts, self.params.cfar_pfa) / counts
                )
            # Input assembly buffer, reused across CPIs: the incoming pulse
            # compression messages tile the bin axis identically every
            # iteration, so no stale row survives a CPI.
            self._power_buf = np.zeros(
                (len(self.bins), self.params.num_beams, self.params.num_ranges),
                dtype=self.params.real_dtype,
            )
        self._latest_detections: list = []

    # -- framework hooks ----------------------------------------------------------
    def local_flops(self, cpi: int) -> float:
        share = len(self.bins) / self.params.num_doppler
        return cfar_flops(self.params) * share

    def on_iteration_end(self, cpi: int, now: float) -> None:
        self.collector.record_report(cpi, self._latest_detections, now)
        self._latest_detections = []

    # -- work --------------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        if not self.functional:
            self._latest_detections = []
            return []
        power = self._power_buf
        for src, payload in received.get("pc_to_cfar", {}).items():
            power[self._pc_msgs[src].dst_pos] = payload
        self._latest_detections = cfar_detect(
            power, self.params, bin_ids=self.bins, factor=self._factor
        )
        return []
