"""Task 6: CFAR processing — the pipeline's output stage.

Each of the P6 processors owns a block of Doppler bins (same partitioning
as pulse compression, so no reorganization on the incoming edge) and runs
the sliding-window cell-averaging CFAR over its rows.  Detections — "a list
of targets at specified ranges, Doppler frequencies, and look directions" —
are delivered to the run collector, which timestamps report completion for
the throughput/latency measurements ("placing a timer at the end of the
last task", Section 7.3).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import PipelineTask
from repro.stap.cfar import cfar_detect
from repro.stap.flops import cfar_flops


class CfarTask(PipelineTask):
    name = "cfar"
    kernel = "cfar"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bins = self.layout.cfar_bins.ids_of(self.local_rank)
        self._pc_msgs = {
            m.src: m for m in self.layout.plan("pc_to_cfar").recvs_of(self.local_rank)
        }
        self._latest_detections: list = []

    # -- framework hooks ----------------------------------------------------------
    def local_flops(self, cpi: int) -> float:
        share = len(self.bins) / self.params.num_doppler
        return cfar_flops(self.params) * share

    def on_iteration_end(self, cpi: int, now: float) -> None:
        self.collector.record_report(cpi, self._latest_detections, now)
        self._latest_detections = []

    # -- work --------------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        if not self.functional:
            self._latest_detections = []
            return []
        params = self.params
        power = np.zeros(
            (len(self.bins), params.num_beams, params.num_ranges),
            dtype=params.real_dtype,
        )
        for src, payload in received.get("pc_to_cfar", {}).items():
            power[self._pc_msgs[src].dst_pos] = payload
        self._latest_detections = cfar_detect(power, params, bin_ids=self.bins)
        return []
