"""Task 3: easy beamforming.

Each of the P3 processors owns a block of easy Doppler bins.  Per CPI it
assembles (a) the first-window Doppler data for its bins from every Doppler
processor — the K-axis all-to-all of Figure 8 — and (b) the weight vectors
from the easy weight ranks (same bin partitioning, so "no data collection
or reorganization": contiguous blocks).  It then applies ``y = w^H x`` per
bin — an (M x J)(J x K) matrix product each — and forwards its rows to
pulse compression.

The first visit to an azimuth has no trained weights yet (TD(1,3) points
backward in time); the task falls back to quiescent steering-only weights,
exactly as the sequential reference does.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import MODELED, PipelineTask
from repro.stap.flops import easy_beamform_flops
from repro.stap.lsq import quiescent_weights


class EasyBeamformTask(PipelineTask):
    name = "easy_beamform"
    kernel = "easy_beamform"

    def __init__(self, *args, steering=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.steering = steering
        self.bins = self.layout.easy_bf_bins.ids_of(self.local_rank)
        dop_plan = self.layout.plan("dop_to_easy_bf")
        self._dop_msgs = {m.src: m for m in dop_plan.recvs_of(self.local_rank)}
        w_plan = self.layout.plan("easy_weight_to_bf")
        self._w_msgs = {m.src: m for m in w_plan.recvs_of(self.local_rank)}
        # Cold-start fallback weights: once per run, not once per cold CPI.
        if not self.functional:
            self._quiescent = None
            self._dop_buf = None
            self._w_buf = None
        else:
            if self.plan is not None:
                self._quiescent = self.plan.easy_quiescent
            else:
                self._quiescent = quiescent_weights(self.steering)
            # Input assembly buffers, reused across CPIs: every iteration
            # writes the same (static) message extents, so stale data can
            # never leak, and unwritten pad cells keep their initial zeros.
            params = self.params
            J, K, M = params.num_channels, params.num_ranges, params.num_beams
            self._dop_buf = np.zeros((len(self.bins), J, K), dtype=complex)
            self._w_buf = np.empty((len(self.bins), J, M), dtype=complex)

    # -- framework hooks ----------------------------------------------------------
    def recv_edges(self, cpi: int) -> list[str]:
        edges = ["dop_to_easy_bf"]
        if cpi >= self.weight_delay:
            edges.append("easy_weight_to_bf")
        return edges

    def local_flops(self, cpi: int) -> float:
        share = len(self.bins) / self.params.num_easy_doppler
        return easy_beamform_flops(self.params) * share

    # -- work --------------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        plan = self.layout.plan("easy_bf_to_pc")
        if not self.functional:
            messages = [(m, MODELED) for m in plan.sends_of(self.local_rank)]
            return [("easy_bf_to_pc", messages)] if messages else []

        dop = self._dop_buf
        for src, payload in received.get("dop_to_easy_bf", {}).items():
            descriptor = self._dop_msgs[src]
            dop[:, :, descriptor.k_start : descriptor.k_stop] = payload

        weights = self._w_buf
        if cpi < self.weight_delay:
            weights[:] = self._quiescent[None, :, :]
        else:
            for src, payload in received.get("easy_weight_to_bf", {}).items():
                descriptor = self._w_msgs[src]
                weights[descriptor.dst_pos] = payload

        # ``beamformed`` is freshly allocated by einsum each CPI, so the
        # send payloads may alias it: in-flight slices are never clobbered.
        beamformed = np.einsum("njm,njk->nmk", np.conj(weights), dop, optimize=True)
        messages = [
            (m, beamformed[m.src_pos]) for m in plan.sends_of(self.local_rank)
        ]
        return [("easy_bf_to_pc", messages)] if messages else []
