"""The seven pipeline tasks (Figure 4), one module each.

=====================  ==========================  ========================
module                 task                        partitioned axis
=====================  ==========================  ========================
doppler_task           Doppler filter processing   K range cells (Fig 5)
easy_weight_task       easy weight computation     easy Doppler bins (Fig 7)
hard_weight_task       hard weight computation     hard Doppler bins (Fig 7)
easy_bf_task           easy beamforming            easy Doppler bins
hard_bf_task           hard beamforming            hard Doppler bins
pc_task                pulse compression           all Doppler bins (Fig 9)
cfar_task              CFAR processing             all Doppler bins
=====================  ==========================  ========================
"""

from repro.core.tasks.doppler_task import DopplerTask
from repro.core.tasks.easy_weight_task import EasyWeightTask
from repro.core.tasks.hard_weight_task import HardWeightTask
from repro.core.tasks.easy_bf_task import EasyBeamformTask
from repro.core.tasks.hard_bf_task import HardBeamformTask
from repro.core.tasks.pc_task import PulseCompressionTask
from repro.core.tasks.cfar_task import CfarTask

#: Task name -> class, in pipeline order.
TASK_CLASSES = {
    "doppler": DopplerTask,
    "easy_weight": EasyWeightTask,
    "hard_weight": HardWeightTask,
    "easy_beamform": EasyBeamformTask,
    "hard_beamform": HardBeamformTask,
    "pulse_compression": PulseCompressionTask,
    "cfar": CfarTask,
}

__all__ = [
    "DopplerTask",
    "EasyWeightTask",
    "HardWeightTask",
    "EasyBeamformTask",
    "HardBeamformTask",
    "PulseCompressionTask",
    "CfarTask",
    "TASK_CLASSES",
]
