"""Task 0: Doppler filter processing.

Receives one CPI cube slice from the sensor front-end, Doppler-filters its
``K / P_0`` range cells (Figure 5), then feeds four successors:

* collected training samples to the easy / hard weight tasks (Figure 6b) —
  only the selected range cells travel ("data collection is performed to
  avoid sending redundant data");
* the bin-major reorganized staggered cube to the easy / hard beamforming
  tasks (Figure 8) — the all-to-all personalized redistribution whose
  pack cost the paper identifies as the dominant communication overhead.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import MODELED, PipelineTask
from repro.radar.windows import window_by_name
from repro.stap.doppler import doppler_filter_block
from repro.stap.flops import doppler_flops


class DopplerTask(PipelineTask):
    name = "doppler"
    kernel = "doppler"

    def __init__(
        self,
        *args,
        source=None,
        sensor_seconds: float = 0.0,
        input_period: float = 0.0,
        input_offset: float = 0.0,
        **kwargs,
    ):
        """``source``: callable cpi_index -> CPIDataCube (functional mode).

        ``sensor_seconds``: modeled time to receive this rank's cube slice
        from the radar front-end (wire + unpack).

        ``input_period``: seconds between successive CPIs arriving from the
        radar (0 = data always ready; the pipeline self-paces).

        ``input_offset``: arrival time of this pipeline's first CPI —
        nonzero for the staggered replicas of a replicated deployment."""
        super().__init__(*args, **kwargs)
        self.source = source
        self.sensor_seconds = sensor_seconds
        self.input_period = input_period
        self.input_offset = input_offset
        self.k_lo, self.k_hi = self.layout.k_partition.bounds(self.local_rank)
        # Filter-bank window: once per run, not once per CPI.
        if not self.functional:
            self._window = None
        elif self.plan is not None:
            self._window = self.plan.doppler_window
        else:
            params = self.params
            win_len = params.num_pulses - params.stagger
            self._window = window_by_name(params.window, win_len).astype(
                params.real_dtype
            )

    # -- framework hooks ---------------------------------------------------------
    def pre_iteration(self, ctx, cpi: int):
        if self.input_period > 0.0 or self.input_offset > 0.0:
            available_at = self.input_offset + cpi * self.input_period
            if ctx.wtime() < available_at:
                yield ctx.elapse(available_at - ctx.wtime())

    def recv_edges(self, cpi: int) -> list[str]:
        return []  # input arrives from the sensor, not from a pipeline task

    def extra_recv_seconds(self, cpi: int) -> float:
        return self.sensor_seconds

    def local_flops(self, cpi: int) -> float:
        share = (self.k_hi - self.k_lo) / self.params.num_ranges
        return doppler_flops(self.params) * share

    def on_iteration_start(self, cpi: int, now: float) -> None:
        self.collector.record_input_start(cpi, now)

    # -- work ----------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        staggered = None
        if self.functional:
            cube = self.source(cpi)
            staggered = doppler_filter_block(
                cube.data[self.k_lo : self.k_hi],
                self.params,
                k_start=self.k_lo,
                window=self._window,
            )
        sends = []
        J = self.params.num_channels
        layout = self.layout

        # Training samples for the weight tasks (data collection, Fig 6b).
        for edge_name, use_both_windows in (
            ("dop_to_easy_weight", False),
            ("dop_to_hard_weight", True),
        ):
            plan = layout.plan(edge_name)
            channels = 2 * J if use_both_windows else J
            messages = []
            for message in plan.sends_of(self.local_rank):
                if not self.functional:
                    messages.append((message, MODELED))
                    continue
                parts = {}
                for seg in message.segments:
                    cols = seg.k_indices - self.k_lo
                    # Conjugated snapshots, (bins, rows, channels): see
                    # repro.stap.easy_weights.extract_easy_training.  The
                    # separated advanced indices place the broadcast
                    # (bins, rows) axes first, gathering the transposed
                    # block in one pass instead of copy + slice + copy.
                    parts[seg.segment] = np.conj(
                        staggered[seg.bin_ids[:, None], :channels, cols[None, :]]
                    )
                messages.append((message, parts))
            if messages:
                sends.append((edge_name, messages))

        # Full redistribution to the beamforming tasks (Fig 8).
        for edge_name, bins_partition, use_both_windows in (
            ("dop_to_easy_bf", layout.easy_bf_bins, False),
            ("dop_to_hard_bf", layout.hard_bf_bins, True),
        ):
            plan = layout.plan(edge_name)
            messages = []
            for message in plan.sends_of(self.local_rank):
                if not self.functional:
                    messages.append((message, MODELED))
                    continue
                bins = bins_partition.ids_of(message.dst)
                # Advanced indexing already yields a fresh C-contiguous
                # cube — one gather, no ascontiguousarray re-copy.
                payload = (
                    staggered[bins]
                    if use_both_windows
                    else staggered[bins, :J, :]
                )
                messages.append((message, payload))
            if messages:
                sends.append((edge_name, messages))
        return sends
