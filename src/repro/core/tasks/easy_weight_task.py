"""Task 1: easy weight computation.

Each of the P1 processors owns a block of easy Doppler bins (Figure 7),
assembles the training rows collected by every Doppler processor, maintains
the three-CPI sliding training history per azimuth, and solves the
beam-constrained least-squares problem for its bins.  The resulting weight
vectors are sent to the easy beamforming ranks *for the next visit to this
azimuth* — the temporal dependency TD(1,3) of Figure 4.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict

import numpy as np

from repro.core.task import MODELED, PipelineTask
from repro.stap.easy_weights import HISTORY_LENGTH, compute_easy_weights
from repro.stap.flops import easy_weight_flops


class EasyWeightTask(PipelineTask):
    name = "easy_weight"
    kernel = "easy_weight"
    # Weights feed CPI i + weight_delay (TD(1,3)): off the latency path.
    latency_path = False

    def __init__(self, *args, steering=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.steering = steering
        partition = self.layout.easy_weight_bins
        self.bins = partition.ids_of(self.local_rank)
        # azimuth -> deque of (B, c, J) training blocks.
        self._history: Dict[int, deque] = {}
        # Per-source message descriptors for assembly.
        plan = self.layout.plan("dop_to_easy_weight")
        self._recv_msgs = {m.src: m for m in plan.recvs_of(self.local_rank)}

    # -- framework hooks ----------------------------------------------------------
    def local_flops(self, cpi: int) -> float:
        share = len(self.bins) / self.params.num_easy_doppler
        return easy_weight_flops(self.params) * share

    def send_tag_cpi(self, edge_name: str, cpi: int) -> int:
        # Weights trained on CPI i are applied to CPI i + revisit period.
        return cpi + self.weight_delay

    # -- work --------------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        plan = self.layout.plan("easy_weight_to_bf")
        target_cpi = cpi + self.weight_delay
        wants_send = target_cpi < self.num_cpis
        if not self.functional:
            if not wants_send:
                return []
            messages = [(m, MODELED) for m in plan.sends_of(self.local_rank)]
            return [("easy_weight_to_bf", messages)] if messages else []

        params = self.params
        azimuth = cpi % self.weight_delay
        # NOT a reusable buffer: each CPI's training block is retained in
        # the sliding history deque, so it must be a fresh allocation.
        training = np.zeros(
            (len(self.bins), params.easy_train_per_cpi, params.num_channels),
            dtype=complex,
        )
        for src, parts in received.get("dop_to_easy_weight", {}).items():
            descriptor = self._recv_msgs[src]
            (segment,) = descriptor.segments
            training[:, segment.row_positions, :] = parts[segment.segment]
        history = self._history.setdefault(azimuth, deque(maxlen=HISTORY_LENGTH))
        history.append(training)

        if not wants_send:
            return []
        stacked = np.concatenate(list(history), axis=1)
        # ``weights`` is a fresh stack each CPI, so in-flight send payloads
        # may safely alias it.
        weights = compute_easy_weights(
            stacked, self.steering, params.beam_constraint_weight
        )
        messages = [
            (m, weights[m.src_pos]) for m in plan.sends_of(self.local_rank)
        ]
        return [("easy_weight_to_bf", messages)] if messages else []
