"""Task 2: hard weight computation.

Each of the P2 processors owns a block of (range segment, hard Doppler bin)
*units* — one recursive QR per unit, ``6 * N_hard`` units in all.  This
finer-than-bins decomposition is what lets the paper assign 112 nodes to a
task with only 56 hard bins (Table 7, case 1).  Per CPI a rank absorbs the
freshly collected training rows of its units with exponential forgetting,
re-solves the constrained least-squares problem, and ships the weight
vectors to the hard beamforming ranks for the next visit to this azimuth —
TD(2,4) of Figure 4.  This is the most computationally demanding task of
the pipeline (Table 1), which is why the paper's assignments give it
roughly half of all nodes.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import MODELED, PipelineTask
from repro.stap.doppler import stagger_phase
from repro.stap.flops import hard_weight_flops
from repro.stap.hard_weights import compute_hard_weights_units, update_r_units


class HardWeightTask(PipelineTask):
    name = "hard_weight"
    kernel = "hard_weight"
    # Weights feed CPI i + weight_delay (TD(2,4)): off the latency path.
    latency_path = False

    def __init__(self, *args, steering=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.steering = steering
        partition = self.layout.hard_weight_units
        self.units = partition.units_of(self.local_rank)
        self.unit_bin_pos, self.unit_segments = partition.decompose(self.units)
        self.unit_bins = partition.bins_of_units(self.units)
        self.phases = stagger_phase(self.params, self.unit_bins)
        # azimuth -> (U, 2J, 2J) R factors.
        self._r_state: Dict[int, np.ndarray] = {}
        # Training assembly buffer, reused across CPIs (the QR update
        # absorbs it before compute returns): the incoming segments write
        # the same row positions every iteration, so no stale sample
        # survives, and unwritten pad rows keep their initial zeros.
        if self.functional:
            self._training_buf = np.zeros(
                (
                    len(self.units),
                    self.params.hard_train_samples,
                    self.params.num_staggered_channels,
                ),
                dtype=complex,
            )
        else:
            self._training_buf = None
        plan = self.layout.plan("dop_to_hard_weight")
        self._recv_msgs = {m.src: m for m in plan.recvs_of(self.local_rank)}
        # Map (segment, absolute bin) -> local unit index, for assembly.
        self._unit_index = {
            (int(seg), int(bin_id)): idx
            for idx, (seg, bin_id) in enumerate(zip(self.unit_segments, self.unit_bins))
        }

    # -- framework hooks ----------------------------------------------------------
    def local_flops(self, cpi: int) -> float:
        total_units = self.params.num_hard_doppler * self.params.num_segments
        return hard_weight_flops(self.params) * len(self.units) / total_units

    def send_tag_cpi(self, edge_name: str, cpi: int) -> int:
        return cpi + self.weight_delay

    # -- work --------------------------------------------------------------------------
    def _state_for(self, azimuth: int) -> np.ndarray:
        state = self._r_state.get(azimuth)
        if state is None:
            n2 = self.params.num_staggered_channels
            state = np.zeros((len(self.units), n2, n2), dtype=complex)
            self._r_state[azimuth] = state
        return state

    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        plan = self.layout.plan("hard_weight_to_bf")
        target_cpi = cpi + self.weight_delay
        wants_send = target_cpi < self.num_cpis
        if not self.functional:
            if not wants_send:
                return []
            messages = [(m, MODELED) for m in plan.sends_of(self.local_rank)]
            return [("hard_weight_to_bf", messages)] if messages else []

        params = self.params
        azimuth = cpi % self.weight_delay
        training = self._training_buf
        for src, parts in received.get("dop_to_hard_weight", {}).items():
            descriptor = self._recv_msgs[src]
            for segment in descriptor.segments:
                block = parts[segment.segment]  # (|bins|, rows, 2J)
                for bin_idx, bin_id in enumerate(segment.bin_ids):
                    unit = self._unit_index[(segment.segment, int(bin_id))]
                    training[unit][segment.row_positions, :] = block[bin_idx]
        state = self._state_for(azimuth)
        update_r_units(state, training, params.forgetting_factor)

        if not wants_send:
            return []
        # One stacked constrained solve over this rank's units (same maths
        # as repro.stap.hard_weights.compute_hard_weights, flat unit axis).
        weights = compute_hard_weights_units(
            state,
            self.steering,
            self.phases,
            params.beam_constraint_weight,
            params.freq_constraint_weight,
        )
        # ``weights`` is a fresh stack each CPI, so in-flight send payloads
        # may safely alias it.
        messages = [
            (m, weights[m.src_pos]) for m in plan.sends_of(self.local_rank)
        ]
        return [("hard_weight_to_bf", messages)] if messages else []
