"""Task 4: hard beamforming.

Like easy beamforming but over both staggered Doppler windows (2J channels)
and with *per-range-segment* weights: range segment ``s`` of the output row
uses segment ``s``'s weight vector — six (M x 2J)(2J x K_s) products per
hard bin.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.task import MODELED, PipelineTask
from repro.stap.doppler import stagger_phase
from repro.stap.flops import hard_beamform_flops
from repro.stap.lsq import quiescent_weights_stacked


class HardBeamformTask(PipelineTask):
    name = "hard_beamform"
    kernel = "hard_beamform"

    def __init__(self, *args, steering=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.steering = steering
        self.bins = self.layout.hard_bf_bins.ids_of(self.local_rank)
        self.phases = stagger_phase(self.params, self.bins)
        dop_plan = self.layout.plan("dop_to_hard_bf")
        self._dop_msgs = {m.src: m for m in dop_plan.recvs_of(self.local_rank)}
        w_plan = self.layout.plan("hard_weight_to_bf")
        self._w_msgs = {m.src: m for m in w_plan.recvs_of(self.local_rank)}
        # Cold-start fallback weights for this rank's bins: once per run.
        if not self.functional:
            self._quiescent = None
            self._dop_buf = None
            self._w_buf = None
        else:
            if self.plan is not None:
                self._quiescent = self.plan.hard_quiescent[self.bins]
            else:
                self._quiescent = quiescent_weights_stacked(self.steering, self.phases)
            # Input assembly buffers, reused across CPIs: every iteration
            # writes the same (static) message extents, so stale data can
            # never leak, and unwritten pad cells keep their initial zeros.
            params = self.params
            n2 = params.num_staggered_channels
            self._dop_buf = np.zeros(
                (len(self.bins), n2, params.num_ranges), dtype=complex
            )
            self._w_buf = np.empty(
                (params.num_segments, len(self.bins), n2, params.num_beams),
                dtype=complex,
            )

    # -- framework hooks ----------------------------------------------------------
    def recv_edges(self, cpi: int) -> list[str]:
        edges = ["dop_to_hard_bf"]
        if cpi >= self.weight_delay:
            edges.append("hard_weight_to_bf")
        return edges

    def local_flops(self, cpi: int) -> float:
        share = len(self.bins) / self.params.num_hard_doppler
        return hard_beamform_flops(self.params) * share

    # -- work --------------------------------------------------------------------------
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        plan = self.layout.plan("hard_bf_to_pc")
        if not self.functional:
            messages = [(m, MODELED) for m in plan.sends_of(self.local_rank)]
            return [("hard_bf_to_pc", messages)] if messages else []

        params = self.params
        K, M = params.num_ranges, params.num_beams
        dop = self._dop_buf
        for src, payload in received.get("dop_to_hard_bf", {}).items():
            descriptor = self._dop_msgs[src]
            dop[:, :, descriptor.k_start : descriptor.k_stop] = payload

        weights = self._w_buf
        if cpi < self.weight_delay:
            weights[:] = self._quiescent[None, :, :, :]
        else:
            for src, payload in received.get("hard_weight_to_bf", {}).items():
                descriptor = self._w_msgs[src]
                # payload: (units, 2J, M) per-(segment, bin) weight vectors.
                weights[descriptor.segments, descriptor.dst_bin_pos] = payload

        # ``beamformed`` must stay freshly allocated each CPI: the send
        # payloads below alias it while in flight under double buffering.
        beamformed = np.empty((len(self.bins), M, K), dtype=complex)
        for seg_idx, seg in enumerate(params.segment_slices):
            beamformed[:, :, seg] = np.einsum(
                "njm,njk->nmk",
                np.conj(weights[seg_idx]),
                dop[:, :, seg],
                optimize=True,
            )
        messages = [
            (m, beamformed[m.src_pos]) for m in plan.sends_of(self.local_rank)
        ]
        return [("hard_bf_to_pc", messages)] if messages else []
