"""The pipeline task framework: Figure 10 as code.

Every task rank runs :meth:`PipelineTask.run` — a direct transcription of
the paper's double-buffered loop::

    for i in 0..n-1:
        t0 = read timer
        post async receives for iteration i+1          (inBuf[next])
        wait for completion of receives for iteration i (inBuf[cur])
        unpack inBuf[cur]
        t1 = read timer
        compute on inBuf[cur] -> outBuf[cur]
        t2 = read timer
        pack outgoing messages from outBuf[cur]
        post async sends for iteration i
        wait for completion of sends of iteration i-1   (outBuf[prev])
        t3 = read timer

``recv = t1-t0`` (waiting + unpack), ``comp = t2-t1``, ``send = t3-t2``
(pack + post + waiting for the previous sends) — the exact decomposition
behind the paper's Tables 2-10.

Subclasses supply the task-specific pieces: which edges they receive on for
a given iteration, the per-rank flop count, and ``compute`` (which, in
functional mode, also performs the real NumPy work and returns real
payloads).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from repro.core.layout import PipelineLayout
from repro.core.metrics import TaskTiming
from repro.core.redistribution import edge_tag
from repro.mpi.context import RankContext

#: Sentinel payload used in modeled mode (sizes matter, contents don't).
MODELED = None


class Collector:
    """Run-wide sink for timings, detections, and latency bookkeeping.

    Plain Python shared state (not simulated communication): it stands in
    for the paper's measurement instrumentation, which likewise lived
    outside the data path.
    """

    def __init__(self):
        self.timings: Dict[str, list[TaskTiming]] = {}
        #: cpi -> earliest time any Doppler rank began reading the input.
        self.input_start: Dict[int, float] = {}
        #: cpi -> latest time any CFAR rank finished its share of the report.
        self.report_done: Dict[int, float] = {}
        #: cpi -> merged detection list (functional mode only).
        self.detections: Dict[int, list] = {}

    def record_timing(self, task: str, timing: TaskTiming) -> None:
        self.timings.setdefault(task, []).append(timing)

    def record_input_start(self, cpi: int, time: float) -> None:
        current = self.input_start.get(cpi)
        if current is None or time < current:
            self.input_start[cpi] = time

    def record_report(self, cpi: int, detections, time: float) -> None:
        current = self.report_done.get(cpi)
        if current is None or time > current:
            self.report_done[cpi] = time
        if detections:
            self.detections.setdefault(cpi, []).extend(detections)
        else:
            self.detections.setdefault(cpi, [])


class PipelineTask(abc.ABC):
    """One task of the pipeline, instantiated once per local rank."""

    #: Task name (must match :data:`repro.core.assignment.TASK_NAMES`).
    name: str = ""
    #: Kernel class for the machine model's rate table.
    kernel: str = "default"
    #: Whether this task's spans sit on the equation (2) latency path.
    #: The weight tasks override this to False: their output feeds a
    #: *later* CPI (temporal dependency TD(1,3)), so their time never
    #: contributes to a CPI's input-to-report latency.
    latency_path: bool = True

    def __init__(
        self,
        layout: PipelineLayout,
        local_rank: int,
        num_cpis: int,
        collector: Collector,
        functional: bool,
        weight_delay: int = 1,
        double_buffering: bool = True,
        obs=None,
        plan=None,
    ):
        self.layout = layout
        self.params = layout.params
        self.local_rank = local_rank
        self.num_cpis = num_cpis
        self.collector = collector
        self.functional = functional
        #: Optional :class:`~repro.stap.plan.KernelPlan` — per-run constants
        #: (windows, replica spectrum, quiescent weights, CFAR factors)
        #: computed once by the pipeline and shared by every task.  Tasks
        #: fall back to computing their own pieces at setup when absent
        #: (direct construction in tests); numerics are identical.
        self.plan = plan
        #: Iterations between a weight task training on CPI i and those
        #: weights being applied (= azimuth revisit period; 1 when every
        #: CPI shares one azimuth).
        self.weight_delay = weight_delay
        #: The paper's Figure 10 overlap strategy.  False = synchronous
        #: ablation: receives are posted only when needed and every send is
        #: drained before the iteration ends, so communication no longer
        #: overlaps computation.
        self.double_buffering = double_buffering
        #: Optional :class:`~repro.obs.TraceSink`; when attached, every
        #: iteration records its span tree (one ``is None`` check per
        #: iteration when off — the timestamps are read either way).
        self._obs = obs
        # Per-edge lookups reused every iteration (lazily built: an edge's
        # receive sources and unpack charge are static for a given rank).
        self._recv_sources_cache: Dict[str, list] = {}
        self._unpack_charge_cache: Dict[str, Optional[tuple]] = {}

    # ------------------------------------------------------------------ hooks --
    def pre_iteration(self, ctx: RankContext, cpi: int):
        """Generator run before an iteration's clock starts.

        The Doppler task uses it to wait for sensor-data availability when
        the input is externally paced; the wait is excluded from the
        recv/latency accounting (the data simply was not there yet).
        """
        return
        yield  # pragma: no cover - makes this a generator

    def recv_edges(self, cpi: int) -> list[str]:
        """Edge names this task receives on at iteration ``cpi``."""
        return self.layout.in_edges(self.name)

    def send_tag_cpi(self, edge_name: str, cpi: int) -> int:
        """The CPI index stamped on outgoing messages of an edge."""
        return cpi

    def recv_tag_cpi(self, edge_name: str, cpi: int) -> int:
        """The CPI index expected on incoming messages of an edge."""
        return cpi

    def extra_recv_seconds(self, cpi: int) -> float:
        """Non-MPI input time (the Doppler task's sensor transfer)."""
        return 0.0

    @abc.abstractmethod
    def local_flops(self, cpi: int) -> float:
        """This rank's share of the task's per-CPI floating-point work."""

    @abc.abstractmethod
    def compute(self, cpi: int, received: Dict[str, Dict[int, Any]]):
        """Do the task's work for one CPI.

        ``received`` maps edge name -> source local rank -> payload.
        Returns ``sends``: list of ``(edge_name, [(message, payload), ...])``
        in plan order.  In modeled mode payloads are :data:`MODELED`.
        """

    def on_iteration_start(self, cpi: int, now: float) -> None:
        """Hook at t0 (Doppler uses it to stamp input availability)."""

    def on_iteration_end(self, cpi: int, now: float) -> None:
        """Hook at t3 (CFAR uses it to deliver the detection report)."""

    # ----------------------------------------------------------------- helpers --
    def _recv_sources(self, edge_name: str) -> list:
        """Static (src local rank, src world rank) pairs for one in-edge."""
        sources = self._recv_sources_cache.get(edge_name)
        if sources is None:
            plan = self.layout.plan(edge_name)
            sources = self._recv_sources_cache[edge_name] = [
                (message.src, self.layout.world_rank(plan.src_task, message.src))
                for message in plan.recvs_of(self.local_rank)
            ]
        return sources

    def _post_recvs(self, ctx: RankContext, cpi: int):
        """Post irecvs for iteration ``cpi``; returns (edge, src, request)."""
        entries = []
        for edge_name in self.recv_edges(cpi):
            tag = edge_tag(edge_name, self.recv_tag_cpi(edge_name, cpi))
            for src, src_world in self._recv_sources(edge_name):
                entries.append((edge_name, src, ctx.irecv(source=src_world, tag=tag)))
        return entries

    def _unpack_charges(self, cpi: int) -> list[tuple[int, bool]]:
        """(nbytes, strided) pairs to charge for assembling the inputs."""
        charges = []
        for edge_name in self.recv_edges(cpi):
            charge = self._unpack_charge_cache.get(edge_name, False)
            if charge is False:
                plan = self.layout.plan(edge_name)
                nbytes = plan.recv_bytes_of(self.local_rank)
                charge = (nbytes, plan.unpack_strided) if nbytes else None
                self._unpack_charge_cache[edge_name] = charge
            if charge is not None:
                charges.append(charge)
        return charges

    # -------------------------------------------------------------------- loop --
    def run(self, ctx: RankContext):
        """The Figure 10 double-buffered loop (a DES process generator)."""
        pending_recvs: Dict[int, list] = {}
        if self.double_buffering:
            pending_recvs[0] = self._post_recvs(ctx, 0)
        prev_sends: list = []
        for cpi in range(self.num_cpis):
            yield from self.pre_iteration(ctx, cpi)
            t0 = ctx.wtime()
            self.on_iteration_start(cpi, t0)
            if self.double_buffering:
                # Post async receives for the *next* iteration.
                if cpi + 1 < self.num_cpis:
                    pending_recvs[cpi + 1] = self._post_recvs(ctx, cpi + 1)
            else:
                # Synchronous ablation: post only this iteration's receives.
                pending_recvs[cpi] = self._post_recvs(ctx, cpi)
            # Wait for this iteration's receives.
            entries = pending_recvs.pop(cpi)
            if entries:
                yield ctx.wait_all([request for _, _, request in entries])
            received: Dict[str, Dict[int, Any]] = {}
            for edge_name, src, request in entries:
                received.setdefault(edge_name, {})[src] = request.value.payload
            # Unpack (data assembly) — inside the recv segment, as in Fig 10.
            for nbytes, strided in self._unpack_charges(cpi):
                yield ctx.copy(nbytes, strided=strided)
            extra = self.extra_recv_seconds(cpi)
            if extra > 0.0:
                yield ctx.elapse(extra)
            t1 = ctx.wtime()

            sends = self.compute(cpi, received)
            flops = self.local_flops(cpi)
            if flops > 0.0:
                yield ctx.compute(self.kernel, flops)
            t2 = ctx.wtime()

            # Pack (data collection / reorganization) + post async sends.
            send_requests = []
            offsets = self.layout.assignment.rank_offsets()
            for edge_name, messages in sends:
                plan = self.layout.plan(edge_name)
                pack_bytes = sum(message.nbytes for message, _ in messages)
                if pack_bytes:
                    yield ctx.copy(pack_bytes, strided=plan.pack_strided)
                tag = edge_tag(edge_name, self.send_tag_cpi(edge_name, cpi))
                dst_offset = offsets[plan.dst_task]
                for message, payload in messages:
                    send_requests.append(
                        ctx.isend(
                            payload,
                            dest=dst_offset + message.dst,
                            tag=tag,
                            nbytes=message.nbytes,
                        )
                    )
            # Wait for the previous iteration's sends (outBuf[prev] reusable)
            # — or, without double buffering, for this iteration's own.
            if not self.double_buffering:
                prev_sends = send_requests
                send_requests = []
            if prev_sends:
                yield ctx.wait_all(prev_sends)
            prev_sends = send_requests
            t3 = ctx.wtime()

            self.collector.record_timing(
                self.name,
                TaskTiming(cpi_index=cpi, rank=self.local_rank, t0=t0, t1=t1, t2=t2, t3=t3),
            )
            if self._obs is not None:
                self._obs.record_iteration(
                    self.name,
                    self.local_rank,
                    ctx.world_rank,
                    cpi,
                    t0,
                    t1,
                    t2,
                    t3,
                    latency_path=self.latency_path,
                )
            self.on_iteration_end(cpi, t3)
        # Drain the final iteration's sends before exiting.
        if prev_sends:
            yield ctx.wait_all(prev_sends)
