"""PipelineLayout: partitions, plans and rank mapping for one configuration.

Given the algorithm shape (:class:`STAPParams`) and a processor
:class:`Assignment`, the layout precomputes everything static about one
pipeline instance:

* the data partition of every task (K-axis for Doppler, bin-axis elsewhere);
* the nine :class:`~repro.core.redistribution.EdgePlan` objects;
* the world-rank numbering (tasks occupy contiguous rank blocks in pipeline
  order, which also places them on contiguous mesh nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.core.assignment import Assignment, TASK_NAMES
from repro.core.partition import BlockPartition, HardUnitPartition
from repro.core.redistribution import (
    EdgePlan,
    plan_bins_edge,
    plan_dop_to_bf,
    plan_dop_to_easy_weight,
    plan_dop_to_hard_weight,
    plan_hard_weight_to_bf,
)
from repro.errors import ConfigurationError
from repro.radar.parameters import STAPParams

#: Edges of the task graph in dataflow order: (edge name, src task, dst task).
EDGE_TOPOLOGY = (
    ("dop_to_easy_weight", "doppler", "easy_weight"),
    ("dop_to_hard_weight", "doppler", "hard_weight"),
    ("dop_to_easy_bf", "doppler", "easy_beamform"),
    ("dop_to_hard_bf", "doppler", "hard_beamform"),
    ("easy_weight_to_bf", "easy_weight", "easy_beamform"),
    ("hard_weight_to_bf", "hard_weight", "hard_beamform"),
    ("easy_bf_to_pc", "easy_beamform", "pulse_compression"),
    ("hard_bf_to_pc", "hard_beamform", "pulse_compression"),
    ("pc_to_cfar", "pulse_compression", "cfar"),
)


@dataclass
class PipelineLayout:
    """All static structure of one pipeline configuration.

    ``collect_training`` ablates the paper's *data collection* optimization
    (Figure 6b): when False, the Doppler task ships its entire K-slice to
    the weight tasks instead of only the selected training cells — "data
    collection is performed to avoid sending redundant data and hence
    reduces the communication costs" is the claim this switch tests.
    The payloads in functional mode are unchanged (the extra cells are
    never used); only the modeled byte counts and pack/unpack stride class
    change.
    """

    params: STAPParams
    assignment: Assignment
    collect_training: bool = True

    def __post_init__(self):
        self.assignment.validate_for(self.params)

    # -- partitions ------------------------------------------------------------
    @cached_property
    def k_partition(self) -> BlockPartition:
        """Doppler task: K range cells over P0 processors (Figure 5)."""
        return BlockPartition.of_range(
            self.params.num_ranges, self.assignment.doppler
        )

    @cached_property
    def easy_weight_bins(self) -> BlockPartition:
        """Easy weight task: easy Doppler bins over P1 (Figure 7)."""
        return BlockPartition.of_ids(
            self.params.easy_bins, self.assignment.easy_weight
        )

    @cached_property
    def hard_weight_units(self) -> HardUnitPartition:
        """Hard weight task: (segment, bin) units over P2.

        The paper's case 1 gives this task 112 nodes for 56 hard bins —
        feasible because the ``6 * N_hard`` per-(segment, bin) recursive
        updates are independent (Section 5.2).
        """
        return HardUnitPartition(
            bin_ids=tuple(int(b) for b in self.params.hard_bins),
            num_segments=self.params.num_segments,
            parts=self.assignment.hard_weight,
        )

    @cached_property
    def easy_bf_bins(self) -> BlockPartition:
        """Easy beamforming: easy bins over P3."""
        return BlockPartition.of_ids(
            self.params.easy_bins, self.assignment.easy_beamform
        )

    @cached_property
    def hard_bf_bins(self) -> BlockPartition:
        """Hard beamforming: hard bins over P4."""
        return BlockPartition.of_ids(
            self.params.hard_bins, self.assignment.hard_beamform
        )

    @cached_property
    def pc_bins(self) -> BlockPartition:
        """Pulse compression: all N bins over P5 (Figure 9)."""
        return BlockPartition.of_range(
            self.params.num_doppler, self.assignment.pulse_compression
        )

    @cached_property
    def cfar_bins(self) -> BlockPartition:
        """CFAR: all N bins over P6."""
        return BlockPartition.of_range(self.params.num_doppler, self.assignment.cfar)

    def partition_of(self, task: str) -> BlockPartition:
        """The data partition of a task by name."""
        table = {
            "doppler": self.k_partition,
            "easy_weight": self.easy_weight_bins,
            "hard_weight": self.hard_weight_units,
            "easy_beamform": self.easy_bf_bins,
            "hard_beamform": self.hard_bf_bins,
            "pulse_compression": self.pc_bins,
            "cfar": self.cfar_bins,
        }
        try:
            return table[task]
        except KeyError:
            raise ConfigurationError(f"unknown task {task!r}") from None

    # -- plans -------------------------------------------------------------------
    @cached_property
    def plans(self) -> dict[str, EdgePlan]:
        """Edge name -> redistribution plan.

        Plans depend only on (params, per-task node counts, the
        data-collection flag), so they are shared process-wide through a
        keyed cache: sweeps that simulate many pipelines over the same
        configuration (the optimizer searches, ``run_measured``'s paced
        second phase, the benchmark tables) stop rebuilding the
        O(P_src x P_dst) message lists from scratch.  Plans are immutable
        by convention — tasks only read them.
        """
        return _shared_plans(
            self.params, self.assignment.counts(), self.collect_training
        )

    def _build_plans(self) -> dict[str, EdgePlan]:
        """Construct the nine edge plans (cache miss path)."""
        params = self.params
        item = params.complex_itemsize
        real_item = 4 if params.real_dtype == "float32" else 8
        M, J, K = params.num_beams, params.num_channels, params.num_ranges
        plans = {
            "dop_to_easy_weight": plan_dop_to_easy_weight(
                params,
                self.k_partition,
                self.easy_weight_bins,
                collect=self.collect_training,
            ),
            "dop_to_hard_weight": plan_dop_to_hard_weight(
                params,
                self.k_partition,
                self.hard_weight_units,
                collect=self.collect_training,
            ),
            "dop_to_easy_bf": plan_dop_to_bf(
                params, self.k_partition, self.easy_bf_bins, hard=False
            ),
            "dop_to_hard_bf": plan_dop_to_bf(
                params, self.k_partition, self.hard_bf_bins, hard=True
            ),
            "easy_weight_to_bf": plan_bins_edge(
                "easy_weight_to_bf",
                "easy_weight",
                "easy_beamform",
                self.easy_weight_bins,
                self.easy_bf_bins,
                bytes_per_bin=J * M * item,
            ),
            "hard_weight_to_bf": plan_hard_weight_to_bf(
                params, self.hard_weight_units, self.hard_bf_bins
            ),
            "easy_bf_to_pc": plan_bins_edge(
                "easy_bf_to_pc",
                "easy_beamform",
                "pulse_compression",
                self.easy_bf_bins,
                self.pc_bins,
                bytes_per_bin=M * K * item,
            ),
            "hard_bf_to_pc": plan_bins_edge(
                "hard_bf_to_pc",
                "hard_beamform",
                "pulse_compression",
                self.hard_bf_bins,
                self.pc_bins,
                bytes_per_bin=M * K * item,
            ),
            "pc_to_cfar": plan_bins_edge(
                "pc_to_cfar",
                "pulse_compression",
                "cfar",
                self.pc_bins,
                self.cfar_bins,
                bytes_per_bin=M * K * real_item,
            ),
        }
        return plans

    def plan(self, edge_name: str) -> EdgePlan:
        """Redistribution plan for one edge."""
        try:
            return self.plans[edge_name]
        except KeyError:
            raise ConfigurationError(f"unknown edge {edge_name!r}") from None

    def in_edges(self, task: str) -> list[str]:
        """Edges arriving at a task, in topology order."""
        return [name for name, _src, dst in EDGE_TOPOLOGY if dst == task]

    def out_edges(self, task: str) -> list[str]:
        """Edges leaving a task, in topology order."""
        return [name for name, src, _dst in EDGE_TOPOLOGY if src == task]

    # -- rank mapping --------------------------------------------------------------
    @property
    def total_ranks(self) -> int:
        return self.assignment.total_nodes

    def world_rank(self, task: str, local_rank: int) -> int:
        """World rank of ``local_rank`` within ``task``."""
        offsets = self.assignment.rank_offsets()
        if task in offsets:
            count = getattr(self.assignment, task)
        else:
            count = self.assignment.count_of(task)  # raises AssignmentError
        if not (0 <= local_rank < count):
            raise ConfigurationError(
                f"{task} has {count} ranks; local rank {local_rank} out of range"
            )
        return offsets[task] + local_rank

    def task_and_local(self, world_rank: int) -> tuple[str, int]:
        """(task, local rank) of a world rank."""
        task = self.assignment.task_of_rank(world_rank)
        return task, world_rank - self.assignment.rank_offsets()[task]

    # -- memory feasibility -----------------------------------------------------
    def peak_buffer_bytes(self, task: str, local_rank: int) -> int:
        """Rough peak working-set bytes of one rank (double-buffered).

        Counts the rank's input assembly buffers, its principal local
        arrays (staggered slice / recursion state / output block), and the
        outgoing messages — times two for double buffering.  Used against
        the Paragon's 64 MiB per-node memory.
        """
        params = self.params
        item = params.complex_itemsize
        inputs = sum(
            self.plan(edge).recv_bytes_of(local_rank) for edge in self.in_edges(task)
        )
        outputs = sum(
            self.plan(edge).send_bytes_of(local_rank) for edge in self.out_edges(task)
        )
        if task == "doppler":
            lo, hi = self.k_partition.bounds(local_rank)
            local = (
                (hi - lo)
                * params.num_staggered_channels
                * params.num_pulses
                * item
            ) + self.sensor_bytes_of(local_rank)
        elif task == "easy_weight":
            bins = self.easy_weight_bins.size_of(local_rank)
            # 3-CPI history + weights.
            local = bins * params.num_channels * item * (
                3 * params.easy_train_per_cpi + params.num_beams
            )
        elif task == "hard_weight":
            units = self.hard_weight_units.size_of(local_rank)
            n2 = params.num_staggered_channels
            local = units * n2 * item * (n2 + params.hard_train_samples + params.num_beams)
        elif task in ("easy_beamform", "hard_beamform"):
            partition = self.partition_of(task)
            channels = (
                params.num_channels
                if task == "easy_beamform"
                else params.num_staggered_channels
            )
            bins = partition.size_of(local_rank)
            local = bins * (channels + params.num_beams) * params.num_ranges * item
        else:  # pulse_compression, cfar
            bins = self.partition_of(task).size_of(local_rank)
            local = bins * params.num_beams * params.num_ranges * item
        return 2 * (inputs + outputs) + local

    def validate_memory(self, memory_bytes: int) -> None:
        """Raise if any rank's working set exceeds the per-node memory."""
        for task in self.assignment.rank_offsets():
            for local_rank in range(self.assignment.count_of(task)):
                need = self.peak_buffer_bytes(task, local_rank)
                if need > memory_bytes:
                    raise ConfigurationError(
                        f"{task} rank {local_rank} needs ~{need / 2**20:.1f} MiB "
                        f"but nodes have {memory_bytes / 2**20:.0f} MiB"
                    )

    # -- sensor input ---------------------------------------------------------------
    def sensor_bytes_of(self, doppler_rank: int) -> int:
        """Raw-cube bytes delivered to one Doppler rank per CPI."""
        lo, hi = self.k_partition.bounds(doppler_rank)
        return (
            (hi - lo)
            * self.params.num_channels
            * self.params.num_pulses
            * self.params.complex_itemsize
        )


@lru_cache(maxsize=128)
def _shared_plans(
    params: STAPParams, counts: tuple[int, ...], collect_training: bool
) -> dict[str, EdgePlan]:
    """Process-wide edge-plan cache, keyed by everything plans depend on."""
    layout = PipelineLayout(
        params,
        Assignment(*counts, name="plan-cache"),
        collect_training=collect_training,
    )
    return layout._build_plans()
