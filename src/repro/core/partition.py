"""Block partitioning of index ranges across task processors.

"Each task i is parallelized by evenly partitioning its work load among P_i
processors" (Section 5).  The Doppler task partitions the K range cells
(Figure 5); every other task partitions Doppler bins (Figures 7 and 9).
Uneven divisions spread the remainder over the leading blocks, keeping any
two blocks within one element of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def block_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous, near-even blocks."""
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise ConfigurationError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def block_of(total: int, parts: int, index: int) -> int:
    """Block owning ``index`` under :func:`block_ranges` (inverse lookup)."""
    if not (0 <= index < total):
        raise ConfigurationError(f"index {index} outside range(0, {total})")
    base, extra = divmod(total, parts)
    boundary = extra * (base + 1)
    if index < boundary:
        return index // (base + 1)
    if base == 0:
        raise ConfigurationError(f"index {index} unowned: more parts than items")
    return extra + (index - boundary) // base


@dataclass(frozen=True)
class HardUnitPartition:
    """Partition of the hard weight task's (Doppler bin, segment) units.

    The hard weight computation has ``6 * N_hard`` independent units — one
    recursive QR per (range segment, hard bin) — which is how the paper
    assigns 112 nodes to a task with only 56 hard bins (Table 7, case 1).
    Unit ``u`` corresponds to bin position ``u // S`` and segment
    ``u % S``; bin-major ordering keeps a rank's units clustered on few
    bins, minimizing its training/weight communication partners.
    """

    bin_ids: tuple[int, ...]
    num_segments: int
    parts: int

    def __post_init__(self):
        if self.num_segments < 1:
            raise ConfigurationError(
                f"num_segments must be >= 1, got {self.num_segments}"
            )
        if self.parts < 1 or self.parts > self.num_units:
            raise ConfigurationError(
                f"cannot split {self.num_units} (bin, segment) units into "
                f"{self.parts} parts"
            )

    @property
    def num_units(self) -> int:
        return len(self.bin_ids) * self.num_segments

    def units_of(self, part: int) -> np.ndarray:
        """Unit indices owned by ``part``."""
        lo, hi = block_ranges(self.num_units, self.parts)[part]
        return np.arange(lo, hi)

    def size_of(self, part: int) -> int:
        lo, hi = block_ranges(self.num_units, self.parts)[part]
        return hi - lo

    def decompose(self, units) -> tuple[np.ndarray, np.ndarray]:
        """(bin positions, segments) of unit indices."""
        units = np.asarray(units)
        return units // self.num_segments, units % self.num_segments

    def bins_of_units(self, units) -> np.ndarray:
        """Absolute bin ids of unit indices."""
        bin_pos, _seg = self.decompose(units)
        return np.asarray(self.bin_ids)[bin_pos]

    def segment_bins_of(self, part: int) -> dict[int, np.ndarray]:
        """segment -> sorted absolute bin ids ``part`` trains for it."""
        units = self.units_of(part)
        bin_pos, segs = self.decompose(units)
        ids = np.asarray(self.bin_ids)
        out: dict[int, np.ndarray] = {}
        for seg in np.unique(segs):
            out[int(seg)] = ids[np.sort(bin_pos[segs == seg])]
        return out


@dataclass(frozen=True)
class BlockPartition:
    """A named block partition with id-array helpers.

    ``ids`` is the ordered array of *global* identifiers being partitioned
    (e.g. absolute Doppler bin numbers); part ``p`` owns the contiguous
    slice of ``ids`` given by :func:`block_ranges`.
    """

    ids: tuple[int, ...]
    parts: int

    def __post_init__(self):
        if self.parts < 1:
            raise ConfigurationError(f"parts must be >= 1, got {self.parts}")
        if self.parts > max(len(self.ids), 1):
            raise ConfigurationError(
                f"cannot split {len(self.ids)} items into {self.parts} parts"
            )

    @classmethod
    def of_range(cls, total: int, parts: int) -> "BlockPartition":
        """Partition of ``range(total)``."""
        return cls(tuple(range(total)), parts)

    @classmethod
    def of_ids(cls, ids, parts: int) -> "BlockPartition":
        """Partition of an explicit id sequence (e.g. the hard-bin list)."""
        return cls(tuple(int(i) for i in ids), parts)

    def bounds(self, part: int) -> tuple[int, int]:
        """(start, stop) positions within ``ids`` owned by ``part``."""
        if not (0 <= part < self.parts):
            raise ConfigurationError(f"part {part} outside range(0, {self.parts})")
        return block_ranges(len(self.ids), self.parts)[part]

    def ids_of(self, part: int) -> np.ndarray:
        """Global ids owned by ``part``."""
        lo, hi = self.bounds(part)
        return np.asarray(self.ids[lo:hi])

    def size_of(self, part: int) -> int:
        """Number of items owned by ``part``."""
        lo, hi = self.bounds(part)
        return hi - lo

    def owner_of_position(self, position: int) -> int:
        """Part owning the item at ``position`` within ``ids``."""
        return block_of(len(self.ids), self.parts, position)

    def position_of_id(self, global_id: int) -> int:
        """Position of a global id within ``ids`` (raises if absent)."""
        try:
            return self.ids.index(int(global_id))
        except ValueError:
            raise ConfigurationError(f"id {global_id} not in partition") from None

    def intersect(self, part: int, other_ids) -> np.ndarray:
        """Global ids owned by ``part`` that also appear in ``other_ids``.

        ``other_ids`` may contain duplicates; the result is sorted unique.
        """
        mine = self.ids_of(part)
        return np.intersect1d(mine, np.asarray(other_ids))

    def local_positions(self, part: int, global_ids) -> np.ndarray:
        """Positions of ``global_ids`` within ``part``'s local block."""
        mine = self.ids_of(part)
        lookup = {int(g): i for i, g in enumerate(mine)}
        try:
            return np.asarray([lookup[int(g)] for g in np.asarray(global_ids).ravel()])
        except KeyError as exc:
            raise ConfigurationError(f"id {exc} not owned by part {part}") from None
