"""Timing capture and the paper's performance equations.

Each task records, per pipeline iteration, the Figure 10 decomposition:
``recv = t1 - t0`` (waiting + unpacking), ``comp = t2 - t1``,
``send = t3 - t2`` (packing + posting + waiting for the previous
iteration's sends).  Aggregation follows Section 7: "timing results for
processing one CPI data were obtained by accumulating the execution time
for the middle 20 CPIs and then averaging it ... do not include the effect
of the initial setup (first 3 CPIs) and final iterations (last 2 CPIs)."

The module also implements the paper's equations:

* (1) ``throughput = 1 / max_i T_i``
* (2) ``latency   = T_0 + max(T_3, T_4) + T_5 + T_6``   (upper bound)
* (3) ``real latency`` excludes receive-side idle time — measured here
  directly from event timestamps, as the paper does with its start/stop
  signal between the first and last tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, Iterable, Optional

from repro.core.assignment import TASK_NAMES
from repro.errors import ConfigurationError

#: CPIs dropped from the head of a run when aggregating (pipeline fill).
WARMUP_CPIS = 3
#: CPIs dropped from the tail (pipeline drain).
COOLDOWN_CPIS = 2


@dataclass(frozen=True)
class TaskTiming:
    """One rank's Figure 10 measurement for one CPI."""

    cpi_index: int
    rank: int
    t0: float
    t1: float
    t2: float
    t3: float

    @property
    def recv(self) -> float:
        return self.t1 - self.t0

    @property
    def comp(self) -> float:
        return self.t2 - self.t1

    @property
    def send(self) -> float:
        return self.t3 - self.t2

    @property
    def total(self) -> float:
        return self.t3 - self.t0


def steady_state_slice(num_cpis: int) -> tuple[int, int]:
    """CPI index range [lo, hi) used for averaging (paper's middle CPIs)."""
    if num_cpis >= WARMUP_CPIS + COOLDOWN_CPIS + 1:
        return WARMUP_CPIS, num_cpis - COOLDOWN_CPIS
    # Short test runs: keep everything except the very first iteration when
    # we can afford to (it carries the pipeline-fill transient).
    if num_cpis >= 3:
        return 1, num_cpis
    return 0, num_cpis


@dataclass
class TaskMetrics:
    """Aggregated timings of one task (all its ranks)."""

    task: str
    num_nodes: int
    recv: float
    comp: float
    send: float

    @property
    def total(self) -> float:
        return self.recv + self.comp + self.send

    def row(self) -> str:
        """One Table 7-style line."""
        return (
            f"{self.task:<18} {self.num_nodes:>7} {self.recv:>8.4f} "
            f"{self.comp:>8.4f} {self.send:>8.4f} {self.total:>8.4f}"
        )

    @classmethod
    def aggregate(
        cls,
        task: str,
        num_nodes: int,
        timings: Iterable[TaskTiming],
        num_cpis: int,
    ) -> "TaskMetrics":
        """Average each phase over ranks and steady-state CPIs."""
        lo, hi = steady_state_slice(num_cpis)
        kept = [t for t in timings if lo <= t.cpi_index < hi]
        if not kept:
            raise ConfigurationError(f"no steady-state timings for task {task}")
        # Per-CPI mean over ranks first (the phases of one iteration belong
        # together), then mean over CPIs.
        by_cpi: Dict[int, list[TaskTiming]] = {}
        for t in kept:
            by_cpi.setdefault(t.cpi_index, []).append(t)
        recvs, comps, sends = [], [], []
        for cpi_timings in by_cpi.values():
            recvs.append(mean(t.recv for t in cpi_timings))
            comps.append(mean(t.comp for t in cpi_timings))
            sends.append(mean(t.send for t in cpi_timings))
        return cls(
            task=task,
            num_nodes=num_nodes,
            recv=mean(recvs),
            comp=mean(comps),
            send=mean(sends),
        )


@dataclass
class PipelineMetrics:
    """Whole-pipeline performance: per-task metrics + measured end-to-end."""

    tasks: Dict[str, TaskMetrics]
    #: Measured throughput: inverse mean interval between successive report
    #: completions over the steady-state CPIs (CPIs / second).
    measured_throughput: float
    #: Measured latency: mean (report completion - input availability) over
    #: the steady-state CPIs (seconds).
    measured_latency: float

    # -- the paper's equations ---------------------------------------------------
    @property
    def equation_throughput(self) -> float:
        """Equation (1): inverse of the largest per-task total time."""
        slowest = max(m.total for m in self.tasks.values())
        return 1.0 / slowest if slowest > 0 else float("inf")

    @property
    def equation_latency(self) -> float:
        """Equation (2): T0 + max(T3, T4) + T5 + T6 (upper bound)."""
        t = {name: m.total for name, m in self.tasks.items()}
        return (
            t["doppler"]
            + max(t["easy_beamform"], t["hard_beamform"])
            + t["pulse_compression"]
            + t["cfar"]
        )

    @property
    def bottleneck_task(self) -> str:
        """The task doing the most *work* per CPI (limits throughput).

        In pipelined steady state every task's total cycle time equalizes
        to the pipeline period (waiting absorbs the slack), so the
        bottleneck is identified by its own work — computation plus
        packing/sending — not by the total: "one bottleneck task can be
        seen when its computation time is relatively much larger than the
        rest of the tasks" (Section 7.3).
        """
        return max(self.tasks, key=lambda name: self.tasks[name].comp + self.tasks[name].send)

    def table(self, title: str = "") -> str:
        """Printable Table 7-style block."""
        lines = []
        if title:
            lines.append(title)
        lines.append(
            f"{'task':<18} {'# nodes':>7} {'recv':>8} {'comp':>8} {'send':>8} {'total':>8}"
        )
        lines.append("-" * 62)
        for name in TASK_NAMES:
            if name in self.tasks:
                lines.append(self.tasks[name].row())
        lines.append(f"throughput  measured {self.measured_throughput:8.4f} CPIs/s"
                     f"   equation {self.equation_throughput:8.4f} CPIs/s")
        lines.append(f"latency     measured {self.measured_latency:8.4f} s"
                     f"        equation {self.equation_latency:8.4f} s")
        return "\n".join(lines)
