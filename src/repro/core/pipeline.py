"""STAPPipeline: build, run, and measure the parallel pipelined system.

One :class:`STAPPipeline` instance corresponds to one of the paper's
experimental configurations: an algorithm shape, a processor assignment, a
machine, and a CPI count.  ``mode`` selects the execution backend:

``"modeled"``
    Payloads are sizes, computation is flops — fast, used for the paper's
    timing tables at 59-236 nodes.
``"functional"``
    Real CPI cubes flow through the simulated ranks and the pipeline emits
    real detection reports, verified against the sequential reference —
    used by integration tests and demos at reduced problem sizes.

Both modes share every line of task/redistribution/scheduling code; the
virtual-time behaviour is identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, Optional

from repro.core.assignment import Assignment, TASK_NAMES
from repro.core.layout import PipelineLayout
from repro.core.metrics import (
    PipelineMetrics,
    TaskMetrics,
    steady_state_slice,
)
from repro.core.task import Collector
from repro.core.tasks import TASK_CLASSES
from repro.des import Simulator
from repro.errors import ConfigurationError
from repro.machine import Machine, afrl_paragon
from repro.mpi import World
from repro.obs import TraceSink
from repro.perf import PerfReport, snapshot_counters
from repro.radar.datacube import CPIStream
from repro.radar.parameters import STAPParams
from repro.stap.detection import DetectionReport
from repro.stap.plan import KernelPlan
from repro.stap.reference import default_steering

#: Raw cubes kept alive at once in functional mode (double buffering means
#: neighbouring iterations are in flight together; 6 is comfortably safe).
_CUBE_CACHE_DEPTH = 6


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    metrics: PipelineMetrics
    reports: list[DetectionReport]
    collector: Collector
    num_cpis: int
    assignment: Assignment
    #: Total simulated wall-clock of the run (seconds).
    makespan: float
    #: Network counters: (messages, bytes).
    network_messages: int = 0
    network_bytes: int = 0
    #: Simulator wall-clock report; only set when the pipeline was built
    #: with ``perf=True``.
    perf: Optional[PerfReport] = None
    #: Observability sink (spans, message records, link stats); only set
    #: when the pipeline was built with ``trace=True`` or a sink.
    trace: Optional[TraceSink] = None


class STAPPipeline:
    """The parallel pipelined STAP application on a simulated machine."""

    def __init__(
        self,
        params: STAPParams,
        assignment: Assignment,
        machine: Optional[Machine] = None,
        mode: str = "modeled",
        stream: Optional[CPIStream] = None,
        num_cpis: int = 25,
        contention: str = "endpoint",
        azimuth_cycle: int = 1,
        steering=None,
        input_rate: Optional[float] = None,
        double_buffering: bool = True,
        collect_training: bool = True,
        perf: bool = False,
        trace=False,
        backend: Optional[str] = None,
    ):
        """``input_rate``: CPIs/second delivered by the radar front-end
        (None = data always available; the pipeline self-paces, measuring
        peak throughput).

        ``double_buffering``: the paper's Figure 10 communication/compute
        overlap; set False for the synchronous ablation.

        ``collect_training``: the paper's data-collection optimization on
        the Doppler -> weight edges; set False for the redundant-data
        ablation.

        ``perf``: attach a :class:`~repro.perf.PerfReport` (simulator
        wall-clock cost) to the result.  Off by default; when off, the
        run path does not touch the host clock at all.

        ``trace``: observability.  ``True`` attaches a fresh
        :class:`~repro.obs.TraceSink`; a sink instance is used as-is
        (e.g. a bounded one).  The sink records the span tree of every
        task iteration, per-message MPI lifecycles, and per-link network
        stats — purely passively, so modeled timestamps are identical
        with tracing on or off.  Off by default (one ``is None`` check
        per iteration/message/transfer).

        ``backend``: simulator core (see :mod:`repro.des.backends`):
        ``"python"`` (reference, the default), ``"lowered"`` (plan-lowered
        hot path), ``"compiled"`` (C extension; errors if not built), or
        ``"auto"`` (fastest available).  All backends produce bit-identical
        results; the resolved name is available as ``self.backend``."""
        if mode not in ("modeled", "functional"):
            raise ConfigurationError(f"mode must be 'modeled' or 'functional', got {mode!r}")
        if num_cpis < 1:
            raise ConfigurationError(f"num_cpis must be >= 1, got {num_cpis}")
        if azimuth_cycle < 1:
            raise ConfigurationError(f"azimuth_cycle must be >= 1, got {azimuth_cycle}")
        self.params = params
        self.assignment = assignment
        self.machine = machine or afrl_paragon()
        self.machine.check_node_budget(assignment.total_nodes)
        self.mode = mode
        self.functional = mode == "functional"
        if self.functional:
            if stream is None:
                raise ConfigurationError("functional mode requires a CPIStream")
            if stream.azimuth_cycle != azimuth_cycle:
                raise ConfigurationError(
                    f"stream azimuth cycle {stream.azimuth_cycle} != "
                    f"pipeline azimuth_cycle {azimuth_cycle}"
                )
        self.stream = stream
        self.num_cpis = num_cpis
        self.contention = contention
        self.azimuth_cycle = azimuth_cycle
        if input_rate is not None and input_rate <= 0:
            raise ConfigurationError(f"input_rate must be positive, got {input_rate}")
        self.input_rate = input_rate
        self.double_buffering = double_buffering
        self.collect_training = collect_training
        self.perf = perf
        from repro.des.backends import resolve_backend

        #: The backend name as requested (None/"auto" preserved for clones).
        self.requested_backend = backend
        #: The resolved, concrete backend this pipeline will run on.
        self.backend = resolve_backend(backend)
        # Explicit identity checks: an *empty* TraceSink has ``__len__`` 0
        # and is falsy, but a caller passing one still wants tracing.
        if trace is True:
            self.trace_sink: Optional[TraceSink] = TraceSink()
        elif trace is False or trace is None:
            self.trace_sink = None
        else:
            self.trace_sink = trace
        #: True when the steering matrix is the deterministic function of
        #: ``params`` (lets run_measured's probe route through the result
        #: cache; a caller-supplied steering matrix is not content-keyed).
        self._default_steering = steering is None
        self.layout = PipelineLayout(
            params, assignment, collect_training=collect_training
        )
        # Fail fast if any rank's working set exceeds node memory (64 MiB
        # on the Paragon).
        self.layout.validate_memory(self.machine.node.memory_bytes)
        #: Per-run kernel constants, computed once and shared by every
        #: functional task (and only built when the numerics actually run).
        #: Default-steering plans are memoized across pipelines (pure
        #: functions of the frozen params — see repro.stap.plan.default_plan).
        if not self.functional:
            self.steering = (
                default_steering(params) if steering is None else steering
            )
            self.kernel_plan = None
        elif steering is None:
            from repro.stap.plan import default_plan

            self.kernel_plan = default_plan(params)
            self.steering = self.kernel_plan.steering
        else:
            self.steering = steering
            self.kernel_plan = KernelPlan.build(params, self.steering)
        self._cube_cache: Dict[int, object] = {}

    # -- functional data source ---------------------------------------------------
    def _cube(self, cpi_index: int):
        cube = self._cube_cache.get(cpi_index)
        if cube is None:
            cube = self.stream.cube(cpi_index)
            self._cube_cache[cpi_index] = cube
            for old in [i for i in self._cube_cache if i <= cpi_index - _CUBE_CACHE_DEPTH]:
                del self._cube_cache[old]
            # The window eviction above only drops indices *behind* the
            # newest request; an out-of-order request (an older CPI arriving
            # after newer ones are cached) would otherwise grow the cache
            # past its depth.  Enforce the bound explicitly.
            while len(self._cube_cache) > _CUBE_CACHE_DEPTH:
                del self._cube_cache[min(self._cube_cache)]
        return cube

    # -- construction ------------------------------------------------------------------
    def _build_tasks(self, collector: Collector) -> Dict[int, object]:
        """world rank -> task instance."""
        tasks: Dict[int, object] = {}
        common = dict(
            num_cpis=self.num_cpis,
            collector=collector,
            functional=self.functional,
            weight_delay=self.azimuth_cycle,
            double_buffering=self.double_buffering,
            obs=self.trace_sink,
            plan=self.kernel_plan,
        )
        cost = self.machine.network_cost
        pack = self.machine.packing_cost
        for task_name in TASK_NAMES:
            cls = TASK_CLASSES[task_name]
            for local_rank in range(self.assignment.count_of(task_name)):
                kwargs = dict(common)
                if task_name == "doppler":
                    nbytes = self.layout.sensor_bytes_of(local_rank)
                    kwargs["sensor_seconds"] = (
                        cost.startup_s
                        + cost.per_byte_s * nbytes
                        + pack.copy_time(nbytes, strided=False)
                    )
                    kwargs["source"] = self._cube if self.functional else None
                    if self.input_rate is not None:
                        kwargs["input_period"] = 1.0 / self.input_rate
                elif task_name in (
                    "easy_weight",
                    "hard_weight",
                    "easy_beamform",
                    "hard_beamform",
                ):
                    kwargs["steering"] = self.steering
                world_rank = self.layout.world_rank(task_name, local_rank)
                tasks[world_rank] = cls(self.layout, local_rank, **kwargs)
        return tasks

    # -- execution ---------------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Simulate the whole run and aggregate the paper's measurements."""
        from repro.des.backends import get_backend
        from repro.obs.metrics import (
            kernel_stats_snapshot,
            metrics_registry,
            record_pipeline_run,
        )

        # Pull-based metrics: snapshot the kernel counters up front, then
        # flush everything the run already counted *after* sim.run(), so
        # an enabled registry can never perturb a virtual timestamp.
        kernel_before = (
            kernel_stats_snapshot() if metrics_registry.enabled else None
        )
        engine = get_backend(self.backend)
        sim = engine.create_simulator()
        world = World(
            sim,
            self.machine,
            num_ranks=self.assignment.total_nodes,
            contention=self.contention,
            backend=engine,
        )
        collector = Collector()
        tasks = self._build_tasks(collector)
        sink = self.trace_sink
        if sink is not None:
            sink.bind(sim)
            world.obs = sink
            world.network.obs = sink
            sink.meta.update(
                label=f"{self.assignment.name or 'pipeline'} [{self.mode}]",
                num_cpis=self.num_cpis,
                contention=self.contention,
                ranks={
                    world_rank: f"{task.name}[{task.local_rank}]"
                    for world_rank, task in tasks.items()
                },
            )
        for world_rank, task in tasks.items():
            world.spawn(
                world_rank,
                self._rank_program(task),
                name=f"{task.name}[{task.local_rank}]",
            )
        if self.perf:
            before = snapshot_counters(sim, world)
            wall_start = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - wall_start
            perf_report = PerfReport.from_snapshots(
                before,
                snapshot_counters(sim, world),
                wall_seconds=wall,
                sim_seconds=sim.now,
                num_cpis=self.num_cpis,
                label=f"{self.assignment.name or 'pipeline'} [{self.mode}]",
            )
        else:
            sim.run()
            perf_report = None

        if sink is not None:
            sink.meta["makespan"] = sim.now
        metrics = self._aggregate(collector)
        if metrics_registry.enabled:
            record_pipeline_run(
                self, sim, world, metrics,
                makespan=sim.now, kernel_before=kernel_before,
            )
        reports = self._reports(collector)
        return PipelineResult(
            metrics=metrics,
            reports=reports,
            collector=collector,
            num_cpis=self.num_cpis,
            assignment=self.assignment,
            makespan=sim.now,
            network_messages=world.network.messages_sent,
            network_bytes=world.network.bytes_sent,
            perf=perf_report,
            trace=sink,
        )

    @staticmethod
    def _rank_program(task):
        def program(ctx):
            return task.run(ctx)

        return program

    def _clone(self, input_rate=None, trace=False) -> "STAPPipeline":
        """A pipeline with identical configuration (used by run_measured)."""
        return STAPPipeline(
            self.params,
            self.assignment,
            machine=self.machine,
            mode=self.mode,
            stream=self.stream,
            num_cpis=self.num_cpis,
            contention=self.contention,
            azimuth_cycle=self.azimuth_cycle,
            steering=self.steering,
            input_rate=input_rate if input_rate is not None else self.input_rate,
            double_buffering=self.double_buffering,
            collect_training=self.collect_training,
            perf=self.perf,
            trace=trace,
            backend=self.requested_backend,
        )

    # -- measurement -------------------------------------------------------------------
    def _aggregate(self, collector: Collector) -> PipelineMetrics:
        task_metrics = {}
        for task_name in TASK_NAMES:
            timings = collector.timings.get(task_name, [])
            task_metrics[task_name] = TaskMetrics.aggregate(
                task_name,
                self.assignment.count_of(task_name),
                timings,
                self.num_cpis,
            )
        lo, hi = steady_state_slice(self.num_cpis)
        done = [collector.report_done[i] for i in range(lo, hi)]
        starts = [collector.input_start[i] for i in range(lo, hi)]
        if len(done) >= 2:
            throughput = (len(done) - 1) / (done[-1] - done[0])
        else:
            throughput = float("nan")
        latency = mean(d - s for d, s in zip(done, starts))
        return PipelineMetrics(
            tasks=task_metrics,
            measured_throughput=throughput,
            measured_latency=latency,
        )

    def run_measured(self) -> PipelineResult:
        """Two-phase measurement: probe throughput, then re-run paced.

        An unpaced run drives the pipeline at peak rate, which (like any
        open-loop queueing system at capacity) accumulates backlog and
        inflates per-CPI latency.  The real system's CPIs arrived at the
        radar's rate, so latency is measured with the input paced at the
        *measured* sustainable throughput: phase 1 probes it, phase 2
        re-runs with that input rate and reports both numbers — the
        methodology behind the paper's Table 8 "real" rows.
        """
        sink = self.trace_sink
        # Identical configurations probe to identical throughputs, so the
        # probe is served by the content-addressed result cache when the
        # configuration is coverable by its key (modeled mode, default
        # steering); see repro.exec.probe_throughput.
        from repro.exec import probe_throughput

        throughput = probe_throughput(self)
        if throughput is None:
            if sink is None:
                probe = self.run()
            else:
                # Trace the paced (reported) run, not the probe: one sink
                # must describe one run or its timestamps would restart
                # mid-stream.
                probe = self._clone(trace=False).run()
            throughput = probe.metrics.measured_throughput
        # ``sink is not None``, not truthiness: a fresh TraceSink is empty
        # (``__len__`` == 0, hence falsy) and used to be silently dropped
        # here, so traced measured runs never produced timelines.
        paced = self._clone(
            input_rate=throughput, trace=sink if sink is not None else False
        )
        result = paced.run()
        # The paced run's throughput is capped by its own input; report the
        # probe's (peak) throughput with the paced latency.
        result.metrics.measured_throughput = throughput
        return result

    # -- real execution ----------------------------------------------------------
    def run_parallel(self, workers: Optional[int] = None, depth: int = 2,
                     plan=None, timeout: Optional[float] = None):
        """Execute this functional configuration for real on local cores.

        Where :meth:`run` *simulates* the paper's parallel pipeline, this
        runs it: one OS process per stage replica, shared-memory double
        buffers between stages (see :mod:`repro.rt`).  The stage
        replication is scaled from this pipeline's processor assignment
        onto ``workers`` processes (``plan`` overrides).  Detections are
        bit-identical to the sequential reference and to this pipeline's
        own functional reports.

        Returns a :class:`repro.rt.runtime.RtResult` (host-time
        throughput/latency — not simulated timestamps).
        """
        if not self.functional:
            raise ConfigurationError(
                "run_parallel executes real kernels; build the pipeline "
                "with mode='functional' (run() simulates modeled mode)")
        from repro.rt import ParallelSTAP

        return ParallelSTAP(
            self.params,
            self.stream,
            num_cpis=self.num_cpis,
            azimuth_cycle=self.azimuth_cycle,
            assignment=self.assignment,
            workers=workers,
            plan=plan,
            kernel_plan=self.kernel_plan,
            depth=depth,
        ).run(timeout=timeout)

    def _reports(self, collector: Collector) -> list[DetectionReport]:
        if not self.functional:
            return []
        reports = []
        for cpi in range(self.num_cpis):
            detections = tuple(sorted(collector.detections.get(cpi, [])))
            reports.append(
                DetectionReport(
                    cpi_index=cpi,
                    detections=detections,
                    completed_at=collector.report_done.get(cpi, float("nan")),
                )
            )
        return reports
