"""Public verification helper: parallel pipeline vs sequential reference.

Exposes, as library API, the central correctness check the test suite
applies: for the same CPI stream, the parallel pipelined system must report
exactly the detections of the sequential reference implementation,
regardless of the processor assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.assignment import Assignment
from repro.core.pipeline import STAPPipeline
from repro.machine import Machine
from repro.radar.datacube import CPIStream
from repro.radar.parameters import STAPParams
from repro.stap.reference import SequentialSTAP


@dataclass
class VerificationReport:
    """Outcome of one pipeline-vs-reference comparison."""

    num_cpis: int
    matched_cpis: int
    mismatched_cpis: tuple[int, ...]
    total_detections: int

    @property
    def passed(self) -> bool:
        return not self.mismatched_cpis

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        detail = (
            f"{self.matched_cpis}/{self.num_cpis} CPIs identical, "
            f"{self.total_detections} detections"
        )
        if self.mismatched_cpis:
            detail += f"; mismatches at CPIs {list(self.mismatched_cpis)}"
        return f"{status}: {detail}"


def verify_pipeline(
    params: STAPParams,
    assignment: Assignment,
    stream: CPIStream,
    num_cpis: int = 4,
    machine: Optional[Machine] = None,
    azimuth_cycle: int = 1,
    **pipeline_kwargs,
) -> VerificationReport:
    """Run both implementations on ``stream`` and compare detections.

    Extra keyword arguments reach :class:`STAPPipeline` (e.g.
    ``double_buffering=False`` to verify an ablated configuration still
    computes the same answers).
    """
    pipeline = STAPPipeline(
        params,
        assignment,
        machine=machine,
        mode="functional",
        stream=stream,
        num_cpis=num_cpis,
        azimuth_cycle=azimuth_cycle,
        **pipeline_kwargs,
    )
    # One shared KernelPlan: the reference verifies the pipeline's own
    # precomputed constants, and nothing is built twice.
    reference = SequentialSTAP(params, plan=pipeline.kernel_plan).process_stream(
        stream.take(num_cpis)
    )
    result = pipeline.run()

    mismatches = []
    detections = 0
    for ref_report, pipe_report in zip(reference, result.reports):
        detections += len(pipe_report)
        if not ref_report.same_detections(pipe_report):
            mismatches.append(ref_report.cpi_index)
    return VerificationReport(
        num_cpis=num_cpis,
        matched_cpis=num_cpis - len(mismatches),
        mismatched_cpis=tuple(mismatches),
        total_detections=detections,
    )
