"""Deterministic random-number plumbing.

Every stochastic component (clutter, noise, jammers) takes a seed and derives
independent child streams with :func:`child_seed`, so a whole experiment is
reproducible from one integer and adding a new consumer never perturbs the
streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def rng_from_seed(seed: int | None) -> np.random.Generator:
    """Create a NumPy ``Generator`` from an integer seed (``None`` = OS entropy)."""
    return np.random.default_rng(seed)


def child_seed(seed: int, *labels) -> int:
    """Derive a stable 63-bit child seed from a parent seed and labels.

    The derivation hashes ``(seed, *labels)`` with SHA-256, so streams for
    different labels are statistically independent and insensitive to the
    order in which other streams are created.
    """
    text = repr((int(seed),) + tuple(str(x) for x in labels)).encode()
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)
