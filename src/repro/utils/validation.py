"""Argument-validation helpers shared across the package.

All raise :class:`repro.errors.ConfigurationError` so that bad user input
surfaces as a library error, distinct from internal assertion failures.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_positive_int(value, name: str) -> int:
    """Return ``value`` if it is a positive integer, else raise."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(value, name: str) -> float:
    """Return ``value`` if it is a non-negative number, else raise."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(value, name: str, low, high) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Return ``value`` if it lies in the open interval (0, 1), else raise."""
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ConfigurationError(f"{name} must be in (0, 1), got {value}")
    return value
