"""Small shared helpers: unit formatting, validation, deterministic RNG."""

from repro.utils.units import format_bytes, format_seconds, format_flops
from repro.utils.validation import (
    check_positive_int,
    check_nonnegative,
    check_in_range,
    check_probability,
)
from repro.utils.rng import rng_from_seed, child_seed

__all__ = [
    "format_bytes",
    "format_seconds",
    "format_flops",
    "check_positive_int",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
    "rng_from_seed",
    "child_seed",
]
