"""Human-readable formatting of bytes / seconds / flops.

These are used by example scripts and the benchmark harness when printing
paper-style tables; they intentionally mirror the precision the paper uses
(4 decimal places for seconds).
"""

from __future__ import annotations

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]
_FLOP_UNITS = ["flops", "Kflops", "Mflops", "Gflops", "Tflops"]


def format_bytes(nbytes: float) -> str:
    """Format a byte count with a binary-prefix unit, e.g. ``16.78 MiB``."""
    value = float(nbytes)
    for unit in _BYTE_UNITS:
        if abs(value) < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper's tables do.

    Sub-second values are printed with 4 decimals (``.0874 s``); larger
    values with 3 significant sub-second digits (``2.350 s``).
    """
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1.0:
        return f"{seconds:.4f} s"
    if seconds < 1000.0:
        return f"{seconds:.3f} s"
    return f"{seconds:.1f} s"


def format_flops(flops: float) -> str:
    """Format an operation count with a decimal-prefix unit."""
    value = float(flops)
    for unit in _FLOP_UNITS:
        if abs(value) < 1000.0 or unit == _FLOP_UNITS[-1]:
            if unit == "flops":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")
