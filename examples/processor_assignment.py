#!/usr/bin/env python
"""Explore the throughput-vs-latency processor-assignment tradeoff.

Section 4.1.2 of the paper: "tradeoffs exist between assigning processors
to maximize the overall throughput and assigning processors to minimize a
single data set's response time."  This example sweeps node budgets,
optimizes an assignment for each objective with the analytic model, and
validates the most interesting points against the discrete-event
simulation.  It also shows that the optimizer beats the paper's hand-tuned
case 2 at the same 118-node budget.

Run:  python examples/processor_assignment.py
"""

from repro import CASE2, STAPParams, STAPPipeline
from repro.scheduling import (
    AnalyticPipelineModel,
    optimize_latency,
    optimize_throughput,
)


def main() -> None:
    params = STAPParams.paper()
    model = AnalyticPipelineModel(params)

    print("budget sweep (analytic model):")
    print(f"{'nodes':>6} {'max-throughput':>16} {'min-latency':>13}   assignment (throughput-opt)")
    for budget in (30, 59, 118, 236, 320):
        thr_opt = optimize_throughput(model, budget)
        lat_opt = optimize_latency(model, budget, min_throughput=1.0)
        print(
            f"{budget:>6} {model.throughput(thr_opt):>13.3f}/s "
            f"{model.latency(lat_opt):>11.4f} s   {thr_opt.counts()}"
        )
    print()

    print("optimizer vs the paper's hand-tuned case 2 (118 nodes):")
    optimized = optimize_throughput(model, 118, name="optimized (118 nodes)")
    for assignment in (CASE2, optimized):
        result = STAPPipeline(params, assignment, num_cpis=15).run()
        print(
            f"  {assignment.name:28s} counts={assignment.counts()}  "
            f"simulated throughput {result.metrics.measured_throughput:.3f} CPIs/s"
        )
    print()

    print("latency-first allocation starves the weight tasks (they are off")
    print("the latency critical path thanks to the temporal-dependency trick):")
    lat = optimize_latency(model, 118, min_throughput=None)
    print(f"  {lat.counts()}  (easy/hard weight get 1 node each)")
    lat_floor = optimize_latency(model, 118, min_throughput=3.0)
    print(f"  with a 3 CPIs/s throughput floor: {lat_floor.counts()}")


if __name__ == "__main__":
    main()
