#!/usr/bin/env python
"""Visualize the pipeline's steady state as an ASCII Gantt chart.

Renders three mid-run CPIs of the 59-node case-3 assignment: all seven
tasks computing concurrently on different CPIs — the temporal parallelism
the paper's Figure 3 sketches — plus a per-task utilization breakdown and
bottleneck diagnosis.

Run:  python examples/pipeline_timeline.py
"""

from repro import CASE3, STAPParams, STAPPipeline
from repro.core.assignment import TASK_NAMES
from repro.core.timeline import render_timeline, utilization
from repro.scheduling import analyze_bottleneck


def main() -> None:
    result = STAPPipeline(STAPParams.paper(), CASE3, num_cpis=10).run()

    print(render_timeline(result.collector, start_cpi=4, end_cpi=7, width=100))
    print()

    print("per-task utilization (fraction of cycle):")
    print(f"{'task':<20} {'recv/wait':>10} {'compute':>9} {'send/pack':>10}")
    for task in TASK_NAMES:
        u = utilization(result.collector, task)
        print(f"{task:<20} {u['recv']:>9.0%} {u['comp']:>8.0%} {u['send']:>9.0%}")
    print()

    print(analyze_bottleneck(result.metrics).summary())


if __name__ == "__main__":
    main()
