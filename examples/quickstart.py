#!/usr/bin/env python
"""Quickstart: process a synthetic CPI stream through the STAP chain.

Generates airborne-radar data (ground clutter + injected targets + noise),
runs the sequential PRI-staggered post-Doppler STAP reference, and prints
the detection reports — showing the adaptive weights finding targets that
conventional beamforming cannot see under 40 dB clutter.

Run:  python examples/quickstart.py
"""

from repro import (
    CPIStream,
    RadarScenario,
    STAPParams,
    SequentialSTAP,
    TargetTruth,
)
from repro.stap.doppler import nearest_bin


def main() -> None:
    # A mid-size configuration (the paper-scale default also works; this
    # keeps the demo under a second).
    params = STAPParams.small()

    targets = (
        # An "easy" Doppler target: well away from the clutter ridge.
        TargetTruth(range_cell=40, normalized_doppler=0.28, angle_deg=0.0, snr_db=5.0),
        # A "hard" Doppler target: inside the mainbeam-clutter Doppler
        # region, detectable only through the angular null STAP places.
        TargetTruth(range_cell=60, normalized_doppler=0.06, angle_deg=-10.0, snr_db=10.0),
    )
    scenario = RadarScenario(clutter_to_noise_db=40.0, targets=targets, seed=7)
    stream = CPIStream(params, scenario)

    print(f"STAP quickstart: {params.num_ranges} range cells x "
          f"{params.num_channels} channels x {params.num_pulses} pulses, "
          f"{params.num_beams} receive beams")
    print(f"clutter-to-noise ratio: {scenario.clutter_to_noise_db:.0f} dB")
    for t in targets:
        bin_n = nearest_bin(params, t.normalized_doppler)
        kind = "hard" if bin_n in set(params.hard_bins.tolist()) else "easy"
        print(f"  truth: range {t.range_cell}, Doppler bin {bin_n} ({kind}), "
              f"angle {t.angle_deg:+.0f} deg, SNR {t.snr_db:+.0f} dB")
    print()

    stap = SequentialSTAP(params)
    for cube in stream.take(5):
        report = stap.process(cube)
        label = "(quiescent weights — no training yet)" if cube.cpi_index == 0 else ""
        print(f"CPI {cube.cpi_index}: {len(report)} detections {label}")
        for det in report.strongest(4):
            print(f"    bin {det.doppler_bin:3d}  beam {det.beam}  "
                  f"range {det.range_cell:3d}  margin {det.margin_db:5.1f} dB")
    print()
    print("Note CPI 0: under 40 dB clutter the un-adapted beamformer sees "
          "nothing; one CPI of training later, both targets stand out.")


if __name__ == "__main__":
    main()
