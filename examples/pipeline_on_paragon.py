#!/usr/bin/env python
"""Run the parallel pipelined STAP on the simulated AFRL Paragon.

Reproduces the paper's Table 7: the three processor assignments (236, 118
and 59 nodes), each printing the per-task recv/comp/send decomposition and
the measured throughput and latency.  The simulation is the timing model —
calibrated per-kernel compute rates plus the 2-D-mesh network model — so
each case takes a few seconds of wall clock.

Run:  python examples/pipeline_on_paragon.py [--quick]
"""

import argparse

from repro import CASE1, CASE2, CASE3, STAPParams, STAPPipeline

#: Table 8 of the paper ("real" rows), for side-by-side comparison.
PAPER_TABLE8 = {
    "case1 (236 nodes)": (7.2659, 0.3622),
    "case2 (118 nodes)": (3.7959, 0.6805),
    "case3 (59 nodes)": (1.9898, 1.3530),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run only case 3 (59 nodes) for a fast demo",
    )
    parser.add_argument("--cpis", type=int, default=25, help="CPIs per run")
    args = parser.parse_args()

    params = STAPParams.paper()
    cases = (CASE3,) if args.quick else (CASE3, CASE2, CASE1)
    for case in cases:
        result = STAPPipeline(params, case, num_cpis=args.cpis).run_measured()
        print(result.metrics.table(f"=== {case.name} ==="))
        paper_thr, paper_lat = PAPER_TABLE8[case.name]
        print(f"paper (Table 8 real): throughput {paper_thr:.4f} CPIs/s, "
              f"latency {paper_lat:.4f} s")
        print(f"network: {result.network_messages} messages, "
              f"{result.network_bytes / 2**20:.1f} MiB per run")
        print()


if __name__ == "__main__":
    main()
