#!/usr/bin/env python
"""Trace Table 7's case 1 and write a Perfetto timeline of the run.

Runs the paper's 236-node case-1 assignment for 25 CPIs with tracing on,
writes ``table7_case1.trace.json`` (drag it into https://ui.perfetto.dev:
one track per rank with nested recv/comp/send slices, one per network
port, async arrows per message), and prints the bottleneck report — the
span-derived twin of the paper's Table 7 breakdown, plus which stage
limits throughput and where the interconnect queues.

Run:  python examples/trace_table7_case1.py
"""

from pathlib import Path

from repro import CASE1, STAPParams, STAPPipeline
from repro.obs import build_report, write_chrome_trace

OUT = Path(__file__).resolve().parent / "table7_case1.trace.json"


def main() -> None:
    pipeline = STAPPipeline(STAPParams.paper(), CASE1, num_cpis=25, trace=True)
    result = pipeline.run()

    print(build_report(result.trace).text())
    print()

    path = write_chrome_trace(result.trace, OUT, mesh=pipeline.machine.mesh)
    sink = result.trace
    print(f"wrote {path}")
    print(f"  {len(sink.spans)} spans, {len(sink.messages)} messages, "
          f"{len(sink.link_stats)} network resources")
    print("open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
