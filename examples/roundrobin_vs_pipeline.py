#!/usr/bin/env python
"""The paper's motivating comparison: round-robin vs parallel pipelining.

The 1996 RTMCARM flight experiments ran whole CPIs on independent nodes in
round-robin — throughput scales with nodes, but "the latency is limited by
what can be achieved using one compute node" (2.35 s).  The paper's
contribution is the parallel pipeline that improves *both*.  This example
simulates the two architectures across machine sizes.

Run:  python examples/roundrobin_vs_pipeline.py
"""

from repro import (
    RoundRobinSTAP,
    STAPParams,
    STAPPipeline,
    ruggedized_paragon,
)
from repro.scheduling import AnalyticPipelineModel, optimize_throughput


def main() -> None:
    params = STAPParams.paper()

    print("round-robin (RTMCARM architecture, 3-processor shared-memory nodes):")
    print(f"{'nodes':>6} {'throughput':>12} {'latency':>10}")
    for nodes in (5, 10, 25):
        result = RoundRobinSTAP(params, num_nodes=nodes).run(num_cpis=50)
        print(f"{nodes:>6} {result.throughput:>9.2f}/s {result.latency:>9.3f} s")
    print("  -> throughput scales, latency pinned at the single-node time")
    print("  (paper, Section 2: 'up to 10 CPIs per second ... latency of "
          "2.35 seconds')")
    print()

    print("parallel pipeline (this paper), same node budgets:")
    model = AnalyticPipelineModel(params)
    print(f"{'nodes':>6} {'throughput':>12} {'latency':>10}   assignment")
    for budget in (15, 30, 75):
        assignment = optimize_throughput(model, budget)
        result = STAPPipeline(params, assignment, num_cpis=15).run_measured()
        print(
            f"{budget:>6} {result.metrics.measured_throughput:>9.2f}/s "
            f"{result.metrics.measured_latency:>9.3f} s   {assignment.counts()}"
        )
    print("  -> latency now scales DOWN with nodes as well")
    print()
    print("Note the per-node throughput gap: the round-robin code runs")
    print("hand-tuned shared-memory kernels on node-local data, while the")
    print("pipeline pays message-passing pack/redistribute overheads — the")
    print("price of making ONE CPI's latency scale.  A deployment needing")
    print("both uses multiple pipelines (the paper's future work).")


if __name__ == "__main__":
    main()
