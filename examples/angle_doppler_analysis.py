#!/usr/bin/env python
"""Map the clutter ridge and the adaptive nulls in the angle-Doppler plane.

Prints an ASCII angle-Doppler power map of a synthetic CPI — the diagonal
clutter ridge airborne radars fight — then shows the adapted spatial
pattern of a hard-bin weight vector placing its null on the ridge at that
bin's Doppler while holding the mainbeam.

Run:  python examples/angle_doppler_analysis.py
"""

import numpy as np

from repro import CPIStream, RadarScenario, STAPParams
from repro.stap.angle_doppler import adapted_pattern, angle_doppler_spectrum
from repro.stap.doppler import doppler_filter
from repro.stap.hard_weights import HardWeightComputer, extract_hard_training
from repro.stap.reference import default_steering

GLYPHS = " .:-=+*#%@"


def ascii_map(spectrum_db, floor_db=-50.0):
    rows = []
    for row in spectrum_db:
        cells = np.clip((row - floor_db) / -floor_db, 0.0, 0.999)
        rows.append("".join(GLYPHS[int(c * len(GLYPHS))] for c in cells))
    return rows


def main() -> None:
    params = STAPParams.small()
    scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(), seed=3)
    cube = CPIStream(params, scenario).cube(0)

    angles = np.linspace(-60.0, 60.0, 25)
    spectrum, angles, dopplers = angle_doppler_spectrum(cube, angles_deg=angles)
    spectrum_db = 10 * np.log10(spectrum / spectrum.max())

    print("angle-Doppler power map (rows: angle -60..+60 deg; "
          "cols: Doppler -1/2..+1/2)")
    for angle, row in zip(angles, ascii_map(spectrum_db)):
        print(f"{angle:+6.0f}  {row}")
    print("        ^ the diagonal ridge: clutter Doppler = 0.5 sin(angle)")
    print()

    # Train hard weights, then show the adapted pattern for one hard bin.
    steering = default_steering(params)
    computer = HardWeightComputer(params, steering)
    for cpi in range(3):
        stag = doppler_filter(CPIStream(params, scenario).cube(cpi))
        computer.update(extract_hard_training(stag, params))
    weights = computer.compute_weights()

    bin_pos = 2  # a hard bin just off zero Doppler
    bin_id = int(params.hard_bins[bin_pos])
    ridge_angle = np.rad2deg(
        np.arcsin(np.clip(2.0 * bin_id / params.num_doppler, -1, 1))
    )
    pattern, pattern_angles = adapted_pattern(weights[0, bin_pos, :, 0], params)
    pattern_db = 10 * np.log10(np.maximum(pattern, 1e-12))

    print(f"adapted spatial pattern, hard Doppler bin {bin_id} "
          f"(ridge crosses near {ridge_angle:+.0f} deg):")
    for angle in range(-60, 61, 10):
        idx = int(np.argmin(np.abs(pattern_angles - angle)))
        bar = "#" * max(0, int((pattern_db[idx] + 60) / 2))
        marker = " <- ridge" if abs(angle - ridge_angle) < 6 else ""
        print(f"{angle:+6d}  {pattern_db[idx]:7.1f} dB  {bar}{marker}")


if __name__ == "__main__":
    main()
