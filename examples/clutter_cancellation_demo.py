#!/usr/bin/env python
"""Look inside the adaptive filter: clutter cancellation and SINR gain.

Prints, per processing stage, how much clutter power the beam-constrained
least-squares weights remove relative to quiescent (steering-only)
beamforming, and the resulting detectability of a target riding inside the
clutter Doppler region — the "hard" case the PRI-stagger exists for.

Run:  python examples/clutter_cancellation_demo.py
"""

import numpy as np

from repro import CPIStream, RadarScenario, STAPParams, TargetTruth
from repro.stap.beamform import beamform_easy, beamform_hard
from repro.stap.doppler import doppler_filter, nearest_bin
from repro.stap.easy_weights import EasyWeightComputer, extract_easy_training
from repro.stap.hard_weights import HardWeightComputer, extract_hard_training
from repro.stap.lsq import quiescent_weights
from repro.stap.reference import default_steering


def db(x: float) -> float:
    return 10.0 * np.log10(max(x, 1e-300))


def main() -> None:
    params = STAPParams.small()
    steering = default_steering(params)
    target = TargetTruth(
        range_cell=60, normalized_doppler=0.06, angle_deg=-10.0, snr_db=10.0
    )
    scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(target,), seed=3)
    stream = CPIStream(params, scenario)

    easy_computer = EasyWeightComputer(params, steering)
    hard_computer = HardWeightComputer(params, steering)

    # Train on three CPIs (the paper's easy-bin training depth).
    for cube in stream.take(3):
        staggered = doppler_filter(cube)
        easy_computer.push_training(extract_easy_training(staggered, params))
        hard_computer.update(extract_hard_training(staggered, params))

    # Evaluate on a fresh look.
    test_cube = stream.cube(10)
    staggered = doppler_filter(test_cube)
    easy_data = staggered[params.easy_bins][:, : params.num_channels, :]
    hard_data = staggered[params.hard_bins]

    adaptive_easy = easy_computer.compute_weights()
    adaptive_hard = hard_computer.compute_weights()
    quiescent_easy = np.broadcast_to(
        quiescent_weights(steering)[None], adaptive_easy.shape
    ).copy()
    quiescent_hard = HardWeightComputer(params, steering).compute_weights()

    print("clutter output power (mean |y|^2 over bins, beams, ranges):")
    for label, weights in (("quiescent", quiescent_easy), ("adaptive ", adaptive_easy)):
        y = beamform_easy(easy_data, weights, params)
        print(f"  easy bins, {label}: {db(float(np.mean(np.abs(y) ** 2))):7.1f} dB")
    for label, weights in (("quiescent", quiescent_hard), ("adaptive ", adaptive_hard)):
        y = beamform_hard(hard_data, weights, params)
        print(f"  hard bins, {label}: {db(float(np.mean(np.abs(y) ** 2))):7.1f} dB")
    print()

    bin_n = nearest_bin(params, target.normalized_doppler)
    bin_pos = int(np.nonzero(params.hard_bins == bin_n)[0][0])
    print(f"target at hard Doppler bin {bin_n}, range {target.range_cell}, "
          f"angle {target.angle_deg:+.0f} deg:")
    for label, weights in (("quiescent", quiescent_hard), ("adaptive ", adaptive_hard)):
        y = beamform_hard(hard_data, weights, params)
        row = np.abs(y[bin_pos, 0]) ** 2
        signal = float(row[target.range_cell])
        background = float(np.median(row))
        print(f"  {label}: target/median-background = "
              f"{db(signal) - db(background):5.1f} dB")
    print()
    print("The adaptive hard-bin weights null the ridge at the target's "
          "Doppler, turning an invisible target into a >15 dB detection.")


if __name__ == "__main__":
    main()
