"""Table 7: full per-task timing for the three processor assignments.

Paper: case 1 (236 nodes), case 2 (118), case 3 (59).  Every task's
recv/comp/send decomposition plus throughput and latency.  The calibrated
compute model reproduces the comp column nearly exactly (that column is
the calibration *source* only for case 1; cases 2 and 3 are predictions),
and the recv/send columns — emergent from the simulated network and
pipelining — land within tens of percent.
"""

import pytest

from benchmarks.common import fmt_row, run_case
from repro import CASE1, CASE2, CASE3
from repro.core.assignment import TASK_NAMES

#: Paper's Table 7: case -> task -> (recv, comp, send).
PAPER_TABLE7 = {
    "case1": {
        "doppler": (0.0055, 0.0874, 0.0348),
        "easy_weight": (0.0493, 0.0913, 0.0003),
        "hard_weight": (0.0555, 0.0831, 0.0005),
        "easy_beamform": (0.0658, 0.0708, 0.0021),
        "hard_beamform": (0.0936, 0.0414, 0.0010),
        "pulse_compression": (0.0551, 0.0776, 0.0028),
        "cfar": (0.0910, 0.0434, 0.0),
    },
    "case2": {
        "doppler": (0.0110, 0.1714, 0.0668),
        "easy_weight": (0.0998, 0.1636, 0.0003),
        "hard_weight": (0.0979, 0.1636, 0.0005),
        "easy_beamform": (0.1302, 0.1267, 0.0036),
        "hard_beamform": (0.1782, 0.0822, 0.0017),
        "pulse_compression": (0.1027, 0.1543, 0.0051),
        "cfar": (0.1742, 0.0864, 0.0),
    },
    "case3": {
        "doppler": (0.0219, 0.3509, 0.1296),
        "easy_weight": (0.1796, 0.3254, 0.0003),
        "hard_weight": (0.1779, 0.3265, 0.0006),
        "easy_beamform": (0.2439, 0.2529, 0.0068),
        "hard_beamform": (0.3370, 0.1636, 0.0032),
        "pulse_compression": (0.1806, 0.3067, 0.0097),
        "cfar": (0.3240, 0.1723, 0.0),
    },
}

CASES = {"case1": CASE1, "case2": CASE2, "case3": CASE3}


@pytest.mark.parametrize("case_key", ["case3", "case2", "case1"])
def test_table7_case(benchmark, case_key):
    assignment = CASES[case_key]
    result = benchmark.pedantic(
        run_case, args=(assignment,), kwargs={"measured": False},
        rounds=1, iterations=1,
    )
    metrics = result.metrics

    print()
    print(f"Table 7 — {assignment.name} (measured | paper)")
    print(fmt_row("task", "recv", "comp", "send", "p.recv", "p.comp", "p.send",
                  widths=[18, 8, 8, 8, 8, 8, 8]))
    for task in TASK_NAMES:
        m = metrics.tasks[task]
        paper = PAPER_TABLE7[case_key][task]
        print(fmt_row(task, m.recv, m.comp, m.send, *paper,
                      widths=[18, 8, 8, 8, 8, 8, 8]))
        # Computation column: the heart of the calibration/prediction.
        # (15%: the paper's weight tasks scale slightly super-linearly —
        # cache effects — where our rate model is exactly linear.)
        assert m.comp == pytest.approx(paper[1], rel=0.15), task
    print(f"throughput {metrics.measured_throughput:.4f} CPIs/s, "
          f"latency (unpaced) {metrics.measured_latency:.4f} s")

    benchmark.extra_info["throughput"] = round(metrics.measured_throughput, 4)
    for task in TASK_NAMES:
        benchmark.extra_info[f"{task}.comp"] = round(metrics.tasks[task].comp, 4)
