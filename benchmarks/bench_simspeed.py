"""Simulation speed: the wall-clock cost of the simulator itself.

Unlike the other benchmark modules this one reproduces no paper table —
it tracks how fast the *simulator* chews through the paper-scale runs
(Table 7's three assignments, 25 CPIs each), in wall-seconds per
simulated CPI and events per second, plus how much the batch executor
(:mod:`repro.exec`) buys by fanning independent runs over worker
processes.  These are the figures the DES / SimMPI fast paths and the
executor are graded on; regressions here make every other benchmark
slower.

Run under pytest (needs pytest-benchmark)::

    pytest benchmarks/bench_simspeed.py

or as a plain script, which writes ``BENCH_simspeed.json`` next to the
repository root with all three Table 7 cases in ``runs`` and a serial-vs-
parallel executor comparison::

    python benchmarks/bench_simspeed.py             # all three cases
    python benchmarks/bench_simspeed.py --jobs 4    # executor worker count
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

from repro import CASE1, CASE2, CASE3, STAPParams, STAPPipeline

CASES = {"case1": CASE1, "case2": CASE2, "case3": CASE3}

#: Measurement order: smallest first so a hang fails fast.
CASE_ORDER = ("case3", "case2", "case1")

#: CPIs per measured run, matching the paper's experiments.
NUM_CPIS = 25

#: Where the script mode drops its results.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _merge_results(updates: dict) -> None:
    """Merge one section into the results file without clobbering others
    (printing the regression-gate delta table against the previous
    generation; see :func:`benchmarks.common.merge_results`)."""
    try:
        from benchmarks.common import merge_results
    except ImportError:  # script mode: benchmarks/ itself is sys.path[0]
        from common import merge_results

    merge_results(RESULTS_PATH, updates)


def measure_case(
    case_key: str,
    num_cpis: int = NUM_CPIS,
    trace: bool = False,
    backend: str | None = None,
) -> dict:
    """One perf-instrumented modeled run; returns the JSON-ready record."""
    assignment = CASES[case_key]
    pipeline = STAPPipeline(
        STAPParams.paper(), assignment, num_cpis=num_cpis, perf=True,
        trace=trace, backend=backend,
    )
    result = pipeline.run()
    perf = result.perf
    record = perf.to_dict()
    record.update(
        case=case_key,
        nodes=assignment.total_nodes,
        makespan=result.makespan,
        throughput_cpis_per_s=result.metrics.measured_throughput,
    )
    return record


# -- backend scaling sweep --------------------------------------------------------
#: CPIs per scaling-sweep run: enough events for a stable events/s figure
#: without the 1024-rank pure-Python run dominating the whole benchmark.
SCALING_CPIS = 10

#: Rank counts of the sweep: the three Table 7 assignments (59/118/236
#: nodes), the full 321-node AFRL Paragon, and a hypothetical 1024-node
#: 32x32 mesh with Paragon-calibrated nodes and links.
def _scaling_configs() -> list[tuple[str, object, object]]:
    """(label, assignment, machine) rows; machine None = default Paragon."""
    from repro.machine import Machine, Mesh2D, NodeModel, afrl_paragon
    from repro.machine.paragon import (
        PARAGON_NETWORK,
        PARAGON_PACKING,
        PARAGON_RATES,
    )
    from repro.scheduling import AnalyticPipelineModel, optimize_throughput

    params = STAPParams.paper()
    configs: list[tuple[str, object, object]] = [
        (key, CASES[key], None) for key in CASE_ORDER
    ]
    paragon321 = optimize_throughput(
        AnalyticPipelineModel(params, afrl_paragon()), 321, name="paragon-321"
    )
    configs.append(("paragon321", paragon321, None))
    mesh1024 = Machine(
        mesh=Mesh2D(32, 32),
        node=NodeModel(rates=PARAGON_RATES, processors_per_node=1),
        network_cost=PARAGON_NETWORK,
        packing_cost=PARAGON_PACKING,
        name="hypothetical 1024-node mesh",
    )
    big = optimize_throughput(
        AnalyticPipelineModel(params, mesh1024), 1024, name="mesh-1024"
    )
    configs.append(("mesh1024", big, mesh1024))
    return configs


def measure_backend_scaling(num_cpis: int = SCALING_CPIS) -> list[dict]:
    """Events/s of every available backend across the five machine scales."""
    from repro.des.backends import available_backends

    records = []
    for label, assignment, machine in _scaling_configs():
        for backend in available_backends():
            pipeline = STAPPipeline(
                STAPParams.paper(), assignment, machine=machine,
                num_cpis=num_cpis, perf=True, backend=backend,
            )
            result = pipeline.run()
            record = result.perf.to_dict()
            record.update(
                config=label,
                ranks=assignment.total_nodes,
                makespan=result.makespan,
            )
            records.append(record)
    return records


def measure_all_cases() -> list[dict]:
    """All three Table 7 cases, perf-instrumented, smallest first."""
    return [measure_case(key) for key in CASE_ORDER]


def measure_exec_comparison(jobs: int) -> dict:
    """Per-case wall-clock of serial vs ``jobs``-wide executor passes.

    Both passes use fresh caches so every point really simulates; the
    parallel pass's per-case seconds are measured inside the workers.
    """
    from repro.exec import ResultCache, SimPoint, run_points

    points = [
        SimPoint(STAPParams.paper(), CASES[key], num_cpis=NUM_CPIS)
        for key in CASE_ORDER
    ]

    def timed_pass(n_jobs: int) -> tuple[float, dict]:
        start = time.perf_counter()
        outcomes = run_points(points, jobs=n_jobs, cache=ResultCache())
        wall = time.perf_counter() - start
        per_case = {
            key: outcome.elapsed for key, outcome in zip(CASE_ORDER, outcomes)
        }
        for outcome in outcomes:
            outcome.unwrap()
        return wall, per_case

    serial_wall, serial_cases = timed_pass(1)
    parallel_wall, parallel_cases = timed_pass(jobs)
    return {
        "jobs": jobs,
        "usable_cpus": _usable_cpus(),
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
        "per_case": {
            key: {"serial_s": serial_cases[key], "parallel_s": parallel_cases[key]}
            for key in CASE_ORDER
        },
    }


def _plan_build_seconds() -> float:
    """Worker-side probe: seconds to obtain the default paper-scale
    KernelPlan (a cache hit in a warm-started worker)."""
    from repro.stap.plan import default_plan

    t0 = time.perf_counter()
    default_plan(STAPParams.paper())
    return time.perf_counter() - t0


def measure_warm_start() -> dict:
    """What the executor's pool initializer buys per worker.

    A cold pool worker pays the default-plan construction (and, under a
    spawn start method, the numpy/scipy imports) inside its first
    measured point; the ``_warm_start`` initializer moves that cost to
    pool spin-up.  Measured here as the first-task plan-acquisition time
    in a one-worker pool, cold vs warm-started.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    from repro.exec.executor import _warm_start
    from repro.stap.plan import default_plan

    default_plan.cache_clear()  # parent cache must not leak into forks
    params = STAPParams.paper()
    ctx = multiprocessing.get_context("fork")

    def first_task_seconds(warm: bool) -> float:
        kwargs = (
            dict(initializer=_warm_start, initargs=((params,),))
            if warm else {}
        )
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx,
                                 **kwargs) as pool:
            return pool.submit(_plan_build_seconds).result()

    cold = first_task_seconds(False)
    warm = first_task_seconds(True)
    return {
        "cold_first_task_seconds": cold,
        "warm_first_task_seconds": warm,
        "delta_seconds": cold - warm,
    }


def _print_record(record: dict) -> None:
    print(
        f"{record['case']:>6} ({record['nodes']:3d} nodes): "
        f"{record['wall_seconds']:6.2f} s wall, "
        f"{record['wall_seconds_per_cpi'] * 1e3:7.1f} ms/CPI, "
        f"{record['events_per_second']:9.0f} events/s, "
        f"{record['probes_per_message']:5.2f} probes/op"
    )


# -- pytest entry points ---------------------------------------------------------
@pytest.mark.parametrize("case_key", ["case3", "case2", "case1"])
def test_simspeed_case(benchmark, case_key):
    record = benchmark.pedantic(
        measure_case, args=(case_key,), rounds=1, iterations=1
    )
    print()
    _print_record(record)
    benchmark.extra_info["wall_seconds_per_cpi"] = round(
        record["wall_seconds_per_cpi"], 4
    )
    benchmark.extra_info["events_per_second"] = round(record["events_per_second"])
    benchmark.extra_info["probes_per_message"] = round(
        record["probes_per_message"], 3
    )
    # The indexed matcher's whole point: no linear scans left.
    assert record["probes_per_message"] < 2.0


@pytest.mark.bench_smoke
def test_simspeed_smoke():
    """Fast guard: all three cases at paper scale, JSON out, under a minute."""
    t0 = time.perf_counter()
    runs = measure_all_cases()
    elapsed = time.perf_counter() - t0
    print()
    for record in runs:
        _print_record(record)
    _merge_results({"runs": runs})
    print(f"wrote {RESULTS_PATH}")
    assert {r["case"] for r in runs} == set(CASES)
    assert elapsed < 60.0, f"smoke benchmark took {elapsed:.1f}s (budget 60s)"
    assert all(r["probes_per_message"] < 2.0 for r in runs)


@pytest.mark.bench_smoke
@pytest.mark.backends
def test_backend_speed_guard():
    """The lowered core must not be slower than the reference engine.

    Table 7 case 1 (236 nodes) is the scale the backends exist for; the
    acceptance bar is >= 2x, but on a noisy shared host this guard asserts
    the conservative invariant (lowered >= python events/s, best of two
    interleaved trials) so it never flakes while still catching a lowered
    core that regressed onto the slow path.
    """
    trials = {"python": [], "lowered": []}
    for _ in range(2):
        for backend in ("python", "lowered"):
            record = measure_case("case1", num_cpis=8, backend=backend)
            assert record["backend"] == backend
            trials[backend].append(record["events_per_second"])
    python_best = max(trials["python"])
    lowered_best = max(trials["lowered"])
    ratio = lowered_best / python_best if python_best else 0.0
    print()
    print(
        f"case1 events/s: python {python_best:9.0f}, lowered {lowered_best:9.0f} "
        f"({ratio:.2f}x)"
    )
    assert lowered_best >= python_best, (
        f"lowered backend slower than reference: {lowered_best:.0f} vs "
        f"{python_best:.0f} events/s"
    )


@pytest.mark.bench_smoke
@pytest.mark.exec
def test_exec_sweep_smoke():
    """The executor's acceptance sweep: 8 independent points, jobs=4.

    Asserts bit-identical metrics between serial and parallel execution
    and that a repeated sweep is answered entirely from the cache (zero
    new simulations, counter-verified).  The >= 2x wall-clock speedup is
    asserted only when the host actually has >= 4 usable CPUs — on fewer
    cores the parallel pass cannot physically be faster, but the numbers
    are still recorded.
    """
    from repro.exec import ResultCache
    from repro.experiments import speedup_series
    from repro.perf import exec_counters

    node_counts = (2, 3, 4, 6, 8, 12, 16, 24)
    jobs = 4
    sweep = dict(num_cpis=NUM_CPIS)

    t0 = time.perf_counter()
    serial = speedup_series("cfar", node_counts, jobs=1, cache=ResultCache(), **sweep)
    serial_wall = time.perf_counter() - t0

    parallel_cache = ResultCache()
    t0 = time.perf_counter()
    parallel = speedup_series(
        "cfar", node_counts, jobs=jobs, cache=parallel_cache, **sweep
    )
    parallel_wall = time.perf_counter() - t0

    # Determinism: parallel results are bit-identical to serial ones.
    assert parallel == serial

    # Repeat: all cache hits, zero new simulations.
    before = exec_counters.snapshot()
    repeated = speedup_series(
        "cfar", node_counts, jobs=jobs, cache=parallel_cache, **sweep
    )
    delta = exec_counters.delta_since(before)
    assert repeated == parallel
    assert delta["simulations_run"] == 0, delta
    assert delta["cache_hits_memory"] == len(node_counts), delta

    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    cpus = _usable_cpus()
    print()
    print(f"exec sweep ({len(node_counts)} points): serial {serial_wall:6.2f} s, "
          f"jobs={jobs} {parallel_wall:6.2f} s, speedup {speedup:.2f}x "
          f"({cpus} usable CPUs)")
    _merge_results({
        "exec_sweep": {
            "points": len(node_counts),
            "jobs": jobs,
            "usable_cpus": cpus,
            "serial_wall_seconds": serial_wall,
            "parallel_wall_seconds": parallel_wall,
            "speedup": speedup,
        }
    })
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"jobs={jobs} sweep only {speedup:.2f}x faster on {cpus} CPUs"
        )


@pytest.mark.bench_smoke
@pytest.mark.exec
def test_warm_start_delta():
    """The pool initializer must make a worker's first plan acquisition
    (effectively) free: a warm worker hits the memoized plan instead of
    rebuilding it."""
    record = measure_warm_start()
    print()
    print(f"warm start: cold {record['cold_first_task_seconds'] * 1e3:7.1f} ms, "
          f"warm {record['warm_first_task_seconds'] * 1e3:7.1f} ms "
          f"(delta {record['delta_seconds'] * 1e3:7.1f} ms)")
    _merge_results({"warm_start": record})
    assert record["warm_first_task_seconds"] <= record["cold_first_task_seconds"]
    # A warm hit is an lru_cache lookup; 50 ms is orders of magnitude of
    # slack for even a loaded host.
    assert record["warm_first_task_seconds"] < 0.05


@pytest.mark.bench_smoke
@pytest.mark.obs
def test_obs_overhead():
    """Guard the cost of the observability layer.

    Tracing records ~6 spans and ~1 message record per task iteration on
    top of timestamps the simulation computes anyway, so an obs-on run
    should stay within a small constant factor of obs-off — and obs-off
    must not pay for the layer's existence at all (that case is covered
    bit-exactly by the golden-fastpath tests; here we bound wall time).
    """

    def timed(trace: bool) -> tuple[float, dict]:
        t0 = time.perf_counter()
        record = measure_case("case3", trace=trace)
        return time.perf_counter() - t0, record

    off_s, off = timed(False)
    on_s, on = timed(True)
    ratio = on_s / off_s if off_s else float("inf")
    print()
    print(f"obs off: {off_s:6.2f} s   obs on: {on_s:6.2f} s   ratio {ratio:.2f}x")
    # Same simulated run either way.
    assert on["makespan"] == off["makespan"]
    assert on["network_messages"] == off["network_messages"]
    # Generous bound: recording is passive, so even slow hosts stay far
    # below this; a 3x blowup means the layer grew onto the hot path.
    assert ratio < 3.0, f"observability overhead {ratio:.2f}x (budget 3x)"
    _merge_results({
        "obs_overhead": {
            "off_wall_seconds": off_s,
            "on_wall_seconds": on_s,
            "ratio": ratio,
        }
    })


@pytest.mark.bench_smoke
@pytest.mark.metrics
def test_metrics_overhead():
    """Guard the cost of the campaign-metrics layer.

    Metrics are pull-based — one enabled check up front, one flush of
    already-maintained counters after the run — so a metered run must be
    simulated-identically and stay within 1.5x of an unmetered one.
    """
    from repro.obs.metrics import metrics_registry

    def timed(metered: bool) -> tuple[float, dict]:
        if metered:
            metrics_registry.enable(reset=True)
        try:
            t0 = time.perf_counter()
            record = measure_case("case3")
            return time.perf_counter() - t0, record
        finally:
            metrics_registry.disable()

    off_s, off = timed(False)
    on_s, on = timed(True)
    ratio = on_s / off_s if off_s else float("inf")
    print()
    print(f"metrics off: {off_s:6.2f} s   on: {on_s:6.2f} s   ratio {ratio:.2f}x")
    # Bit-identical simulated run either way.
    assert on["makespan"] == off["makespan"]
    assert on["events_processed"] == off["events_processed"]
    assert on["network_messages"] == off["network_messages"]
    assert ratio < 1.5, f"metrics overhead {ratio:.2f}x (budget 1.5x)"
    _merge_results({
        "metrics_overhead": {
            "off_wall_seconds": off_s,
            "on_wall_seconds": on_s,
            "ratio": ratio,
        }
    })


# -- script entry point ----------------------------------------------------------
def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    jobs = min(4, _usable_cpus())
    rest = list(argv)
    if "--full" in rest:
        rest.remove("--full")  # historical flag; all cases always run now
    backends_only = "--backends" in rest
    if backends_only:
        rest.remove("--backends")
    if "--jobs" in rest:
        at = rest.index("--jobs")
        try:
            jobs = int(rest[at + 1])
            del rest[at:at + 2]
        except (IndexError, ValueError):
            print("--jobs needs an integer argument", file=sys.stderr)
            return 2
    if rest:
        print(f"usage: {Path(__file__).name} [--jobs N] [--backends]", file=sys.stderr)
        print(f"unknown arguments: {' '.join(rest)}", file=sys.stderr)
        return 2

    if not backends_only:
        runs = []
        for key in CASE_ORDER:
            record = measure_case(key)
            _print_record(record)
            runs.append(record)

        comparison = measure_exec_comparison(jobs)
        print(f"executor: serial {comparison['serial_wall_seconds']:6.2f} s, "
              f"jobs={jobs} {comparison['parallel_wall_seconds']:6.2f} s, "
              f"speedup {comparison['speedup']:.2f}x "
              f"({comparison['usable_cpus']} usable CPUs)")
        warm = measure_warm_start()
        print(f"warm start: cold {warm['cold_first_task_seconds'] * 1e3:.1f} ms "
              f"-> warm {warm['warm_first_task_seconds'] * 1e3:.1f} ms per worker")
        _merge_results({"runs": runs, "exec": comparison, "warm_start": warm})

    scaling = measure_backend_scaling()
    for record in scaling:
        print(
            f"{record['config']:>10} ({record['ranks']:4d} ranks) "
            f"{record['backend']:>8}: {record['wall_seconds']:6.2f} s wall, "
            f"{record['events_per_second']:9.0f} events/s"
        )
    _merge_results({"backends": {"num_cpis": SCALING_CPIS, "runs": scaling}})
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
