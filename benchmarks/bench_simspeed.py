"""Simulation speed: the wall-clock cost of the simulator itself.

Unlike the other benchmark modules this one reproduces no paper table —
it tracks how fast the *simulator* chews through the paper-scale runs
(Table 7's three assignments, 25 CPIs each), in wall-seconds per
simulated CPI and events per second.  These are the figures the DES /
SimMPI fast paths are graded on; regressions here make every other
benchmark slower.

Run under pytest (needs pytest-benchmark)::

    pytest benchmarks/bench_simspeed.py

or as a plain script, which writes ``BENCH_simspeed.json`` next to the
repository root (the smoke configuration measures case 3 only and
finishes well under a minute)::

    python benchmarks/bench_simspeed.py          # smoke: case 3
    python benchmarks/bench_simspeed.py --full   # all three cases
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import CASE1, CASE2, CASE3, STAPParams, STAPPipeline

CASES = {"case1": CASE1, "case2": CASE2, "case3": CASE3}

#: CPIs per measured run, matching the paper's experiments.
NUM_CPIS = 25

#: Where the script mode drops its results.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"


def measure_case(case_key: str, num_cpis: int = NUM_CPIS, trace: bool = False) -> dict:
    """One perf-instrumented modeled run; returns the JSON-ready record."""
    assignment = CASES[case_key]
    pipeline = STAPPipeline(
        STAPParams.paper(), assignment, num_cpis=num_cpis, perf=True,
        trace=trace,
    )
    result = pipeline.run()
    perf = result.perf
    record = perf.to_dict()
    record.update(
        case=case_key,
        nodes=assignment.total_nodes,
        makespan=result.makespan,
        throughput_cpis_per_s=result.metrics.measured_throughput,
    )
    return record


def _print_record(record: dict) -> None:
    print(
        f"{record['case']:>6} ({record['nodes']:3d} nodes): "
        f"{record['wall_seconds']:6.2f} s wall, "
        f"{record['wall_seconds_per_cpi'] * 1e3:7.1f} ms/CPI, "
        f"{record['events_per_second']:9.0f} events/s, "
        f"{record['probes_per_message']:5.2f} probes/op"
    )


# -- pytest entry points ---------------------------------------------------------
@pytest.mark.parametrize("case_key", ["case3", "case2", "case1"])
def test_simspeed_case(benchmark, case_key):
    record = benchmark.pedantic(
        measure_case, args=(case_key,), rounds=1, iterations=1
    )
    print()
    _print_record(record)
    benchmark.extra_info["wall_seconds_per_cpi"] = round(
        record["wall_seconds_per_cpi"], 4
    )
    benchmark.extra_info["events_per_second"] = round(record["events_per_second"])
    benchmark.extra_info["probes_per_message"] = round(
        record["probes_per_message"], 3
    )
    # The indexed matcher's whole point: no linear scans left.
    assert record["probes_per_message"] < 2.0


@pytest.mark.bench_smoke
def test_simspeed_smoke():
    """Fast guard: case 3 at paper scale, well under a minute, JSON out."""
    import time

    t0 = time.perf_counter()
    record = measure_case("case3")
    elapsed = time.perf_counter() - t0
    print()
    _print_record(record)
    RESULTS_PATH.write_text(json.dumps({"runs": [record]}, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    assert elapsed < 60.0, f"smoke benchmark took {elapsed:.1f}s (budget 60s)"
    assert record["probes_per_message"] < 2.0


@pytest.mark.bench_smoke
@pytest.mark.obs
def test_obs_overhead():
    """Guard the cost of the observability layer.

    Tracing records ~6 spans and ~1 message record per task iteration on
    top of timestamps the simulation computes anyway, so an obs-on run
    should stay within a small constant factor of obs-off — and obs-off
    must not pay for the layer's existence at all (that case is covered
    bit-exactly by the golden-fastpath tests; here we bound wall time).
    """
    import time

    def timed(trace: bool) -> tuple[float, dict]:
        t0 = time.perf_counter()
        record = measure_case("case3", trace=trace)
        return time.perf_counter() - t0, record

    off_s, off = timed(False)
    on_s, on = timed(True)
    ratio = on_s / off_s if off_s else float("inf")
    print()
    print(f"obs off: {off_s:6.2f} s   obs on: {on_s:6.2f} s   ratio {ratio:.2f}x")
    # Same simulated run either way.
    assert on["makespan"] == off["makespan"]
    assert on["network_messages"] == off["network_messages"]
    # Generous bound: recording is passive, so even slow hosts stay far
    # below this; a 3x blowup means the layer grew onto the hot path.
    assert ratio < 3.0, f"observability overhead {ratio:.2f}x (budget 3x)"
    # Merge into the results file without clobbering the smoke run's data.
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing["obs_overhead"] = {
        "off_wall_seconds": off_s,
        "on_wall_seconds": on_s,
        "ratio": ratio,
    }
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


# -- script entry point ----------------------------------------------------------
def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    unknown = [a for a in argv if a != "--full"]
    if unknown:
        print(f"usage: {Path(__file__).name} [--full]", file=sys.stderr)
        print(f"unknown arguments: {' '.join(unknown)}", file=sys.stderr)
        return 2
    keys = ["case3", "case2", "case1"] if "--full" in argv else ["case3"]
    runs = []
    for key in keys:
        record = measure_case(key)
        _print_record(record)
        runs.append(record)
    RESULTS_PATH.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
