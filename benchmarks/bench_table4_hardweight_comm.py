"""Table 4: inter-task communication, hard weight -> hard beamforming.

Paper (seconds), hard BF at 8 or 16 nodes, hard weight at 28/56/112:

                hard BF 8           hard BF 16
    P2=28   send .0007 recv .1798   send .0007 recv .2485
    P2=56   send .0100 recv .1468   send .0065 recv .0765
    P2=112  send .1824 recv .1398   send .0005 recv .0543

As with Table 3, the BF recv column tracks the hard weight task's pace;
more weight nodes means less idle waiting downstream.
"""

import pytest

from benchmarks.common import fmt_row, run_assignment

PAPER_RECV = {
    (28, 8): 0.1798,
    (56, 8): 0.1468,
    (112, 8): 0.1398,
    (28, 16): 0.2485,
    (56, 16): 0.0765,
    (112, 16): 0.0543,
}


def sweep():
    rows = {}
    for p4 in (8, 16):
        for p2 in (28, 56, 112):
            result = run_assignment(16, 8, p2, 8, p4, 8, 8)
            tasks = result.metrics.tasks
            rows[(p2, p4)] = (
                tasks["hard_weight"].send,
                tasks["hard_beamform"].recv,
            )
    return rows


def test_table4_hard_weight_comm(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Table 4 — hard weight -> hard BF (send | recv; paper recv)")
    print(fmt_row("P2", "P4", "send", "recv", "paper recv", widths=[4, 4, 9, 9, 11]))
    for (p2, p4), (send, recv) in sorted(rows.items()):
        print(fmt_row(p2, p4, send, recv, PAPER_RECV[(p2, p4)],
                      widths=[4, 4, 9, 9, 11]))

    # Weight vectors are small; visible send stays tiny.
    for (_p2, _p4), (send, _recv) in rows.items():
        assert send < 0.02
    # More hard weight nodes -> shorter waits downstream.
    for p4 in (8, 16):
        assert rows[(112, p4)][1] < rows[(28, p4)][1]
    benchmark.extra_info["recv@(28,16)"] = round(rows[(28, 16)][1], 4)
    benchmark.extra_info["recv@(112,16)"] = round(rows[(112, 16)][1], 4)
