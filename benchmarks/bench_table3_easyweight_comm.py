"""Table 3: inter-task communication, easy weight -> easy beamforming.

Paper (seconds), with easy BF at 8 or 16 nodes and easy weight at 4/8/16:

                easy BF 8          easy BF 16
    P1=4    send .0005 recv .1956   send .0007 recv .2570
    P1=8    send .0088 recv .0883   send .0004 recv .0905
    P1=16   send .0768 recv .0807   send .0003 recv .0660

Weight vectors are tiny (tens of KiB), so the send column is negligible;
the BF recv column is dominated by *waiting* for the easy weight task's
computation, so it shrinks as P1 grows.
"""

import pytest

from benchmarks.common import fmt_row, run_assignment

PAPER_RECV = {  # (P1, P3) -> easy BF recv
    (4, 8): 0.1956,
    (8, 8): 0.0883,
    (16, 8): 0.0807,
    (4, 16): 0.2570,
    (8, 16): 0.0905,
    (16, 16): 0.0660,
}


def sweep():
    rows = {}
    for p3 in (8, 16):
        for p1 in (4, 8, 16):
            result = run_assignment(16, p1, 56, p3, 14, 8, 8)
            tasks = result.metrics.tasks
            rows[(p1, p3)] = (
                tasks["easy_weight"].send,
                tasks["easy_beamform"].recv,
            )
    return rows


def test_table3_easy_weight_comm(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Table 3 — easy weight -> easy BF (send | recv; paper in parens)")
    print(fmt_row("P1", "P3", "send", "recv", "paper recv", widths=[4, 4, 9, 9, 11]))
    for (p1, p3), (send, recv) in sorted(rows.items()):
        print(fmt_row(p1, p3, send, recv, PAPER_RECV[(p1, p3)],
                      widths=[4, 4, 9, 9, 11]))

    # Weight sends are negligible next to the Doppler cube redistribution.
    for (p1, p3), (send, _recv) in rows.items():
        assert send < 0.02
    # More weight nodes -> less waiting at the consumer, for either P3.
    for p3 in (8, 16):
        assert rows[(16, p3)][1] < rows[(4, p3)][1]
    benchmark.extra_info["recv@(4,8)"] = round(rows[(4, 8)][1], 4)
    benchmark.extra_info["recv@(16,16)"] = round(rows[(16, 16)][1], 4)
