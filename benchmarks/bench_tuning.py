"""Pareto auto-tuner vs the paper's equations-(1)-(3) assignments.

Section 4.1.2 assigns processors by closed-form analysis and Table 7
evaluates one hand-picked assignment per budget.  This benchmark runs the
simulation-in-the-loop tuner (:mod:`repro.scheduling.tuner`) at the
paper's three budgets and records:

* **paragon** — on the homogeneous AFRL Paragon, the tuned Pareto front
  per Table 7 budget (236 / 118 / 59 nodes), with the paper's case
  simulated at the same CPI count and validated to sit *on or behind*
  the front (``covers``), plus the tuned best-throughput point next to
  the equations' greedy pick;
* **heterogeneous** — the same search on two machine scenarios the
  closed forms cannot see (``legacy_front``: the first 16 nodes at
  0.25x; ``gpu_nodes``: the first 32 at 8x), recording
  ``tuned_vs_equations_speedup`` — the acceptance bar is >= 1.10x on at
  least one scenario.

Every simulation flows through the shared result store
(:func:`benchmarks.common.bench_store` semantics apply: set
``$REPRO_CAMPAIGN_DIR`` to make the whole benchmark a durable, resumable
campaign), so re-running a tune against a warm store simulates nothing.

The smoke test tunes a tiny heterogeneous configuration in seconds and
merges under its own top-level key, leaving the committed full-scale
``tuning`` section untouched.

Run::

    pytest benchmarks/bench_tuning.py -m bench_smoke   # fast guard
    python benchmarks/bench_tuning.py                  # full run + JSON
"""

from __future__ import annotations

import os
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro import CASE1, CASE2, CASE3, STAPParams
from repro.exec import SimPoint, execute_point
from repro.machine import SpeedRegion, afrl_paragon, machine_scenario
from repro.scheduling import TunerConfig, tune

#: Where the script/smoke modes drop their results.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_tuning.json"

#: CPIs per refinement simulation: the steady-state window needs >= 8;
#: ten keeps the 236-node budget's sims under two seconds each.
NUM_CPIS = 10

#: Table 7 budgets with the paper's evaluated case for each.
PAPER_BUDGETS = ((59, CASE3), (118, CASE2), (236, CASE1))

#: Heterogeneous scenarios the closed forms cannot model.
HET_SCENARIOS = ("legacy_front", "gpu_nodes")


def _merge_results(updates: dict) -> None:
    try:
        from benchmarks.common import merge_results
    except ImportError:  # script mode: benchmarks/ itself is sys.path[0]
        from common import merge_results

    merge_results(RESULTS_PATH, updates)


def _jobs() -> int:
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus - 1))


def _campaign_dir():
    try:
        from benchmarks.common import CAMPAIGN_DIR_ENV
    except ImportError:  # pragma: no cover - script mode
        from common import CAMPAIGN_DIR_ENV

    return os.environ.get(CAMPAIGN_DIR_ENV) or None


def _config(**overrides) -> TunerConfig:
    base = dict(
        num_cpis=NUM_CPIS, sim_candidates=8, sim_rounds=2, jobs=_jobs()
    )
    base.update(overrides)
    return TunerConfig(**base)


def _point_record(point) -> dict:
    return {
        "counts": list(point.counts),
        "throughput_cpis_per_s": point.throughput,
        "latency_seconds": point.latency,
        "predicted_throughput": point.predicted_throughput,
        "predicted_latency": point.predicted_latency,
    }


# -- measurements ----------------------------------------------------------------
def measure_paragon_budget(budget: int, case) -> dict:
    """Tune one Table 7 budget on the homogeneous Paragon.

    The paper's case rides along as a seed (so it is always simulated)
    and is then checked against the tuned front: it must be on or behind
    it — the tuner may never *lose* to the hand pick it subsumes.
    """
    params = STAPParams.paper()
    result = tune(
        params,
        budget,
        config=_config(),
        seeds=[case],
        campaign_dir=_campaign_dir(),
    )
    case_metrics = execute_point(
        SimPoint(params, case, num_cpis=NUM_CPIS, label=f"bench {case.name}")
    ).metrics
    case_throughput = case_metrics.measured_throughput
    case_latency = case_metrics.measured_latency
    baseline_throughput = result.baseline["simulated_throughput"]
    return {
        "budget": budget,
        "case": case.name,
        "case_simulated": {
            "throughput_cpis_per_s": case_throughput,
            "latency_seconds": case_latency,
        },
        "covers_case": result.front.covers(case_throughput, case_latency),
        "baseline_counts": result.baseline["counts"],
        "baseline_throughput_cpis_per_s": baseline_throughput,
        "best_throughput": _point_record(result.best_throughput),
        "best_latency": _point_record(result.best_latency),
        "tuned_vs_equations_speedup": (
            result.best_throughput.throughput / baseline_throughput
        ),
        "tuned_vs_case_speedup": (
            result.best_throughput.throughput / case_throughput
        ),
        "candidates_evaluated": result.candidates_evaluated,
        "points_simulated": result.points_simulated,
        "front": [_point_record(p) for p in result.front.points],
    }


def measure_heterogeneous(scenario: str, budget: int = 59) -> dict:
    """Tune one heterogeneous scenario at the case 3 budget."""
    result = tune(
        STAPParams.paper(),
        budget,
        machine=machine_scenario(scenario),
        config=_config(),
        campaign_dir=_campaign_dir(),
    )
    return {
        "scenario": scenario,
        "budget": budget,
        "baseline_counts": result.baseline["counts"],
        "baseline_throughput_cpis_per_s": result.baseline[
            "simulated_throughput"
        ],
        "best_throughput": _point_record(result.best_throughput),
        "tuned_vs_equations_speedup": result.throughput_gain,
        "candidates_evaluated": result.candidates_evaluated,
        "points_simulated": result.points_simulated,
        "front": [_point_record(p) for p in result.front.points],
    }


def measure_all() -> dict:
    return {
        "num_cpis": NUM_CPIS,
        "paragon": [
            measure_paragon_budget(budget, case)
            for budget, case in PAPER_BUDGETS
        ],
        "heterogeneous": [
            measure_heterogeneous(scenario) for scenario in HET_SCENARIOS
        ],
    }


def _print_summary(results: dict) -> None:
    for record in results["paragon"]:
        print(f"  {record['case']:>18} budget {record['budget']:>3}: "
              f"case {record['case_simulated']['throughput_cpis_per_s']:7.3f} "
              f"CPIs/s, tuned "
              f"{record['best_throughput']['throughput_cpis_per_s']:7.3f} "
              f"({record['tuned_vs_case_speedup']:.2f}x), "
              f"covers case: {record['covers_case']}")
    for record in results["heterogeneous"]:
        print(f"  {record['scenario']:>18} budget {record['budget']:>3}: "
              f"equations "
              f"{record['baseline_throughput_cpis_per_s']:7.3f} CPIs/s, "
              f"tuned "
              f"{record['best_throughput']['throughput_cpis_per_s']:7.3f} "
              f"({record['tuned_vs_equations_speedup']:.2f}x)")


def _assert_acceptance(results: dict) -> None:
    for record in results["paragon"]:
        assert record["covers_case"], (
            f"Table 7 {record['case']} beats the tuned front at budget "
            f"{record['budget']} — the tuner lost to its own seed"
        )
        assert record["tuned_vs_case_speedup"] >= 0.999
    gains = {
        record["scenario"]: record["tuned_vs_equations_speedup"]
        for record in results["heterogeneous"]
    }
    assert max(gains.values()) >= 1.10, (
        f"no heterogeneous scenario gained >= 10% over the equations "
        f"pick: {gains}"
    )


# -- pytest entry points ---------------------------------------------------------
@pytest.mark.bench_smoke
def test_tuning_smoke():
    """Seconds-scale guard: a tiny heterogeneous tune must beat the
    equations pick by >= 10% simulated and keep its seeds behind the
    front.  Merges under its own key so the committed full-scale
    ``tuning`` section is never clobbered by a smoke run."""
    machine = replace(
        afrl_paragon(), speed_regions=(SpeedRegion(0, 4, 0.25),)
    )
    result = tune(
        STAPParams.tiny(),
        12,
        machine=machine,
        config=TunerConfig(num_cpis=8, sim_candidates=6, sim_rounds=2),
    )
    record = {
        "budget": 12,
        "num_cpis": 8,
        "scenario": "tiny legacy-front (nodes 0-3 at 0.25x)",
        "baseline_counts": result.baseline["counts"],
        "baseline_throughput_cpis_per_s": result.baseline[
            "simulated_throughput"
        ],
        "best_throughput": _point_record(result.best_throughput),
        "tuned_vs_equations_speedup": result.throughput_gain,
        "points_simulated": result.points_simulated,
    }
    print()
    print(f"  tiny tune: equations "
          f"{record['baseline_throughput_cpis_per_s']:7.3f} CPIs/s, tuned "
          f"{record['best_throughput']['throughput_cpis_per_s']:7.3f} "
          f"({record['tuned_vs_equations_speedup']:.2f}x), "
          f"{record['points_simulated']} simulated")
    _merge_results({"tuning_smoke": record})
    print(f"wrote {RESULTS_PATH}")

    assert result.points_simulated > 0
    assert result.throughput_gain >= 1.10
    assert all(p.total_nodes <= 12 for p in result.front.points)


# -- script entry point ----------------------------------------------------------
def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        print(f"usage: {Path(__file__).name} (no arguments)", file=sys.stderr)
        return 2
    results = measure_all()
    _print_summary(results)
    _assert_acceptance(results)
    _merge_results({"tuning": results})
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
