"""Table 6: inter-task communication, pulse compression -> CFAR.

Paper (seconds), CFAR at 4 or 8 nodes, pulse compression at 4/8/16:

    P5=4    send .0099 recv .3351 (C=4)  |  send .0098 recv .3348 (C=8)
    P5=8    send .0053 recv .0662        |  send .0051 recv .1750
    P5=16   send .1256 recv .0435        |  send .0028 recv .1783

The pipeline's lightest edge (real power data, half the bytes of complex);
CFAR's recv is almost entirely waiting on pulse compression.
"""

import pytest

from benchmarks.common import fmt_row, run_assignment

PAPER_CFAR_RECV = {
    (4, 4): 0.3351,
    (8, 4): 0.0662,
    (16, 4): 0.0435,
    (4, 8): 0.3348,
    (8, 8): 0.1750,
    (16, 8): 0.1783,
}


def sweep():
    rows = {}
    for p6 in (4, 8):
        for p5 in (4, 8, 16):
            # Upstream tasks generously provisioned so the PC -> CFAR pair
            # is the binding stage being measured.
            result = run_assignment(32, 16, 112, 16, 28, p5, p6)
            tasks = result.metrics.tasks
            rows[(p5, p6)] = (
                tasks["pulse_compression"].send,
                tasks["cfar"].recv,
            )
    return rows


def test_table6_pc_cfar_comm(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Table 6 — pulse compression -> CFAR (send | recv; paper recv)")
    print(fmt_row("P5", "P6", "send", "recv", "paper recv", widths=[4, 4, 9, 9, 11]))
    for (p5, p6), (send, recv) in sorted(rows.items()):
        print(fmt_row(p5, p6, send, recv, PAPER_CFAR_RECV[(p5, p6)],
                      widths=[4, 4, 9, 9, 11]))

    for (p5, p6), (send, _recv) in rows.items():
        if p5 <= 2 * p6:
            assert send < 0.05
    # The unbalanced sender-heavy case: visible send time is inflated by
    # waiting for the slower receiver ("when the number of nodes is
    # unbalanced ... the communication performance is not very good";
    # the paper's own (16, 4) cell shows send .1256 for the same reason).
    assert rows[(16, 4)][0] > rows[(8, 4)][0]
    for p6 in (4, 8):
        # CFAR waits far less once PC keeps up (paper: .335 -> .044).
        assert rows[(16, p6)][1] < 0.5 * rows[(4, p6)][1]
    benchmark.extra_info["cfar.recv@(4,4)"] = round(rows[(4, 4)][1], 4)
    benchmark.extra_info["cfar.recv@(16,4)"] = round(rows[(16, 4)][1], 4)
