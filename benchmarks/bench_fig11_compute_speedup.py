"""Figure 11: per-task computation time and speedup vs node count.

Paper: "For each task, we obtained linear speedups."  The figure plots
computation time and speedup over 4..128 nodes per task.  We regenerate
the series from full-pipeline simulations (the comp column of the Figure 10
instrumentation) and assert near-linear speedup, anchoring absolute values
against the comp columns of Table 7 (e.g. Doppler at 32 nodes = .0874 s).
"""

import pytest

from benchmarks.common import fmt_row, paper_params, run_assignment
from repro.core.assignment import TASK_NAMES

#: Node sweep per task; the other tasks are held at case-2-like counts so
#: the pipeline stays functional while one task is scaled.
SWEEPS = {
    "doppler": (8, 16, 32, 64),
    "easy_weight": (4, 8, 16, 32),
    "hard_weight": (28, 56, 112),
    "easy_beamform": (4, 8, 16, 32),
    "hard_beamform": (7, 14, 28, 56),
    "pulse_compression": (4, 8, 16, 32),
    "cfar": (4, 8, 16, 32),
}

#: Comp-column anchors from Table 7 (node count -> seconds).
TABLE7_COMP_ANCHORS = {
    "doppler": {32: 0.0874, 16: 0.1714, 8: 0.3509},
    "easy_weight": {16: 0.0913, 8: 0.1636, 4: 0.3254},
    "hard_weight": {112: 0.0831, 56: 0.1636, 28: 0.3265},
    "easy_beamform": {16: 0.0708, 8: 0.1267, 4: 0.2529},
    "hard_beamform": {28: 0.0414, 14: 0.0822, 7: 0.1636},
    "pulse_compression": {16: 0.0776, 8: 0.1543, 4: 0.3067},
    "cfar": {16: 0.0434, 8: 0.0864, 4: 0.1723},
}

BASE = {  # case-2 counts used for the non-swept tasks
    "doppler": 16,
    "easy_weight": 8,
    "hard_weight": 56,
    "easy_beamform": 8,
    "hard_beamform": 14,
    "pulse_compression": 8,
    "cfar": 8,
}


def comp_series(task: str) -> dict[int, float]:
    series = {}
    for nodes in SWEEPS[task]:
        counts = dict(BASE)
        counts[task] = nodes
        result = run_assignment(
            counts["doppler"],
            counts["easy_weight"],
            counts["hard_weight"],
            counts["easy_beamform"],
            counts["hard_beamform"],
            counts["pulse_compression"],
            counts["cfar"],
        )
        series[nodes] = result.metrics.tasks[task].comp
    return series


@pytest.mark.parametrize("task", TASK_NAMES)
def test_fig11_linear_speedup(benchmark, task):
    series = benchmark.pedantic(comp_series, args=(task,), rounds=1, iterations=1)

    nodes = sorted(series)
    base_nodes = nodes[0]
    print()
    print(f"Figure 11 — {task}: computation time and speedup vs nodes")
    print(fmt_row("nodes", "comp (s)", "speedup", "ideal", widths=[6, 10, 8, 8]))
    for n in nodes:
        speedup = series[base_nodes] / series[n]
        ideal = n / base_nodes
        print(fmt_row(n, series[n], speedup, float(ideal), widths=[6, 10, 8, 8]))
        # Linear speedup within 10% ("For each task, we obtained linear
        # speedups").
        assert speedup == pytest.approx(ideal, rel=0.10)
    # Anchor against the paper's Table 7 comp column where available.
    for n, paper_comp in TABLE7_COMP_ANCHORS[task].items():
        if n in series:
            assert series[n] == pytest.approx(paper_comp, rel=0.15)
            benchmark.extra_info[f"comp@{n}"] = round(series[n], 4)
            benchmark.extra_info[f"paper@{n}"] = paper_comp
