"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper's
evaluation at the paper's exact parameters (K=512, J=16, N=128, M=6,
25 CPIs, warm-up/cool-down excluded) on the simulated AFRL Paragon, prints
the paper-vs-measured rows, and records headline numbers in the
pytest-benchmark ``extra_info`` so they land in the benchmark report.

Full-pipeline simulations at 118-236 ranks take seconds each, so results
are memoized across benchmark modules through the content-addressed
result cache of :mod:`repro.exec` (Table 2's 8-node column is Table 7
case 3's Doppler count, etc.) — the cache keys on node counts, not
assignment names, so differently-named but physically identical
configurations share one simulation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import Assignment, STAPParams
from repro.exec import USE_DEFAULT_CACHE, PointResult, SimPoint, execute_point

#: CPIs per measured run, as in the paper ("A total of 25 CPI complex data
#: cubes were generated as inputs").
NUM_CPIS = 25

#: Environment variable naming a durable campaign directory.  When set,
#: every benchmark simulation declares into and publishes through one
#: shared :class:`~repro.exec.campaign.CampaignStore` there, so the whole
#: Table 2–10 benchmark suite becomes a single resumable campaign:
#: interrupt it at any point, rerun, and completed points are served from
#: the store (``repro-stap campaign status <dir>`` shows progress from a
#: second terminal).  See EXPERIMENTS.md for the recipe.
CAMPAIGN_DIR_ENV = "REPRO_CAMPAIGN_DIR"

_campaign_store = None


def bench_store():
    """The result store benchmarks run through.

    The process-default cache normally; a durable campaign store rooted
    at ``$REPRO_CAMPAIGN_DIR`` when that is set.
    """
    global _campaign_store
    directory = os.environ.get(CAMPAIGN_DIR_ENV)
    if not directory:
        return USE_DEFAULT_CACHE
    if _campaign_store is None or _campaign_store.root != Path(directory):
        from repro.exec.campaign import CampaignStore

        _campaign_store = CampaignStore(directory, name="bench")
    return _campaign_store


def paper_params() -> STAPParams:
    return STAPParams.paper()


def _run_cached(counts: tuple[int, ...], measured: bool) -> PointResult:
    point = SimPoint(
        paper_params(),
        Assignment(*counts, name=f"bench{counts}"),
        num_cpis=NUM_CPIS,
        measured=measured,
    )
    return execute_point(point, cache=bench_store())


def run_assignment(
    doppler: int,
    easy_weight: int,
    hard_weight: int,
    easy_bf: int,
    hard_bf: int,
    pc: int,
    cfar: int,
    measured: bool = False,
) -> PointResult:
    """Simulate one assignment at paper scale (result-cached)."""
    return _run_cached(
        (doppler, easy_weight, hard_weight, easy_bf, hard_bf, pc, cfar), measured
    )


def run_case(assignment: Assignment, measured: bool = True) -> PointResult:
    """Simulate one of the named paper assignments (result-cached)."""
    return _run_cached(assignment.counts(), measured)


def merge_results(path, updates: dict, tolerance: float = 0.10) -> dict:
    """Merge one section into a ``BENCH_*.json`` file, gating the update.

    When the file already holds a previous generation, the merged document
    is diffed against it with :mod:`repro.obs.regress` and the pass/fail
    delta table printed, so every benchmark refresh shows at a glance what
    moved and whether it moved the wrong way.  The gate prints rather than
    raises — wall-clock noise on shared hosts is for the human refreshing
    the file to judge (``python -m repro.obs.regress old new`` gives the
    same table with a hard exit code for CI).
    """
    path = Path(path)
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    merged = {**existing, **updates}
    if existing:
        from repro.obs.regress import compare

        report = compare(existing, merged, tolerance=tolerance)
        print()
        print(f"--- regression gate: {path.name} "
              f"(tolerance {tolerance * 100:.0f}%)")
        print(report.table())
    path.write_text(json.dumps(merged, indent=2) + "\n")
    return merged


def error_pct(measured: float, paper: float) -> float:
    """Signed percent deviation from the paper's value."""
    return 100.0 * (measured - paper) / paper


def fmt_row(*columns, widths=None) -> str:
    widths = widths or [14] * len(columns)
    parts = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            parts.append(f"{value:>{width}.4f}")
        else:
            parts.append(f"{str(value):>{width}}")
    return " ".join(parts)
