"""Batched STAP kernels vs the retained per-bin loops.

Unlike the simulator-speed benchmarks this module measures the *numerical*
hot path: the stacked weight kernels of :mod:`repro.stap` against the
per-bin loop references they replaced (``compute_easy_weights_loop``,
``update_r_block_loop``, ``compute_hard_weights_loop`` — the exact
pre-batching implementations, kept as ground truth), plus the end-to-end
functional chain before/after.  Three sections:

* **kernels** — per-kernel wall time, loop vs batched, identical outputs
  asserted (the batched kernels are bit-identical by construction);
* **counters** — per-kernel host seconds and achieved flops/s from
  :mod:`repro.perf.kernels`, against the paper's Table 1 counts;
* **end_to_end** — the sequential reference and the functional pipeline
  over pre-generated CPI cubes (cube synthesis excluded from the timing),
  run once with the loop kernels patched in and once batched, detections
  compared CPI for CPI.

Run under pytest (``pytest benchmarks/bench_kernels.py -m bench_smoke``)
for the fast small-scale guard, or as a plain script for the paper-scale
measurement, which writes ``BENCH_kernels.json`` at the repository root::

    python benchmarks/bench_kernels.py
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro import (
    Assignment,
    CPIStream,
    RadarScenario,
    STAPParams,
    STAPPipeline,
    SequentialSTAP,
    TargetTruth,
)
from repro.perf import achieved_vs_table1, kernel_counters
from repro.stap import easy_weights as ew
from repro.stap import hard_weights as hw
from repro.stap.lsq import qr_append_rows, solve_constrained

#: Where the script mode drops its results.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: CPIs per end-to-end measurement (azimuth revisits included).
NUM_CPIS = 6

#: Functional-pipeline node assignment (modest: the numerics dominate).
FUNCTIONAL_COUNTS = (2, 1, 2, 1, 1, 1, 1)


def bench_scenario() -> RadarScenario:
    return RadarScenario(
        clutter_to_noise_db=40.0,
        targets=(
            TargetTruth(range_cell=20, normalized_doppler=0.25, angle_deg=0.0, snr_db=5.0),
            TargetTruth(range_cell=30, normalized_doppler=0.05, angle_deg=-10.0, snr_db=10.0),
        ),
        seed=11,
    )


# -- loop-mode patching ----------------------------------------------------------
def _update_r_units_loop(state, training, forget):
    """Per-unit loop equivalent of :func:`hw.update_r_units`."""
    for idx in range(state.shape[0]):
        state[idx] = qr_append_rows(state[idx], training[idx], forget=forget)


def _compute_hard_weights_units_loop(state, steering, phases, beam_weight, freq_weight):
    """Per-unit loop equivalent of :func:`hw.compute_hard_weights_units`."""
    n2 = state.shape[1]
    J = n2 // 2
    identity = np.eye(J, dtype=complex)
    weights = np.empty((state.shape[0], n2, steering.shape[1]), dtype=complex)
    for idx in range(state.shape[0]):
        r_data = state[idx]
        scale = float(np.mean(np.abs(np.diag(r_data))))
        if scale <= 0.0:
            scale = 1.0
        constraint = scale * np.hstack(
            [beam_weight * identity, freq_weight * np.conj(phases[idx]) * identity]
        )
        weights[idx] = solve_constrained(r_data, constraint, steering)
    return weights


@contextmanager
def loop_kernels():
    """Patch the per-bin loop kernels back in — the seed implementation.

    Covers both call paths: the module globals the sequential reference's
    weight computers resolve at call time, and the names the parallel
    weight tasks bound at import time.
    """
    from repro.core.tasks import easy_weight_task, hard_weight_task

    saved = [
        (ew, "compute_easy_weights", ew.compute_easy_weights),
        (hw, "update_r_block", hw.update_r_block),
        (hw, "compute_hard_weights", hw.compute_hard_weights),
        (easy_weight_task, "compute_easy_weights", easy_weight_task.compute_easy_weights),
        (hard_weight_task, "update_r_units", hard_weight_task.update_r_units),
        (
            hard_weight_task,
            "compute_hard_weights_units",
            hard_weight_task.compute_hard_weights_units,
        ),
    ]
    ew.compute_easy_weights = ew.compute_easy_weights_loop
    hw.update_r_block = hw.update_r_block_loop
    hw.compute_hard_weights = hw.compute_hard_weights_loop
    easy_weight_task.compute_easy_weights = ew.compute_easy_weights_loop
    hard_weight_task.update_r_units = _update_r_units_loop
    hard_weight_task.compute_hard_weights_units = _compute_hard_weights_units_loop
    try:
        yield
    finally:
        for module, name, value in saved:
            setattr(module, name, value)


# -- per-kernel micro-benchmarks -------------------------------------------------
def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_weight_kernels(params: STAPParams, repeats: int = 3) -> dict:
    """Loop vs batched wall time for the three batched weight kernels."""
    rng = np.random.default_rng(7)
    J, n2, M = params.num_channels, params.num_staggered_channels, params.num_beams
    S, B = params.num_segments, params.num_hard_doppler
    steering = SequentialSTAP(params).steering
    phases = hw.stagger_phase(params, params.hard_bins)

    def crandn(*shape):
        return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

    records = {}

    # Easy weights: one stacked QR + constrained solve over all easy bins.
    stacked = crandn(params.num_easy_doppler, params.easy_train_total, J)
    kappa = params.beam_constraint_weight
    loop_s = _best_of(lambda: ew.compute_easy_weights_loop(stacked, steering, kappa), repeats)
    batched_s = _best_of(lambda: ew.compute_easy_weights(stacked, steering, kappa), repeats)
    identical = np.array_equal(
        ew.compute_easy_weights(stacked, steering, kappa),
        ew.compute_easy_weights_loop(stacked, steering, kappa),
    )
    records["easy_weight"] = _kernel_record(loop_s, batched_s, identical)

    # Hard recursion update: stacked block QR over all (segment, bin) units.
    training = crandn(S, B, params.hard_train_samples, n2)
    state0 = np.zeros((S, B, n2, n2), dtype=complex)
    hw.update_r_block(state0, training, params.forgetting_factor)  # warm state

    def run_update(fn):
        state = state0.copy()
        fn(state, training, params.forgetting_factor)
        return state

    loop_s = _best_of(lambda: run_update(hw.update_r_block_loop), repeats)
    batched_s = _best_of(lambda: run_update(hw.update_r_block), repeats)
    identical = np.array_equal(
        run_update(hw.update_r_block), run_update(hw.update_r_block_loop)
    )
    records["hard_weight_update"] = _kernel_record(loop_s, batched_s, identical)

    # Hard constrained solve over the warm state.
    args = (state0, steering, phases, params.beam_constraint_weight,
            params.freq_constraint_weight)
    loop_s = _best_of(lambda: hw.compute_hard_weights_loop(*args), repeats)
    batched_s = _best_of(lambda: hw.compute_hard_weights(*args), repeats)
    identical = np.array_equal(
        hw.compute_hard_weights(*args), hw.compute_hard_weights_loop(*args)
    )
    records["hard_weight_solve"] = _kernel_record(loop_s, batched_s, identical)
    return records


def _kernel_record(loop_s: float, batched_s: float, identical: bool) -> dict:
    return {
        "loop_seconds": loop_s,
        "batched_seconds": batched_s,
        "speedup": loop_s / batched_s if batched_s else 0.0,
        "identical": bool(identical),
    }


# -- end-to-end measurements -----------------------------------------------------
class _PrebuiltStream:
    """CPIStream lookalike serving pre-generated cubes (no synthesis cost)."""

    def __init__(self, stream: CPIStream, cubes):
        self.params = stream.params
        self.azimuth_cycle = stream.azimuth_cycle
        self._cubes = cubes

    def cube(self, cpi_index: int):
        return self._cubes[cpi_index]

    def take(self, count: int, start: int = 0):
        return self._cubes[start : start + count]


def _detection_lists(reports) -> list:
    return [
        [
            (d.doppler_bin, d.beam, d.range_cell, d.power, d.threshold)
            for d in report.detections
        ]
        for report in reports
    ]


def bench_end_to_end(params: STAPParams, num_cpis: int = NUM_CPIS) -> dict:
    """Sequential reference over pre-generated cubes: loop vs batched."""
    cubes = CPIStream(params, bench_scenario()).take(num_cpis)

    def run() -> tuple[float, list]:
        reference = SequentialSTAP(params)
        start = time.perf_counter()
        reports = reference.process_stream(cubes)
        return time.perf_counter() - start, _detection_lists(reports)

    with loop_kernels():
        loop_s, loop_dets = run()
    batched_s, batched_dets = run()
    return {
        "num_cpis": num_cpis,
        "loop_seconds_per_cpi": loop_s / num_cpis,
        "batched_seconds_per_cpi": batched_s / num_cpis,
        "speedup": loop_s / batched_s if batched_s else 0.0,
        "detections_identical": batched_dets == loop_dets,
        "total_detections": sum(len(d) for d in batched_dets),
    }


def bench_functional_pipeline(params: STAPParams, num_cpis: int = NUM_CPIS) -> dict:
    """Functional-mode parallel pipeline: loop vs batched, pre-built cubes."""
    base = CPIStream(params, bench_scenario())
    stream = _PrebuiltStream(base, base.take(num_cpis))

    def run() -> tuple[float, list]:
        pipeline = STAPPipeline(
            params,
            Assignment(*FUNCTIONAL_COUNTS, name="bench_kernels"),
            mode="functional",
            stream=stream,
            num_cpis=num_cpis,
        )
        start = time.perf_counter()
        result = pipeline.run()
        return time.perf_counter() - start, _detection_lists(result.reports)

    with loop_kernels():
        loop_s, loop_dets = run()
    batched_s, batched_dets = run()
    return {
        "assignment": list(FUNCTIONAL_COUNTS),
        "num_cpis": num_cpis,
        "loop_wall_seconds": loop_s,
        "batched_wall_seconds": batched_s,
        "speedup": loop_s / batched_s if batched_s else 0.0,
        "cpis_per_second": num_cpis / batched_s if batched_s else 0.0,
        "detections_identical": batched_dets == loop_dets,
    }


def bench_kernel_counters(params: STAPParams, num_cpis: int = NUM_CPIS) -> dict:
    """Per-kernel seconds and achieved flops/s over a batched reference run."""
    cubes = CPIStream(params, bench_scenario()).take(num_cpis)
    with kernel_counters.collect():
        SequentialSTAP(params).process_stream(cubes)
    comparison = achieved_vs_table1(num_cpis=num_cpis)
    print(kernel_counters.summary(title=f"kernel counters ({num_cpis} CPIs)"))
    return comparison


def measure_all(params: STAPParams, scale: str, num_cpis: int = NUM_CPIS) -> dict:
    return {
        "scale": scale,
        "kernels": bench_weight_kernels(params),
        "counters": bench_kernel_counters(params, num_cpis),
        "end_to_end": bench_end_to_end(params, num_cpis),
        "functional_pipeline": bench_functional_pipeline(params, num_cpis),
    }


def _print_results(results: dict) -> None:
    for name, record in results["kernels"].items():
        print(
            f"{name:<20} loop {record['loop_seconds'] * 1e3:8.2f} ms   "
            f"batched {record['batched_seconds'] * 1e3:8.2f} ms   "
            f"{record['speedup']:6.1f}x   identical={record['identical']}"
        )
    e2e = results["end_to_end"]
    print(
        f"{'reference end-to-end':<20} loop {e2e['loop_seconds_per_cpi'] * 1e3:8.2f} "
        f"ms/CPI   batched {e2e['batched_seconds_per_cpi'] * 1e3:8.2f} ms/CPI   "
        f"{e2e['speedup']:6.1f}x   identical={e2e['detections_identical']}"
    )
    pipe = results["functional_pipeline"]
    print(
        f"{'functional pipeline':<20} loop {pipe['loop_wall_seconds']:8.2f} s      "
        f"batched {pipe['batched_wall_seconds']:8.2f} s      "
        f"{pipe['speedup']:6.1f}x   identical={pipe['detections_identical']}"
    )


# -- pytest entry points ---------------------------------------------------------
@pytest.mark.bench_smoke
def test_kernels_smoke():
    """Fast guard: batched kernels no slower than the loops, same answers.

    Small scale keeps the guard under a few seconds; the speedup
    assertions use 1.0 (not the typical 5-20x) so timing noise on loaded
    hosts cannot flake the suite — a batched kernel *slower* than its
    Python loop is the regression this guards against.
    """
    params = STAPParams.small()
    results = measure_all(params, "small", num_cpis=4)
    print()
    _print_results(results)
    _merge_results({"smoke": results})
    for name, record in results["kernels"].items():
        assert record["identical"], f"{name}: batched != loop"
        assert record["speedup"] >= 1.0, (
            f"{name}: batched ({record['batched_seconds']:.4f}s) slower than "
            f"loop ({record['loop_seconds']:.4f}s)"
        )
    assert results["end_to_end"]["detections_identical"]
    assert results["end_to_end"]["speedup"] >= 1.0
    assert results["functional_pipeline"]["detections_identical"]


# -- script entry point ----------------------------------------------------------
def _merge_results(updates: dict) -> None:
    """Write results, printing the regression-gate table against the
    previous generation (see :func:`benchmarks.common.merge_results`)."""
    try:
        from benchmarks.common import merge_results
    except ImportError:  # script mode: benchmarks/ itself is sys.path[0]
        from common import merge_results

    merge_results(RESULTS_PATH, updates)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        print(f"usage: {Path(__file__).name}", file=sys.stderr)
        return 2
    results = measure_all(STAPParams.paper(), "paper")
    _print_results(results)
    _merge_results(results)
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
