"""Ablation: network contention fidelity (none / endpoint / links).

DESIGN.md offers three interconnect fidelities.  This benchmark quantifies
what each level of sharing costs at paper scale (case 3, 59 nodes — small
enough for per-link simulation to stay quick): the pure-latency model is
the optimistic bound; endpoint (NIC) serialization — the paper's §7.2
"contention at the sending and receiving nodes" — accounts for nearly all
of the contention effect; full per-link wormhole blocking adds little more
on a lightly-loaded 2-D mesh of this size.
"""

import pytest

from benchmarks.common import NUM_CPIS, paper_params
from repro import CASE3, STAPPipeline


def collect():
    results = {}
    for mode in ("none", "endpoint", "links"):
        results[mode] = STAPPipeline(
            paper_params(), CASE3, num_cpis=NUM_CPIS, contention=mode
        ).run()
    return results


def test_ablation_contention_model(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    print()
    print("Ablation — interconnect contention fidelity (case 3, 59 nodes)")
    for mode, result in results.items():
        print(f"  {mode:<9}: throughput {result.metrics.measured_throughput:.4f} "
              f"CPIs/s, latency {result.metrics.measured_latency:.4f} s")

    thr_none = results["none"].metrics.measured_throughput
    thr_endpoint = results["endpoint"].metrics.measured_throughput
    thr_links = results["links"].metrics.measured_throughput
    # Adding contention cannot meaningfully speed the system up (tiny
    # reorderings of simultaneous events allow sub-percent wiggle).
    assert thr_none >= thr_endpoint * 0.995
    assert thr_endpoint >= thr_links * 0.995
    # At this load the mesh's links are not the bottleneck: the endpoint
    # model captures the effect to within a few percent of full-link
    # simulation.
    assert thr_links == pytest.approx(thr_endpoint, rel=0.05)
    benchmark.extra_info["none"] = round(thr_none, 4)
    benchmark.extra_info["endpoint"] = round(thr_endpoint, 4)
    benchmark.extra_info["links"] = round(thr_links, 4)
