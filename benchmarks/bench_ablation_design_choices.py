"""Ablations of the paper's design choices (DESIGN.md §4, "beyond" items).

The paper motivates three mechanisms without isolating their cost/benefit;
these benchmarks quantify each at paper scale (case 2, 118 nodes):

1. **double buffering + asynchronous communication** (Figure 10) vs a
   synchronous loop;
2. **data collection** on the Doppler -> weight edges (Figure 6b) vs
   shipping the raw K-slices;
3. **replication of pipelines** (the paper's future work / related work
   [13]) vs growing a single pipeline.
"""

import pytest

from benchmarks.common import NUM_CPIS, paper_params
from repro import CASE2, CASE3, ReplicatedSTAPPipeline, STAPPipeline


def run_variant(**kwargs):
    return STAPPipeline(paper_params(), CASE2, num_cpis=NUM_CPIS, **kwargs).run()


def test_ablation_double_buffering(benchmark):
    def collect():
        return run_variant(), run_variant(double_buffering=False)

    buffered, synchronous = benchmark.pedantic(collect, rounds=1, iterations=1)
    thr_b = buffered.metrics.measured_throughput
    thr_s = synchronous.metrics.measured_throughput
    print()
    print("Ablation — double buffering (case 2, 118 nodes)")
    print(f"  buffered   : {thr_b:.4f} CPIs/s")
    print(f"  synchronous: {thr_s:.4f} CPIs/s  ({100 * (thr_b / thr_s - 1):+.1f}% for overlap)")
    # Overlap never hurts; the gain is modest because wire time is small
    # next to compute and the pack passes are CPU work either way.
    assert thr_b >= thr_s * 0.999
    benchmark.extra_info["buffered"] = round(thr_b, 4)
    benchmark.extra_info["synchronous"] = round(thr_s, 4)


def test_ablation_data_collection(benchmark):
    def collect():
        return run_variant(), run_variant(collect_training=False)

    collected, dumped = benchmark.pedantic(collect, rounds=1, iterations=1)
    thr_c = collected.metrics.measured_throughput
    thr_d = dumped.metrics.measured_throughput
    print()
    print("Ablation — data collection on Doppler->weight edges (case 2)")
    print(f"  collected (paper): {thr_c:.4f} CPIs/s, "
          f"{collected.network_bytes / 2**20:.0f} MiB on the wire")
    print(f"  raw K-slices     : {thr_d:.4f} CPIs/s, "
          f"{dumped.network_bytes / 2**20:.0f} MiB on the wire")
    # "Data collection is performed to avoid sending redundant data and
    # hence reduces the communication costs" — the byte saving is real:
    assert dumped.network_bytes > 1.2 * collected.network_bytes
    # ...but the paper itself warns "the cost of data collection may
    # become extremely large due to hardware limitations (e.g. high cache
    # miss ratio)".  With the calibrated 8x strided-copy premium, the
    # gather costs roughly what the redundant bytes would have: throughput
    # is a wash (within 10%) at paper scale.  The optimization pays off
    # when the network, not the copy engine, is the scarce resource.
    assert thr_c == pytest.approx(thr_d, rel=0.10)
    benchmark.extra_info["collected_thpt"] = round(thr_c, 4)
    benchmark.extra_info["dumped_thpt"] = round(thr_d, 4)


def test_ablation_replication_vs_scaling(benchmark):
    """2 x case-3 pipelines (118 nodes) vs 1 x case-2 pipeline (118 nodes).

    Same node budget, two architectures: replication doubles case 3's
    throughput but keeps its (worse) latency; the single larger pipeline
    improves both.  This is exactly the throughput-vs-latency dial of
    Section 4.1.2, now across whole pipelines.
    """

    def collect():
        replicated = ReplicatedSTAPPipeline(
            paper_params(), CASE3, replicas=2, num_cpis=NUM_CPIS - 1
        ).run_measured()
        single = STAPPipeline(
            paper_params(), CASE2, num_cpis=NUM_CPIS
        ).run_measured()
        return replicated, single

    replicated, single = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    print("Ablation — 2 x case3 (2x59 nodes) vs 1 x case2 (118 nodes)")
    print(f"  replicated: {replicated.summary()}")
    print(f"  single    : {single.metrics.measured_throughput:.3f} CPIs/s, "
          f"latency {single.metrics.measured_latency:.4f} s")
    # Replication ~doubles case 3's throughput (2 x 2.06 = 4.1)...
    assert replicated.aggregate_throughput == pytest.approx(
        2 * 2.06, rel=0.2
    )
    # ...but its latency stays at case 3's ~1.3 s, double the single
    # 118-node pipeline's.
    assert replicated.latency > 1.7 * single.metrics.measured_latency
    benchmark.extra_info["replicated_thpt"] = round(replicated.aggregate_throughput, 3)
    benchmark.extra_info["replicated_lat"] = round(replicated.latency, 4)
    benchmark.extra_info["single_thpt"] = round(single.metrics.measured_throughput, 3)
    benchmark.extra_info["single_lat"] = round(single.metrics.measured_latency, 4)
