"""Table 9: adding 4 nodes to the Doppler task (case 2 -> 122 nodes).

Paper: "By increasing the number of nodes 3%, the improvement in
throughput is 32% and in latency is 19%."  The secondary effect is the
interesting part: every *other* task's recv time also dropped (e.g. easy
weight .0998 -> .0519) because the Doppler task both computes and
packs/sends faster — "adding nodes to one task not only affects that
task's performance but has a measurable effect on the performance of
other tasks.  Such effects are very difficult to capture in purely
theoretical models."
"""

import pytest

from benchmarks.common import fmt_row, run_case
from repro import CASE2, CASE2_PLUS_DOPPLER
from repro.core.assignment import TASK_NAMES

#: Paper recv columns, case 2 vs Table 9 (122 nodes).
PAPER_RECV = {
    "easy_weight": (0.0998, 0.0519),
    "hard_weight": (0.0979, 0.0486),
    "easy_beamform": (0.1302, 0.0815),
    "hard_beamform": (0.1782, 0.1232),
    "pulse_compression": (0.1027, 0.0519),
    "cfar": (0.1742, 0.1240),
}


def collect():
    return run_case(CASE2, measured=True), run_case(CASE2_PLUS_DOPPLER, measured=True)


def test_table9_add_doppler_nodes(benchmark):
    before, after = benchmark.pedantic(collect, rounds=1, iterations=1)

    print()
    print("Table 9 — case 2 (118 nodes) vs +4 Doppler nodes (122 nodes)")
    print(fmt_row("task", "recv(118)", "recv(122)", "paper(118)", "paper(122)",
                  widths=[18, 10, 10, 10, 10]))
    improved = 0
    for task in TASK_NAMES:
        if task == "doppler":
            continue
        recv_before = before.metrics.tasks[task].recv
        recv_after = after.metrics.tasks[task].recv
        paper = PAPER_RECV[task]
        print(fmt_row(task, recv_before, recv_after, *paper,
                      widths=[18, 10, 10, 10, 10]))
        if recv_after < recv_before:
            improved += 1
    # The secondary effect: most successors' recv improves.
    assert improved >= 4

    thr_gain = (
        after.metrics.measured_throughput / before.metrics.measured_throughput - 1.0
    )
    lat_gain = (
        1.0 - after.metrics.measured_latency / before.metrics.measured_latency
    )
    print(f"throughput: {before.metrics.measured_throughput:.4f} -> "
          f"{after.metrics.measured_throughput:.4f}  (+{100 * thr_gain:.0f}%; paper +32%)")
    print(f"latency:    {before.metrics.measured_latency:.4f} -> "
          f"{after.metrics.measured_latency:.4f}  (-{100 * lat_gain:.0f}%; paper -19%)")

    # A 3% node increase buys a >15% throughput gain and lower latency.
    assert thr_gain > 0.15
    assert lat_gain > 0.0
    benchmark.extra_info["throughput_gain_pct"] = round(100 * thr_gain, 1)
    benchmark.extra_info["latency_gain_pct"] = round(100 * lat_gain, 1)
