"""Real parallel runtime: measured throughput/latency on actual cores.

Every other benchmark in this directory times the *simulator*; this one
times the paper's pipeline **running for real** — :mod:`repro.rt` worker
processes connected by double-buffered shared-memory channels, executing
the functional kernels on synthetic CPI streams.  It records:

* throughput and latency as a function of **worker count** (the scaled
  Table 7 case 1 plan at several budgets) and of **channel ring depth**
  (depth 1 = synchronous handoff, depth 2 = the paper's double
  buffering);
* the **serial-vs-parallel speedup** over the sequential reference at
  paper scale (the acceptance bar: >= 1.5x at >= 4 workers, asserted by
  the smoke test only when the host has >= 4 usable CPUs);
* the **measured-vs-modeled** comparison for Table 7 case 1: the
  discrete-event simulator's predicted throughput/latency on the 236-node
  AFRL Paragon next to what the scaled-down real pipeline achieves on
  this host (the paper's machine had 85 MFLOPS nodes; the ratio is the
  generational gap, not an error).

Results merge into ``BENCH_rt.json`` through
:func:`benchmarks.common.merge_results`, which diffs against the previous
generation with :mod:`repro.obs.regress`.

Run::

    pytest benchmarks/bench_rt.py -m bench_smoke     # fast guard
    python benchmarks/bench_rt.py                    # full sweep + JSON
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

from repro import (
    CASE1,
    CPIStream,
    ParallelSTAP,
    RadarScenario,
    STAPParams,
    SequentialSTAP,
)
from repro.rt.plan import StagePlan

#: Where the script/smoke modes drop their results.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_rt.json"

#: CPIs per real run: enough for a steady-state window (fill/drain
#: excluded by ``steady_state_slice``, which keeps CPIs [3, n-2) — eight
#: CPIs give a three-point window) without dominating the smoke budget.
NUM_CPIS = 8

#: The benign scenario keeps cube generation (which the Doppler worker
#: performs inline, like a front-end would) cheap and deterministic.
SEED = 3


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _merge_results(updates: dict) -> None:
    try:
        from benchmarks.common import merge_results
    except ImportError:  # script mode: benchmarks/ itself is sys.path[0]
        from common import merge_results

    merge_results(RESULTS_PATH, updates)


def _stream(params: STAPParams) -> CPIStream:
    return CPIStream(params, RadarScenario.benign(seed=SEED))


# -- measurements ----------------------------------------------------------------
def measure_serial(params: STAPParams, num_cpis: int = NUM_CPIS) -> dict:
    """The sequential reference, cube generation included (the parallel
    Doppler worker generates its cubes inline, so the serial baseline
    must pay the same cost for the speedup to mean anything)."""
    stream = _stream(params)
    stap = SequentialSTAP(params)
    stap.process(stream.cube(0))  # warm the kernels outside the window
    start = time.perf_counter()
    for i in range(num_cpis):
        stap.process(stream.cube(i))
    wall = time.perf_counter() - start
    return {
        "num_cpis": num_cpis,
        "wall_seconds": wall,
        "seconds_per_cpi": wall / num_cpis,
        "throughput_cpis_per_s": num_cpis / wall,
    }


def measure_rt(
    params: STAPParams,
    workers: int | None = None,
    depth: int = 2,
    num_cpis: int = NUM_CPIS,
    plan: StagePlan | None = None,
) -> dict:
    """One real parallel run; returns the JSON-ready record."""
    rt = ParallelSTAP(
        params,
        _stream(params),
        num_cpis=num_cpis,
        workers=workers,
        depth=depth,
        plan=plan,
    )
    result = rt.run(timeout=600.0)
    return {
        "workers": result.plan.total_workers,
        "plan": result.plan.as_dict(),
        "depth": depth,
        "num_cpis": num_cpis,
        "elapsed_seconds": result.elapsed_seconds,
        "throughput_cpis_per_s": result.throughput,
        "steady_throughput_cpis_per_s": result.steady_throughput,
        "latency_seconds": result.latency,
    }


def measure_worker_sweep(params: STAPParams,
                         worker_counts=(7, 9, 12)) -> list[dict]:
    """Throughput/latency vs worker count (scaled case 1 plans)."""
    return [measure_rt(params, workers=w) for w in worker_counts]


def measure_depth_sweep(params: STAPParams, depths=(1, 2, 4)) -> list[dict]:
    """Throughput/latency vs channel ring depth at the 7-worker plan."""
    return [measure_rt(params, workers=7, depth=d) for d in depths]


def measure_speedup(num_cpis: int = NUM_CPIS) -> dict:
    """Serial vs parallel at paper scale — the headline acceptance number.

    The worker budget adapts to the host: at least the seven-stage
    minimum, at most nine (the scaled case 1 shape), never more than
    there are CPUs to run them on plus the parent.
    """
    params = STAPParams.paper()
    cpus = _usable_cpus()
    workers = max(7, min(9, cpus))
    serial = measure_serial(params, num_cpis)
    parallel = measure_rt(params, workers=workers, num_cpis=num_cpis)
    speedup = (parallel["throughput_cpis_per_s"]
               / serial["throughput_cpis_per_s"])
    return {
        "usable_cpus": cpus,
        "serial": serial,
        "parallel": parallel,
        "speedup": speedup,
    }


def measure_vs_modeled(num_cpis: int = NUM_CPIS) -> dict:
    """Table 7 case 1: the simulator's Paragon prediction next to the real
    pipeline's host measurement.

    The modeled run is the full 236-node case 1 on the simulated 1998
    machine (result-cached, like every modeled benchmark); the measured
    run is the same decomposition scaled onto local worker processes.
    The throughput ratio is dominated by thirty years of per-node FLOPS,
    so it is recorded as context, not gated.
    """
    try:
        from benchmarks.common import NUM_CPIS as MODELED_CPIS, run_case
    except ImportError:  # script mode: benchmarks/ itself is sys.path[0]
        from common import NUM_CPIS as MODELED_CPIS, run_case

    modeled = run_case(CASE1, measured=True)
    params = STAPParams.paper()
    measured = measure_rt(params, workers=9, num_cpis=num_cpis)
    return {
        "case": "case1",
        "modeled": {
            "machine": "AFRL Paragon (simulated)",
            "nodes": CASE1.total_nodes,
            "num_cpis": MODELED_CPIS,
            "throughput_cpis_per_s": modeled.metrics.measured_throughput,
            "latency_seconds": modeled.metrics.measured_latency,
        },
        "measured": measured,
        "throughput_ratio_measured_over_modeled": (
            measured["throughput_cpis_per_s"]
            / modeled.metrics.measured_throughput
        ),
    }


def measure_all() -> dict:
    small = STAPParams.small()
    return {
        "worker_sweep": measure_worker_sweep(small),
        "depth_sweep": measure_depth_sweep(small),
        "speedup": measure_speedup(),
        "vs_modeled": measure_vs_modeled(),
    }


def _print_summary(results: dict) -> None:
    for record in results["worker_sweep"]:
        print(f"  workers={record['workers']:2d} depth={record['depth']}: "
              f"{record['throughput_cpis_per_s']:7.2f} CPIs/s "
              f"(steady {record['steady_throughput_cpis_per_s']:7.2f}), "
              f"latency {record['latency_seconds'] * 1e3:7.1f} ms")
    for record in results["depth_sweep"]:
        print(f"  depth={record['depth']} workers={record['workers']:2d}: "
              f"{record['throughput_cpis_per_s']:7.2f} CPIs/s")
    sp = results["speedup"]
    print(f"  paper scale: serial "
          f"{sp['serial']['throughput_cpis_per_s']:5.2f} CPIs/s, parallel "
          f"{sp['parallel']['throughput_cpis_per_s']:5.2f} CPIs/s -> "
          f"{sp['speedup']:.2f}x on {sp['usable_cpus']} CPUs")
    vm = results["vs_modeled"]
    print(f"  vs modeled (case 1): Paragon "
          f"{vm['modeled']['throughput_cpis_per_s']:6.3f} CPIs/s modeled, "
          f"host {vm['measured']['throughput_cpis_per_s']:6.3f} CPIs/s "
          f"measured ({vm['throughput_ratio_measured_over_modeled']:.2f}x)")


# -- pytest entry points ---------------------------------------------------------
@pytest.mark.bench_smoke
@pytest.mark.rt
def test_rt_smoke():
    """The runtime's acceptance benchmark: sweeps + speedup + JSON out.

    The >= 1.5x serial-vs-parallel bar is asserted only on hosts with
    >= 4 usable CPUs; a single-core container cannot physically pipeline,
    but its numbers are still recorded for the dashboard.
    """
    results = measure_all()
    print()
    _print_summary(results)
    _merge_results({"rt": results})
    print(f"wrote {RESULTS_PATH}")

    sweep = results["worker_sweep"]
    assert all(r["num_cpis"] == NUM_CPIS for r in sweep)
    assert all(r["throughput_cpis_per_s"] > 0 for r in sweep)
    assert {r["depth"] for r in results["depth_sweep"]} == {1, 2, 4}
    assert results["vs_modeled"]["modeled"]["throughput_cpis_per_s"] > 0

    speedup = results["speedup"]
    if speedup["usable_cpus"] >= 4 and speedup["parallel"]["workers"] >= 4:
        assert speedup["speedup"] >= 1.5, (
            f"parallel runtime only {speedup['speedup']:.2f}x over serial "
            f"on {speedup['usable_cpus']} CPUs "
            f"(workers={speedup['parallel']['workers']})"
        )


# -- script entry point ----------------------------------------------------------
def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        print(f"usage: {Path(__file__).name} (no arguments)", file=sys.stderr)
        return 2
    results = measure_all()
    _print_summary(results)
    _merge_results({"rt": results})
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
