"""Table 1: floating-point operations per task for one CPI.

Paper: 403,552,528 flops total at K=512, J=16, N=128, M=6; hard weight
computation dominates (197M), CFAR is cheapest (1.7M).  The analytic model
matches five tasks exactly and the two weight tasks within 0.02%.
"""

from benchmarks.common import error_pct, paper_params
from repro.stap import flops


def test_table1_flop_counts(benchmark):
    params = paper_params()

    counts = benchmark(flops.all_task_flops, params)

    print()
    print("Table 1 — flops to process one CPI")
    print(flops.flops_table(params))
    for task, paper_value in flops.PAPER_TABLE1.items():
        model_value = counts[task]
        assert abs(error_pct(model_value, paper_value)) < 0.05, task
        benchmark.extra_info[task] = int(model_value)
    benchmark.extra_info["paper_total"] = flops.PAPER_TABLE1["total"]
