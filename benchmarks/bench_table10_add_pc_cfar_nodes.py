"""Table 10: adding 16 nodes to pulse compression + CFAR (-> 138 nodes).

Paper: "the throughput did not improve compared to the results in Table 9,
even though this assignment has 16 more nodes.  In this case, the weight
tasks are the bottleneck ... On the other hand, we observe 23% improvement
in the latency" — because pulse compression and CFAR sit on the latency
critical path (equation 3) while throughput is pinned by the slowest task.
"""

import pytest

from benchmarks.common import run_case
from repro import CASE2_PLUS_DOPPLER, CASE2_PLUS_DOPPLER_PC_CFAR
from repro.scheduling import analyze_bottleneck


def collect():
    return (
        run_case(CASE2_PLUS_DOPPLER, measured=True),
        run_case(CASE2_PLUS_DOPPLER_PC_CFAR, measured=True),
    )


def test_table10_add_pc_cfar_nodes(benchmark):
    table9, table10 = benchmark.pedantic(collect, rounds=1, iterations=1)

    thr9 = table9.metrics.measured_throughput
    thr10 = table10.metrics.measured_throughput
    lat9 = table9.metrics.measured_latency
    lat10 = table10.metrics.measured_latency
    print()
    print("Table 10 — 122 nodes vs +16 on pulse compression/CFAR (138 nodes)")
    print(f"throughput: {thr9:.4f} -> {thr10:.4f} CPIs/s "
          f"(paper: 5.0213 -> 4.9052, i.e. flat)")
    print(f"latency:    {lat9:.4f} -> {lat10:.4f} s "
          f"(paper: 0.5498 -> 0.4247, -23%)")

    # Throughput flat: the extra nodes feed non-bottleneck tasks.
    assert thr10 == pytest.approx(thr9, rel=0.10)
    # Latency improves by a double-digit percentage.
    lat_gain = 1.0 - lat10 / lat9
    assert lat_gain > 0.10
    print(f"latency improvement: {100 * lat_gain:.0f}%")

    # The diagnosis the paper gives: the weight tasks are the bottleneck and
    # the fattened tasks idle ("receiving time ... much larger than their
    # computation time").
    report = analyze_bottleneck(table10.metrics)
    print(report.summary())
    assert report.bottleneck_task in ("easy_weight", "hard_weight", "doppler")
    starved = set(report.starved_tasks)
    assert "pulse_compression" in starved or "cfar" in starved

    benchmark.extra_info["throughput_ratio"] = round(thr10 / thr9, 3)
    benchmark.extra_info["latency_gain_pct"] = round(100 * lat_gain, 1)
