"""Table 8: throughput and latency, equations vs measurement, 3 cases.

Paper ("real" rows): throughput 7.27 / 3.80 / 1.99 CPIs per second and
latency 0.362 / 0.681 / 1.353 s for 236 / 118 / 59 nodes — i.e. both
metrics scale linearly with machine size, the paper's headline result.
Latency here uses the two-phase measurement (probe throughput, re-run with
the input paced at it), mirroring the radar-paced arrivals of the real
system; equations (1)/(2) come from the per-task timing.
"""

import pytest

from benchmarks.common import fmt_row, run_case
from repro import CASE1, CASE2, CASE3

PAPER_TABLE8 = {
    "case1": {"nodes": 236, "throughput": 7.2659, "latency": 0.3622,
              "eq_throughput": 7.1019, "eq_latency": 0.5362},
    "case2": {"nodes": 118, "throughput": 3.7959, "latency": 0.6805,
              "eq_throughput": 3.7919, "eq_latency": 1.0346},
    "case3": {"nodes": 59, "throughput": 1.9898, "latency": 1.3530,
              "eq_throughput": 1.9791, "eq_latency": 1.9996},
}

CASES = {"case1": CASE1, "case2": CASE2, "case3": CASE3}


def collect():
    results = {}
    for key, assignment in CASES.items():
        results[key] = run_case(assignment, measured=True)
    return results


def test_table8_throughput_latency(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    print()
    print("Table 8 — throughput (CPIs/s) and latency (s): measured vs paper")
    print(fmt_row("case", "nodes", "thpt", "p.thpt", "lat", "p.lat",
                  widths=[6, 6, 8, 8, 8, 8]))
    for key in ("case1", "case2", "case3"):
        m = results[key].metrics
        paper = PAPER_TABLE8[key]
        print(fmt_row(key, paper["nodes"], m.measured_throughput,
                      paper["throughput"], m.measured_latency, paper["latency"],
                      widths=[6, 6, 8, 8, 8, 8]))
        # Within 15% of the paper's absolute numbers.
        assert m.measured_throughput == pytest.approx(paper["throughput"], rel=0.15)
        assert m.measured_latency == pytest.approx(paper["latency"], rel=0.15)
        # Equation (2) upper-bounds measured latency, as the paper notes.
        assert m.equation_latency >= 0.95 * m.measured_latency
        benchmark.extra_info[f"{key}.throughput"] = round(m.measured_throughput, 4)
        benchmark.extra_info[f"{key}.latency"] = round(m.measured_latency, 4)

    # The headline: linear scaling across the three machine sizes.
    t1 = results["case1"].metrics.measured_throughput
    t2 = results["case2"].metrics.measured_throughput
    t3 = results["case3"].metrics.measured_throughput
    assert t1 / t2 == pytest.approx(2.0, rel=0.1)
    assert t2 / t3 == pytest.approx(2.0, rel=0.1)
    l1 = results["case1"].metrics.measured_latency
    l2 = results["case2"].metrics.measured_latency
    l3 = results["case3"].metrics.measured_latency
    assert l2 / l1 == pytest.approx(2.0, rel=0.15)
    assert l3 / l2 == pytest.approx(2.0, rel=0.15)
