"""Table 5: inter-task communication, beamforming -> pulse compression.

Paper (seconds), pulse compression at 8 or 16 nodes, each BF at 4/8/16:

    easy BF 4:  recv .5016 (PC 8) / .5714 (PC 16)
    easy BF 8:  recv .1379 / .2090
    easy BF 16: recv .0771 / .0569  (sends always < .01 except the
                                     unbalanced 16->8 case)

Both BF tasks and PC partition along Doppler bins, so there is no
reorganization; the recv column again reflects waiting on the producers.
"""

import pytest

from benchmarks.common import fmt_row, run_assignment

PAPER_PC_RECV = {  # (bf_nodes, pc_nodes) -> PC recv
    (4, 8): 0.5016,
    (8, 8): 0.1379,
    (16, 8): 0.0771,
    (4, 16): 0.5714,
    (8, 16): 0.2090,
    (16, 16): 0.0569,
}


def sweep():
    rows = {}
    for p5 in (8, 16):
        for bf in (4, 8, 16):
            # Scale both BF tasks together, as the paper's table implies
            # (easy and hard BF rows share the same PC recv).  The other
            # tasks are kept generously provisioned so the measured pair is
            # not masked by an unrelated bottleneck.
            result = run_assignment(32, 16, 112, bf, bf, p5, 8)
            tasks = result.metrics.tasks
            rows[(bf, p5)] = (
                tasks["easy_beamform"].send,
                tasks["hard_beamform"].send,
                tasks["pulse_compression"].recv,
            )
    return rows


def test_table5_bf_pc_comm(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Table 5 — BF -> pulse compression (sends | PC recv; paper recv)")
    print(fmt_row("BF", "P5", "ebf.send", "hbf.send", "pc.recv", "paper",
                  widths=[4, 4, 9, 9, 9, 9]))
    for (bf, p5), (esend, hsend, recv) in sorted(rows.items()):
        print(fmt_row(bf, p5, esend, hsend, recv, PAPER_PC_RECV[(bf, p5)],
                      widths=[4, 4, 9, 9, 9, 9]))

    for (_bf, _p5), (esend, hsend, _recv) in rows.items():
        assert esend < 0.05 and hsend < 0.05  # aligned bins: cheap sends
    for p5 in (8, 16):
        # Faster producers -> much less PC waiting (paper: .50 -> .08).
        assert rows[(16, p5)][2] < 0.5 * rows[(4, p5)][2]
    benchmark.extra_info["pc.recv@(4,8)"] = round(rows[(4, 8)][2], 4)
    benchmark.extra_info["pc.recv@(16,16)"] = round(rows[(16, 16)][2], 4)
