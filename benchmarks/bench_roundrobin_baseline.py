"""Section 2 baseline: the RTMCARM round-robin system.

Paper: the 25-node ruggedized Paragon "processed up to 10 CPIs per second
(throughput) and achieved a latency of 2.35 seconds per CPI", with no
inter-node communication — throughput scales with nodes, latency does not.
"""

import pytest

from repro import RoundRobinSTAP, STAPParams


def collect():
    params = STAPParams.paper()
    return {
        nodes: RoundRobinSTAP(params, num_nodes=nodes).run(num_cpis=50)
        for nodes in (5, 10, 25)
    }


def test_roundrobin_baseline(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    print()
    print("Section 2 baseline — round-robin on the ruggedized Paragon")
    print(f"{'nodes':>6} {'throughput':>12} {'latency':>10}")
    for nodes, result in sorted(results.items()):
        print(f"{nodes:>6} {result.throughput:>9.2f}/s {result.latency:>9.3f} s")
    print("paper: up to 10 CPIs/s, latency 2.35 s on 25 nodes")

    full = results[25]
    # "up to 10 CPIs per second"
    assert full.throughput == pytest.approx(10.0, rel=0.15)
    # "a latency of 2.35 seconds per CPI"
    assert full.latency == pytest.approx(2.35, rel=0.15)
    # Latency does not improve with more nodes...
    assert results[25].latency == pytest.approx(results[5].latency, rel=0.05)
    # ...but throughput scales linearly.
    assert results[25].throughput / results[5].throughput == pytest.approx(5.0, rel=0.2)

    benchmark.extra_info["throughput@25"] = round(full.throughput, 2)
    benchmark.extra_info["latency@25"] = round(full.latency, 3)
