"""Table 2: inter-task communication, Doppler -> successor tasks.

Paper rows (time in seconds), with successors at easy weight 16 /
hard weight 56 or 112 / easy BF 16 / hard BF 16:

    P0=8 :  send .1332, recv .36-.45 across successors
    P0=16:  send .0679, recv .10-.20
    P0=32:  send .0340, recv .003-.065

The headline behaviours to reproduce: the Doppler task's visible send time
halves with its node count (less data to collect/reorganize per node), and
successor recv times — dominated by waiting for Doppler's computation —
drop superlinearly as P0 grows.
"""

import pytest

from benchmarks.common import fmt_row, run_assignment

#: Paper's Table 2: P0 -> (send, recv at easy weight 16 nodes, recv at
#: hard weight 56 nodes, recv at easy BF 16, recv at hard BF 16).
PAPER_TABLE2 = {
    8: (0.1332, 0.4339, 0.3603, 0.4509, 0.4395),
    16: (0.0679, 0.1780, 0.1048, 0.1955, 0.1843),
    32: (0.0340, 0.0511, 0.0034, 0.0646, 0.0519),
}


def sweep():
    rows = {}
    for p0 in (8, 16, 32):
        result = run_assignment(p0, 16, 56, 16, 16, 16, 16)
        tasks = result.metrics.tasks
        rows[p0] = (
            tasks["doppler"].send,
            tasks["easy_weight"].recv,
            tasks["hard_weight"].recv,
            tasks["easy_beamform"].recv,
            tasks["hard_beamform"].recv,
        )
    return rows


def test_table2_doppler_comm(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Table 2 — Doppler -> successors communication (send | recvs)")
    header = ["P0", "send", "ew.recv", "hw.recv", "ebf.recv", "hbf.recv"]
    print(fmt_row(*header, widths=[4] + [9] * 5))
    for p0, measured in sorted(rows.items()):
        print(fmt_row(p0, *measured, widths=[4] + [9] * 5))
        print(fmt_row("", *PAPER_TABLE2[p0], widths=[4] + [9] * 5) + "   (paper)")

    sends = {p0: row[0] for p0, row in rows.items()}
    # Send time scales ~1/P0 (data collected/reorganized per node halves).
    assert sends[8] / sends[16] == pytest.approx(2.0, rel=0.2)
    assert sends[16] / sends[32] == pytest.approx(2.0, rel=0.2)
    # Absolute send times within 35% of the paper's.
    for p0, paper_row in PAPER_TABLE2.items():
        assert sends[p0] == pytest.approx(paper_row[0], rel=0.35)
    # Successor recv times drop steeply with P0 (they idle on Doppler).
    for successor in range(1, 5):
        recv8 = rows[8][successor]
        recv32 = rows[32][successor]
        assert recv32 < 0.35 * recv8
    benchmark.extra_info["send@8"] = round(sends[8], 4)
    benchmark.extra_info["send@32"] = round(sends[32], 4)
