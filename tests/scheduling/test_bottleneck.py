"""Bottleneck analysis of pipeline runs."""

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.scheduling import analyze_bottleneck


@pytest.fixture(scope="module")
def starved_weights_result():
    # Weight tasks get the minimum; everything else is generous — the
    # Table 10 situation.
    params = STAPParams.small()
    return STAPPipeline(
        params, Assignment(6, 1, 2, 3, 4, 4, 4, name="starved"), num_cpis=10
    ).run()


class TestAnalysis:
    def test_identifies_weight_bottleneck(self, starved_weights_result):
        report = analyze_bottleneck(starved_weights_result.metrics)
        assert report.bottleneck_task in ("hard_weight", "easy_weight")

    def test_downstream_tasks_starved(self, starved_weights_result):
        report = analyze_bottleneck(starved_weights_result.metrics)
        # "the receiving time of the rest of the tasks are much larger than
        # their computation time" (Section 7.3).
        assert "pulse_compression" in report.starved_tasks or (
            "cfar" in report.starved_tasks
        )

    def test_overhead_fractions_bounded(self, starved_weights_result):
        report = analyze_bottleneck(starved_weights_result.metrics)
        for fraction in report.overhead_fraction.values():
            assert 0.0 <= fraction <= 1.0

    def test_throughput_capped_by_bottleneck(self, starved_weights_result):
        report = analyze_bottleneck(starved_weights_result.metrics)
        assert report.throughput == pytest.approx(
            1.0 / report.bottleneck_seconds, rel=0.2
        )

    def test_summary_renders(self, starved_weights_result):
        text = analyze_bottleneck(starved_weights_result.metrics).summary()
        assert "bottleneck" in text
