"""Analytic pipeline model: monotonicity, agreement with simulation."""

import pytest

from repro import Assignment, CASE1, CASE2, CASE3, STAPParams, STAPPipeline
from repro.core.assignment import TASK_NAMES
from repro.errors import ConfigurationError
from repro.scheduling import AnalyticPipelineModel


@pytest.fixture(scope="module")
def model():
    return AnalyticPipelineModel(STAPParams.paper())


class TestTaskTimes:
    def test_times_decrease_with_nodes(self, model):
        for task in TASK_NAMES:
            times = [model.task_seconds(task, n) for n in (1, 2, 4, 8, 16)]
            assert all(b < a for a, b in zip(times, times[1:]))

    def test_perfect_scaling_shape(self, model):
        # The separable model is exactly 1/P.
        for task in TASK_NAMES:
            assert model.task_seconds(task, 8) == pytest.approx(
                model.task_seconds(task, 1) / 8
            )

    def test_zero_nodes_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.task_seconds("doppler", 0)

    def test_hard_weight_slowest_per_node(self, model):
        times = {t: model.task_seconds(t, 1) for t in TASK_NAMES}
        assert max(times, key=times.get) == "hard_weight"


class TestPredictions:
    def test_throughput_doubles_case3_to_case2_to_case1(self, model):
        t3 = model.throughput(CASE3)
        t2 = model.throughput(CASE2)
        t1 = model.throughput(CASE1)
        assert t2 / t3 == pytest.approx(2.0, rel=0.05)
        assert t1 / t2 == pytest.approx(2.0, rel=0.05)

    def test_latency_halves_case3_to_case2_to_case1(self, model):
        l3, l2, l1 = model.latency(CASE3), model.latency(CASE2), model.latency(CASE1)
        assert l3 / l2 == pytest.approx(2.0, rel=0.05)
        assert l2 / l1 == pytest.approx(2.0, rel=0.05)

    def test_predictions_close_to_simulation(self):
        """The closed-form model must track the discrete-event simulation
        (it ignores idle/queueing, so agreement within ~20%)."""
        params = STAPParams.small()
        assignment = Assignment(4, 2, 8, 2, 4, 2, 2, name="check")
        model = AnalyticPipelineModel(params)
        sim_result = STAPPipeline(params, assignment, num_cpis=10).run()
        predicted = model.throughput(assignment)
        measured = sim_result.metrics.measured_throughput
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_paper_throughputs_within_band(self, model):
        # Table 8 real: 7.27 / 3.80 / 1.99 CPIs per second.
        assert model.throughput(CASE1) == pytest.approx(7.27, rel=0.2)
        assert model.throughput(CASE2) == pytest.approx(3.80, rel=0.2)
        assert model.throughput(CASE3) == pytest.approx(1.99, rel=0.2)

    def test_bottleneck_identification(self, model):
        starved_weights = Assignment(32, 2, 4, 16, 16, 16, 16, name="starved")
        assert model.bottleneck(starved_weights) in ("hard_weight", "easy_weight")
