"""Assignment optimizers: feasibility, optimality, constraint handling."""

import pytest

from repro import CASE2, STAPParams
from repro.core.assignment import TASK_NAMES
from repro.errors import AssignmentError
from repro.scheduling import (
    AnalyticPipelineModel,
    exhaustive_search,
    optimize_latency,
    optimize_throughput,
)


@pytest.fixture(scope="module")
def model():
    return AnalyticPipelineModel(STAPParams.paper())


@pytest.fixture(scope="module")
def tiny_model():
    return AnalyticPipelineModel(STAPParams.tiny())


class TestThroughputOptimizer:
    def test_budget_respected(self, model):
        for budget in (7, 20, 59, 118):
            assignment = optimize_throughput(model, budget)
            assert assignment.total_nodes <= budget
            assert all(c >= 1 for c in assignment.counts())

    def test_beats_or_matches_paper_case2(self, model):
        optimized = optimize_throughput(model, 118)
        assert model.throughput(optimized) >= model.throughput(CASE2)

    def test_monotone_in_budget(self, model):
        t_small = model.throughput(optimize_throughput(model, 59))
        t_big = model.throughput(optimize_throughput(model, 118))
        assert t_big > t_small

    def test_matches_exhaustive_on_tiny_budget(self, tiny_model):
        budget = 11
        greedy = optimize_throughput(tiny_model, budget)
        best = exhaustive_search(tiny_model, budget, objective="throughput",
                                 max_per_task=4)
        assert tiny_model.throughput(greedy) == pytest.approx(
            tiny_model.throughput(best), rel=1e-9
        )

    def test_below_minimum_budget_rejected(self, model):
        with pytest.raises(AssignmentError):
            optimize_throughput(model, 6)

    def test_respects_work_unit_limits(self, tiny_model):
        # tiny: doppler limit 48, cfar limit 16, etc.  A huge budget must
        # not push any task past its limit.
        assignment = optimize_throughput(tiny_model, 150)
        params = tiny_model.params
        assignment.validate_for(params)


class TestLatencyOptimizer:
    def test_beats_throughput_optimizer_on_latency(self, model):
        budget = 118
        lat_opt = optimize_latency(model, budget)
        thr_opt = optimize_throughput(model, budget)
        assert model.latency(lat_opt) <= model.latency(thr_opt)

    def test_throughput_floor_honoured(self, model):
        floor = 3.0
        assignment = optimize_latency(model, 118, min_throughput=floor)
        assert model.throughput(assignment) >= floor * 0.999

    def test_without_floor_weight_tasks_stay_minimal(self, model):
        """Weight tasks are off the latency critical path (the temporal
        dependency trick), so a pure-latency allocation starves them."""
        assignment = optimize_latency(model, 60)
        assert assignment.easy_weight == 1
        assert assignment.hard_weight == 1

    def test_budget_respected(self, model):
        assignment = optimize_latency(model, 50, min_throughput=1.0)
        assert assignment.total_nodes <= 50


class TestExhaustive:
    def test_latency_objective(self, tiny_model):
        best = exhaustive_search(tiny_model, 10, objective="latency", max_per_task=3)
        assert best.total_nodes <= 10

    def test_unknown_objective_rejected(self, tiny_model):
        with pytest.raises(AssignmentError):
            exhaustive_search(tiny_model, 10, objective="magic")

    def test_infeasible_budget_rejected(self, tiny_model):
        with pytest.raises(AssignmentError):
            exhaustive_search(tiny_model, 3)

    def test_combination_guard_names_the_count(self, tiny_model):
        # 4 choices per task -> 4**7 = 16384 candidates, over a limit of 1000.
        with pytest.raises(AssignmentError, match="16384"):
            exhaustive_search(
                tiny_model, 10, max_per_task=4, max_combinations=1000
            )

    def test_combination_guard_counts_grid_not_feasible_set(self, tiny_model):
        # The guard must trip before enumeration: the feasible set under
        # this budget is small, but the grid itself is what gets walked.
        with pytest.raises(AssignmentError, match="max_combinations"):
            exhaustive_search(
                tiny_model, 7, max_per_task=6, max_combinations=10_000
            )

    def test_default_limit_admits_stock_grid(self, tiny_model):
        # The stock call is max_per_task=8 -> 8**7 ~ 2.1M candidates; the
        # default limit must not reject it (only *raising* the grid needs
        # an explicit opt-in), and small grids must run unimpeded.
        import inspect

        default = inspect.signature(exhaustive_search).parameters[
            "max_combinations"
        ].default
        assert default >= 8**7
        assert exhaustive_search(tiny_model, 9, max_per_task=2).total_nodes <= 9
