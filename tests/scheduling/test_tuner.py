"""Simulation-in-the-loop tuner: seeds, prescreen, refinement, resume."""

from dataclasses import replace

import pytest

from repro import STAPParams
from repro.core.assignment import Assignment
from repro.errors import AssignmentError, ConfigurationError
from repro.machine import SpeedRegion, afrl_paragon
from repro.perf import exec_counters
from repro.scheduling import (
    AnalyticPipelineModel,
    TunerConfig,
    optimize_throughput,
    tune,
)

PARAMS = STAPParams.tiny()
BUDGET = 12


def het_machine(factor=0.25, stop=4):
    return replace(
        afrl_paragon(), speed_regions=(SpeedRegion(0, stop, factor),)
    )


@pytest.fixture(scope="module")
def sim_result():
    """One shared simulated tune on the tiny heterogeneous machine."""
    return tune(
        PARAMS,
        BUDGET,
        machine=het_machine(),
        config=TunerConfig(num_cpis=8, sim_candidates=6, sim_rounds=2),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TunerConfig(objective="goodput")
        with pytest.raises(ConfigurationError):
            TunerConfig(num_cpis=5)  # below the steady-state minimum
        with pytest.raises(ConfigurationError):
            TunerConfig(sim_candidates=-1)
        # Analytic-only tuning has no steady-state constraint.
        TunerConfig(num_cpis=2, sim_candidates=0)

    def test_budget_validation(self):
        with pytest.raises(AssignmentError):
            tune(PARAMS, 6)
        with pytest.raises(AssignmentError):
            tune(
                PARAMS,
                BUDGET,
                seeds=[Assignment(8, 4, 28, 4, 7, 4, 4, name="too big")],
                config=TunerConfig(sim_candidates=0),
            )


class TestAnalyticOnly:
    def test_prescreen_path_runs_no_simulations(self):
        snap = exec_counters.snapshot()
        result = tune(
            PARAMS,
            BUDGET,
            machine=het_machine(),
            config=TunerConfig(sim_candidates=0),
        )
        assert exec_counters.delta_since(snap)["simulations_run"] == 0
        assert result.analytic_only
        assert result.points_simulated == 0
        assert result.front.num_cpis == 0
        assert all(p.source == "analytic" for p in result.front.points)

    def test_beats_equations_pick_on_heterogeneous_machine(self):
        machine = het_machine()
        result = tune(
            PARAMS, BUDGET, machine=machine, config=TunerConfig(sim_candidates=0)
        )
        model = AnalyticPipelineModel(PARAMS, machine)
        baseline = model.predicted_throughput(
            optimize_throughput(model, BUDGET)
        )
        assert result.best_throughput.throughput >= baseline * 1.10
        assert result.throughput_gain >= 1.10

    def test_front_is_within_budget_and_feasible(self):
        result = tune(
            PARAMS, BUDGET, machine=het_machine(), config=TunerConfig(sim_candidates=0)
        )
        for point in result.front.points:
            assert point.total_nodes <= BUDGET
            point.assignment().validate_for(PARAMS)

    def test_deterministic(self):
        cfg = TunerConfig(sim_candidates=0)
        a = tune(PARAMS, BUDGET, machine=het_machine(), config=cfg)
        b = tune(PARAMS, BUDGET, machine=het_machine(), config=cfg)
        assert [p.counts for p in a.front.points] == [p.counts for p in b.front.points]

    def test_homogeneous_front_contains_greedy_pick(self):
        result = tune(PARAMS, BUDGET, config=TunerConfig(sim_candidates=0))
        model = AnalyticPipelineModel(PARAMS)
        greedy = tuple(optimize_throughput(model, BUDGET).counts())
        assert result.front.covers(
            model.predicted_throughput(Assignment(*greedy)),
            model.predicted_latency(Assignment(*greedy)),
        )


class TestSimulated:
    def test_front_is_simulated_with_predictions_attached(self, sim_result):
        assert not sim_result.analytic_only
        assert sim_result.points_simulated > 0
        for point in sim_result.front.points:
            assert point.source == "simulated"
            assert point.predicted_throughput is not None

    def test_baseline_always_simulated(self, sim_result):
        assert sim_result.baseline["simulated_throughput"] is not None
        assert sim_result.baseline["simulated_latency"] is not None

    def test_beats_equations_pick_by_ten_percent(self, sim_result):
        """The acceptance bar: on a heterogeneous machine the tuner finds
        an equal-budget assignment >= 10% faster (simulated) than the
        equations-(1)-(3) pick."""
        assert sim_result.throughput_gain >= 1.10

    def test_seeds_are_simulated_and_covered(self):
        seed = Assignment(3, 1, 2, 2, 1, 1, 2, name="rider")
        result = tune(
            PARAMS,
            BUDGET,
            machine=het_machine(),
            config=TunerConfig(num_cpis=8, sim_candidates=4, sim_rounds=1),
            seeds=[seed],
        )
        # The seed was force-included in the simulation set, so the front
        # must weakly dominate it (it cannot sit ahead of the front).
        from repro.exec import SimPoint, execute_point

        outcome = execute_point(
            SimPoint(
                PARAMS,
                seed,
                machine=het_machine(),
                num_cpis=8,
                label="seed check",
            )
        )
        assert result.front.covers(
            outcome.metrics.measured_throughput,
            outcome.metrics.measured_latency,
        )

    def test_summary_mentions_baseline(self, sim_result):
        text = sim_result.summary()
        assert "baseline" in text
        assert "front of" in text

    def test_to_dict_embeds_front_and_counters(self, sim_result):
        document = sim_result.to_dict()
        assert document["extra"]["baseline"]["counts"]
        assert document["extra"]["points_simulated"] == sim_result.points_simulated
        assert document["points"]


class TestCampaignResume:
    def test_warm_store_reruns_with_zero_simulations(self, tmp_path):
        cfg = TunerConfig(num_cpis=8, sim_candidates=4, sim_rounds=2)
        machine = het_machine()
        first = tune(PARAMS, BUDGET, machine=machine, config=cfg, campaign_dir=tmp_path)
        snap = exec_counters.snapshot()
        second = tune(PARAMS, BUDGET, machine=machine, config=cfg, campaign_dir=tmp_path)
        delta = exec_counters.delta_since(snap)
        assert delta["simulations_run"] == 0
        assert delta["cache_misses"] == 0
        assert [p.counts for p in first.front.points] == [
            p.counts for p in second.front.points
        ]
        assert first.best_throughput.counts == second.best_throughput.counts

    def test_changed_knob_simulates_only_new_points(self, tmp_path):
        machine = het_machine()
        tune(
            PARAMS,
            BUDGET,
            machine=machine,
            config=TunerConfig(num_cpis=8, sim_candidates=4, sim_rounds=1),
            campaign_dir=tmp_path,
        )
        snap = exec_counters.snapshot()
        widened = tune(
            PARAMS,
            BUDGET,
            machine=machine,
            config=TunerConfig(num_cpis=8, sim_candidates=6, sim_rounds=1),
            campaign_dir=tmp_path,
        )
        delta = exec_counters.delta_since(snap)
        # The shared candidates come from the store; only the widening is new.
        assert 0 < delta["simulations_run"] < widened.points_simulated
