"""Dynamic processor reallocation plans."""

import pytest

from repro import CASE2, CASE3, STAPParams
from repro.core.assignment import TASK_NAMES
from repro.errors import AssignmentError
from repro.scheduling import AnalyticPipelineModel, plan_reallocation


@pytest.fixture(scope="module")
def model():
    return AnalyticPipelineModel(STAPParams.paper())


class TestPlanning:
    def test_already_satisfied_needs_no_moves(self, model):
        base = model.throughput(CASE2)
        plan = plan_reallocation(model, CASE2, target_throughput=base * 0.9)
        assert plan.num_moves == 0
        assert plan.result.counts() == CASE2.counts()

    def test_throughput_increase_reachable_by_moves(self, model):
        base = model.throughput(CASE2)
        plan = plan_reallocation(model, CASE2, target_throughput=base * 1.2)
        assert plan.num_moves > 0
        assert model.throughput(plan.result) >= base * 1.2
        # Node total is conserved (re-allocation, not growth).
        assert plan.result.total_nodes == CASE2.total_nodes

    def test_latency_target(self, model):
        base = model.latency(CASE3)
        plan = plan_reallocation(model, CASE3, target_latency=base * 0.85)
        assert model.latency(plan.result) <= base * 0.85
        assert plan.result.total_nodes == CASE3.total_nodes

    def test_moves_are_legal_steps(self, model):
        base = model.throughput(CASE2)
        plan = plan_reallocation(model, CASE2, target_throughput=base * 1.2)
        counts = {t: CASE2.count_of(t) for t in TASK_NAMES}
        for move in plan.moves:
            counts[move.from_task] -= 1
            counts[move.to_task] += 1
            assert counts[move.from_task] >= 1
        assert tuple(counts[t] for t in TASK_NAMES) == plan.result.counts()

    def test_infeasible_target_rejected(self, model):
        with pytest.raises(AssignmentError):
            plan_reallocation(model, CASE3, target_throughput=1000.0)

    def test_requires_a_target(self, model):
        with pytest.raises(AssignmentError):
            plan_reallocation(model, CASE2)

    def test_summary_renders(self, model):
        base = model.throughput(CASE2)
        plan = plan_reallocation(model, CASE2, target_throughput=base * 1.05)
        assert "throughput" in plan.summary()


class TestCombinedTargets:
    def test_both_targets_honoured(self, model):
        plan = plan_reallocation(
            model, CASE2, target_throughput=4.0, target_latency=0.7
        )
        assert model.throughput(plan.result) >= 4.0
        assert model.latency(plan.result) <= 0.7
