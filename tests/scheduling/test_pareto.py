"""Pareto front data model: dominance, pruning, picks, serialization."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scheduling import PARETO_SCHEMA, ParetoFront, ParetoPoint, pareto_front


def pt(thr, lat, counts=(1, 1, 1, 1, 1, 1, 1), **kw):
    return ParetoPoint(counts=counts, throughput=thr, latency=lat, **kw)


class TestParetoPoint:
    def test_dominance_is_strict_somewhere(self):
        a = pt(2.0, 1.0)
        assert pt(2.0, 0.5).dominates(a)
        assert pt(3.0, 1.0).dominates(a)
        assert not a.dominates(a)  # equal on both axes
        assert not pt(3.0, 2.0).dominates(a)  # trade-off, no dominance

    def test_counts_validated_and_coerced(self):
        point = ParetoPoint(counts=[1.0, 1, 1, 1, 1, 1, 1], throughput=1, latency=1)
        assert point.counts == (1, 1, 1, 1, 1, 1, 1)
        assert isinstance(point.counts[0], int)
        with pytest.raises(ConfigurationError):
            pt(1.0, 1.0, counts=(1, 2, 3))
        with pytest.raises(ConfigurationError):
            pt(1.0, 1.0, source="measured-on-mars")

    def test_assignment_round_trip(self):
        point = pt(1.0, 1.0, counts=(8, 4, 28, 4, 7, 4, 4))
        assert point.assignment().counts() == (8, 4, 28, 4, 7, 4, 4)
        assert point.total_nodes == 59


class TestParetoFrontBuild:
    def test_prunes_dominated_points(self):
        front = pareto_front(
            [pt(3.0, 3.0), pt(2.0, 1.0), pt(1.0, 0.5), pt(2.5, 3.5), pt(0.5, 2.0)]
        )
        assert [(p.throughput, p.latency) for p in front] == [
            (3.0, 3.0),
            (2.0, 1.0),
            (1.0, 0.5),
        ]

    def test_deduplicates_equal_coordinates(self):
        front = pareto_front([pt(1.0, 1.0), pt(1.0, 1.0)])
        assert len(front) == 1

    def test_sorted_by_throughput_descending(self):
        front = pareto_front([pt(1.0, 0.5), pt(3.0, 2.0), pt(2.0, 1.0)])
        assert [p.throughput for p in front] == [3.0, 2.0, 1.0]
        assert [p.latency for p in front] == [2.0, 1.0, 0.5]

    def test_picks(self):
        front = ParetoFront.build(
            [pt(3.0, 2.0), pt(2.0, 1.0), pt(1.0, 0.5)], budget=7
        )
        assert front.best_throughput().throughput == 3.0
        assert front.best_latency().latency == 0.5
        assert front.best_latency(min_throughput=1.5).latency == 1.0
        # No point clears the floor -> falls back to lowest latency.
        assert front.best_latency(min_throughput=99.0).latency == 0.5

    def test_empty_front_has_no_picks(self):
        front = ParetoFront(points=[], budget=7)
        with pytest.raises(ConfigurationError):
            front.best_throughput()


class TestCovers:
    def test_on_or_behind_the_front(self):
        front = ParetoFront.build([pt(3.0, 2.0), pt(1.0, 0.5)], budget=7)
        assert front.covers(3.0, 2.0)  # exactly on a point
        assert front.covers(2.5, 2.5)  # behind
        assert front.covers(3.0 * (1 - 1e-12), 2.0)  # within tolerance
        assert not front.covers(3.0, 1.0)  # beats the front
        assert not front.covers(4.0, 3.0)


class TestSerialization:
    def front(self):
        return ParetoFront.build(
            [
                pt(3.0, 2.0, counts=(5, 1, 2, 1, 1, 1, 1), source="simulated",
                   predicted_throughput=2.9, predicted_latency=2.1),
                pt(1.0, 0.5, name="latency pick"),
            ],
            budget=12,
            objective="pareto",
            machine="test machine",
            params_label="tiny",
            num_cpis=8,
            extra={"truncated": False},
        )

    def test_round_trip(self, tmp_path):
        front = self.front()
        path = front.save(tmp_path / "front.json")
        loaded = ParetoFront.load(path)
        assert loaded.to_dict() == front.to_dict()
        assert loaded.points[0].predicted_throughput == 2.9
        assert loaded.budget == 12 and loaded.num_cpis == 8

    def test_artifact_is_versioned(self, tmp_path):
        front = self.front()
        document = json.loads((front.save(tmp_path / "f.json")).read_text())
        assert document["schema"] == PARETO_SCHEMA
        assert document["version"]

    def test_wrong_schema_rejected(self):
        document = self.front().to_dict()
        document["schema"] = PARETO_SCHEMA + 1
        with pytest.raises(ConfigurationError):
            ParetoFront.from_dict(document)
