"""STAPParams: paper defaults, derived quantities, validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import STAPParams


class TestPaperDefaults:
    """Section 7: 'We specified the parameters ... as follows.'"""

    def test_paper_values(self):
        p = STAPParams.paper()
        assert p.num_ranges == 512
        assert p.num_channels == 16
        assert p.num_pulses == 128
        assert p.num_beams == 6
        assert p.num_easy_doppler == 72
        assert p.num_hard_doppler == 56

    def test_appendix_constants(self):
        p = STAPParams.paper()
        assert p.stagger == 3
        assert p.beam_constraint_weight == 0.5
        assert p.freq_constraint_weight == 0.5
        assert p.forgetting_factor == 0.6
        assert p.range_segment_boundaries == (0, 75, 150, 225, 300, 375, 512)
        assert p.num_segments == 6

    def test_cube_sizes(self):
        p = STAPParams.paper()
        # 512 x 16 x 128 complex64 = 8 MiB raw; staggered doubles channels.
        assert p.cpi_cube_bytes == 8 * 1024 * 1024
        assert p.staggered_cube_bytes == 16 * 1024 * 1024


class TestDerived:
    def test_easy_hard_bins_partition_spectrum(self):
        p = STAPParams.paper()
        combined = np.sort(np.concatenate([p.easy_bins, p.hard_bins]))
        assert np.array_equal(combined, np.arange(p.num_doppler))

    def test_hard_bins_hug_spectrum_edges(self):
        p = STAPParams.paper()
        half = p.num_hard_doppler // 2
        assert np.array_equal(p.hard_bins[:half], np.arange(half))
        assert np.array_equal(
            p.hard_bins[half:], np.arange(p.num_doppler - half, p.num_doppler)
        )

    def test_easy_bins_match_matlab_indexing(self):
        # MATLAB: numHardDop/2+1 : num_doppler-numHardDop/2 (1-based).
        p = STAPParams.paper()
        assert p.easy_bins[0] == 28
        assert p.easy_bins[-1] == 99

    def test_segment_slices_cover_ranges(self):
        p = STAPParams.paper()
        cells = np.concatenate([np.arange(s.start, s.stop) for s in p.segment_slices])
        assert np.array_equal(cells, np.arange(p.num_ranges))

    def test_easy_train_total_is_three_cpis(self):
        p = STAPParams.paper()
        assert p.easy_train_total == 3 * p.easy_train_per_cpi == 96

    def test_tiny_and_small_are_valid(self):
        for p in (STAPParams.tiny(), STAPParams.small()):
            assert p.num_easy_doppler > 0
            assert p.num_segments >= 1

    def test_with_overrides(self):
        p = STAPParams.paper().with_overrides(num_beams=4)
        assert p.num_beams == 4
        assert p.num_ranges == 512


class TestValidation:
    def test_odd_hard_doppler_rejected(self):
        with pytest.raises(ConfigurationError):
            STAPParams(num_hard_doppler=55)

    def test_hard_doppler_exceeding_pulses_rejected(self):
        with pytest.raises(ConfigurationError):
            STAPParams(num_pulses=32, num_hard_doppler=32)

    def test_bad_segment_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            STAPParams(range_segment_boundaries=(0, 75, 512, 300))
        with pytest.raises(ConfigurationError):
            STAPParams(range_segment_boundaries=(5, 512))
        with pytest.raises(ConfigurationError):
            STAPParams(range_segment_boundaries=(0, 400))

    def test_stagger_bounds(self):
        with pytest.raises(ConfigurationError):
            STAPParams(stagger=0)
        with pytest.raises(ConfigurationError):
            STAPParams(stagger=128)

    def test_training_bounds(self):
        with pytest.raises(ConfigurationError):
            STAPParams(easy_train_per_cpi=0)
        with pytest.raises(ConfigurationError):
            STAPParams(easy_train_per_cpi=513)

    def test_cfar_bounds(self):
        with pytest.raises(ConfigurationError):
            STAPParams(cfar_pfa=0.0)
        with pytest.raises(ConfigurationError):
            STAPParams(cfar_window=0)
        with pytest.raises(ConfigurationError):
            STAPParams(cfar_guard=-1)

    def test_forgetting_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            STAPParams(forgetting_factor=0.0)
        with pytest.raises(ConfigurationError):
            STAPParams(forgetting_factor=1.5)

    def test_waveform_length_bounds(self):
        with pytest.raises(ConfigurationError):
            STAPParams(waveform_length=0)
        with pytest.raises(ConfigurationError):
            STAPParams(waveform_length=513)
