"""CPI data-cube generation: determinism, power budgets, structure."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import (
    CPIDataCube,
    CPIStream,
    JammerTruth,
    RadarScenario,
    STAPParams,
    TargetTruth,
    generate_cpi,
)


@pytest.fixture
def params():
    return STAPParams.tiny()


class TestDeterminism:
    def test_same_seed_same_cube(self, params):
        sc = RadarScenario.standard(seed=5)
        sc = sc.with_targets([])
        a = generate_cpi(params, sc, 3)
        b = generate_cpi(params, sc, 3)
        assert np.array_equal(a.data, b.data)

    def test_different_cpi_indices_differ(self, params):
        sc = RadarScenario.benign(seed=5)
        a = generate_cpi(params, sc, 0)
        b = generate_cpi(params, sc, 1)
        assert not np.array_equal(a.data, b.data)

    def test_different_seeds_differ(self, params):
        a = generate_cpi(params, RadarScenario.benign(seed=1), 0)
        b = generate_cpi(params, RadarScenario.benign(seed=2), 0)
        assert not np.array_equal(a.data, b.data)

    def test_azimuth_changes_realization(self, params):
        sc = RadarScenario.benign(seed=5)
        a = generate_cpi(params, sc, 0, azimuth=0)
        b = generate_cpi(params, sc, 0, azimuth=1)
        assert not np.array_equal(a.data, b.data)


class TestPowerBudgets:
    def test_noise_only_power_near_unity(self, params):
        cube = generate_cpi(params, RadarScenario.benign(seed=0), 0)
        power = np.mean(np.abs(cube.data) ** 2)
        assert power == pytest.approx(1.0, rel=0.1)

    def test_clutter_raises_power_to_cnr(self, params):
        sc = RadarScenario(clutter_to_noise_db=30.0, targets=(), seed=0)
        cube = generate_cpi(params, sc, 0)
        power = np.mean(np.abs(cube.data) ** 2)
        assert power == pytest.approx(1.0 + 1000.0, rel=0.3)

    def test_jammer_adds_power(self, params):
        base = RadarScenario.benign(seed=0)
        jammed = RadarScenario(
            clutter_to_noise_db=-300.0,
            num_clutter_patches=1,
            jammers=(JammerTruth(angle_deg=20.0, jnr_db=20.0),),
            seed=0,
        )
        p_base = np.mean(np.abs(generate_cpi(params, base, 0).data) ** 2)
        p_jam = np.mean(np.abs(generate_cpi(params, jammed, 0).data) ** 2)
        assert p_jam > 10 * p_base


class TestTargets:
    def test_target_energy_localized_in_range(self, params):
        tgt = TargetTruth(range_cell=20, normalized_doppler=0.3, angle_deg=0.0, snr_db=60.0)
        sc = RadarScenario(
            clutter_to_noise_db=-300.0, num_clutter_patches=1,
            targets=(tgt,), seed=0,
        )
        cube = generate_cpi(params, sc, 0)
        per_range = np.sum(np.abs(cube.data) ** 2, axis=(1, 2))
        hot = np.nonzero(per_range > per_range.max() * 1e-2)[0]
        assert hot.min() >= 20
        assert hot.max() < 20 + params.waveform_length

    def test_target_truth_recorded(self, params):
        tgt = TargetTruth(range_cell=10, normalized_doppler=0.2, angle_deg=5.0, snr_db=0.0)
        sc = RadarScenario(targets=(tgt,), seed=0)
        cube = generate_cpi(params, sc, 0)
        assert cube.truth == (tgt,)

    def test_target_outside_ranges_rejected(self, params):
        tgt = TargetTruth(range_cell=params.num_ranges, normalized_doppler=0.0,
                          angle_deg=0.0, snr_db=0.0)
        sc = RadarScenario(targets=(tgt,), seed=0)
        with pytest.raises(ConfigurationError):
            generate_cpi(params, sc, 0)

    def test_target_near_edge_truncates_gracefully(self, params):
        tgt = TargetTruth(range_cell=params.num_ranges - 2, normalized_doppler=0.2,
                          angle_deg=0.0, snr_db=0.0)
        sc = RadarScenario(targets=(tgt,), seed=0)
        cube = generate_cpi(params, sc, 0)  # must not raise
        assert cube.data.shape[0] == params.num_ranges


class TestStream:
    def test_take_is_deterministic_random_access(self, params):
        stream = CPIStream(params, RadarScenario.benign(seed=9))
        cubes = stream.take(4)
        assert [c.cpi_index for c in cubes] == [0, 1, 2, 3]
        again = stream.cube(2)
        assert np.array_equal(cubes[2].data, again.data)

    def test_azimuth_cycling(self, params):
        stream = CPIStream(params, RadarScenario.benign(seed=9), azimuth_cycle=3)
        azimuths = [stream.cube(i).azimuth for i in range(7)]
        assert azimuths == [0, 1, 2, 0, 1, 2, 0]

    def test_invalid_cycle_rejected(self, params):
        with pytest.raises(ConfigurationError):
            CPIStream(params, RadarScenario.benign(0), azimuth_cycle=0)

    def test_cube_shape_validation(self, params):
        with pytest.raises(ConfigurationError):
            CPIDataCube(
                data=np.zeros((2, 2, 2), dtype=complex),
                cpi_index=0,
                azimuth=0,
                params=params,
            )

    def test_dtype_matches_params(self, params):
        cube = CPIStream(params, RadarScenario.benign(0)).cube(0)
        assert cube.data.dtype == np.dtype(params.dtype)
