"""Transmit waveform and matched filter."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import lfm_chirp, matched_filter_frequency_response


class TestChirp:
    def test_unit_energy(self):
        for length in (1, 8, 32, 100):
            pulse = lfm_chirp(length)
            assert np.linalg.norm(pulse) == pytest.approx(1.0)

    def test_constant_modulus(self):
        pulse = lfm_chirp(32)
        assert np.allclose(np.abs(pulse), np.abs(pulse[0]))

    def test_autocorrelation_peaks_at_zero_lag(self):
        pulse = lfm_chirp(32)
        corr = np.correlate(pulse, pulse, mode="full")
        assert np.argmax(np.abs(corr)) == 31  # zero lag
        # Compression: peak dominates the sidelobes.
        mags = np.abs(corr)
        sidelobes = np.delete(mags, 31)
        assert mags[31] > 2.5 * sidelobes.max()

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigurationError):
            lfm_chirp(0)
        with pytest.raises(ConfigurationError):
            lfm_chirp(8, bandwidth_fraction=0.0)
        with pytest.raises(ConfigurationError):
            lfm_chirp(8, bandwidth_fraction=1.5)


class TestMatchedFilter:
    def test_response_is_conjugate_spectrum(self):
        pulse = lfm_chirp(16)
        resp = matched_filter_frequency_response(pulse, 64)
        assert np.allclose(resp, np.conj(np.fft.fft(pulse, 64)))

    def test_fast_convolution_peaks_at_target_range(self):
        length, k = 16, 128
        pulse = lfm_chirp(length)
        resp = matched_filter_frequency_response(pulse, k)
        signal = np.zeros(k, dtype=complex)
        k0 = 40
        signal[k0 : k0 + length] = pulse
        out = np.fft.ifft(np.fft.fft(signal) * resp)
        assert np.argmax(np.abs(out)) == k0
        assert np.abs(out[k0]) == pytest.approx(1.0)  # unit-energy match

    def test_too_short_fft_rejected(self):
        with pytest.raises(ConfigurationError):
            matched_filter_frequency_response(lfm_chirp(32), 16)

    def test_matrix_waveform_rejected(self):
        with pytest.raises(ConfigurationError):
            matched_filter_frequency_response(np.zeros((2, 2)), 16)
