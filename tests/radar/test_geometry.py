"""Steering vectors and beam geometry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import spatial_steering, temporal_steering, steering_matrix, beam_angles


class TestSpatialSteering:
    def test_unit_norm(self):
        for angle in (-60.0, 0.0, 30.0):
            v = spatial_steering(16, angle)
            assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_boresight_is_uniform_phase(self):
        v = spatial_steering(8, 0.0)
        assert np.allclose(v, v[0])

    def test_element_magnitudes_equal(self):
        v = spatial_steering(8, 37.0)
        assert np.allclose(np.abs(v), 1 / np.sqrt(8))

    def test_distinct_angles_decorrelate(self):
        a = spatial_steering(16, 0.0)
        b = spatial_steering(16, 40.0)
        assert abs(np.vdot(a, b)) < 0.5

    def test_angle_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            spatial_steering(8, 91.0)

    def test_phase_progression_matches_spacing(self):
        d = 0.5
        angle = 20.0
        v = spatial_steering(4, angle, spacing_wavelengths=d)
        expected_step = 2 * np.pi * d * np.sin(np.deg2rad(angle))
        phase_steps = np.angle(v[1:] / v[:-1])
        assert np.allclose(phase_steps, expected_step)


class TestTemporalSteering:
    def test_unit_norm(self):
        v = temporal_steering(128, 0.25)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_zero_doppler_constant(self):
        v = temporal_steering(16, 0.0)
        assert np.allclose(v, v[0])

    def test_orthogonality_of_bin_centres(self):
        n = 32
        a = temporal_steering(n, 3 / n)
        b = temporal_steering(n, 7 / n)
        assert abs(np.vdot(a, b)) < 1e-10


class TestBeamAngles:
    def test_default_six_beams_span_transmit_region(self):
        # "six receive beams were formed by the processor" within a
        # 25-degree transmit beam (Section 3).
        angles = beam_angles(6)
        assert len(angles) == 6
        assert angles[0] == pytest.approx(-12.5)
        assert angles[-1] == pytest.approx(12.5)

    def test_single_beam_at_boresight(self):
        assert beam_angles(1) == pytest.approx([0.0])

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            beam_angles(0)


class TestSteeringMatrix:
    def test_shape_and_columns(self):
        angles = beam_angles(6)
        mat = steering_matrix(16, angles)
        assert mat.shape == (16, 6)
        for m, angle in enumerate(angles):
            assert np.allclose(mat[:, m], spatial_steering(16, angle))
